"""Legacy setup shim.

The execution environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .`` on newer
toolchains) installs from this shim instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
