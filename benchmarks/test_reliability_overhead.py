"""Micro-benchmark: reliability guards must be ~free on the healthy path.

The circuit breaker and retry executor wrap every scored micro-batch when
configured (``EngineConfig.retry`` / ``EngineConfig.breaker``).  Their
whole value is paid on the *failure* path; on the healthy path — a backend
that never raises — the guard must cost almost nothing, or nobody enables
it in production.  This compares ``ServingEngine._score_guarded`` with
breaker + retry configured against the bare ``scorer.score_batch`` call
(the exact code path an unconfigured engine runs) and gates the overhead
at 5%, same as the telemetry null-backend gate.
"""

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline
from repro.reliability import BreakerConfig, RetryPolicy
from repro.serving import EngineConfig, PipelineScorer, ServingEngine
from repro.utils.timer import time_call

REPEATS = 30
BATCH = 8


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def test_healthy_path_overhead_under_5_percent(benchmark, bench_workbench, report):
    pipeline = _fitted_pipeline(bench_workbench)
    scorer = PipelineScorer(pipeline)
    stack = np.stack(bench_workbench.batch("dsu", "test").frames[:BATCH])

    engine = ServingEngine(
        scorer,
        EngineConfig(
            max_batch_size=BATCH,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
            breaker=BreakerConfig(),
            fail_safe="novel",
        ),
    )
    try:
        # Warm-up (BLAS pools, layer caches) outside the timed region.
        scorer.score_batch(stack)
        engine._score_guarded(stack)

        guarded, guarded_timer = time_call(
            engine._score_guarded, stack, repeats=REPEATS
        )
        bare, bare_timer = time_call(scorer.score_batch, stack, repeats=REPEATS)
        np.testing.assert_allclose(guarded[0].scores, bare.scores)
        assert guarded[1] == 0, "healthy path must not spend retries"
        assert engine.breaker.state == "closed"

        # Min-of-repeats: scheduler noise at millisecond scale dwarfs the
        # microseconds a breaker bookkeeping pass costs.
        overhead = guarded_timer.min / bare_timer.min - 1.0

        result = ExperimentResult(
            exp_id="reliability_overhead",
            title="Breaker + retry overhead on the healthy serving path (extension)",
            rows=[
                f"{'bare ms/batch (min)':<28} {bare_timer.min * 1e3:>8.3f}",
                f"{'guarded ms/batch (min)':<28} {guarded_timer.min * 1e3:>8.3f}",
                f"{'overhead':<28} {overhead:>8.2%}",
            ],
            metrics={
                "bare_ms": bare_timer.min * 1e3,
                "guarded_ms": guarded_timer.min * 1e3,
                "overhead_fraction": overhead,
            },
            notes=(
                f"min over {REPEATS} repeats of an {BATCH}-frame batch; guarded "
                "path = retry executor + finite-score validation + breaker "
                "success recording, all healthy"
            ),
        )
        report(result)
        benchmark.pedantic(engine._score_guarded, args=(stack,), rounds=3, iterations=1)
        assert overhead < 0.05, (
            f"reliability guards add {overhead:.1%} to a healthy batch "
            f"(guarded {guarded_timer.min * 1e3:.3f}ms vs "
            f"bare {bare_timer.min * 1e3:.3f}ms)"
        )
    finally:
        engine.close()
