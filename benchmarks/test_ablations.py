"""Benchmark: design ablations — window / bottleneck / percentile (EXP-ABL)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_ablations(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("ablations", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)

    # Separation is robust across SSIM window sizes (the paper fixes 11x11
    # without sweeping; this shows the choice is not load-bearing).
    window_aurocs = [v for k, v in result.metrics.items() if k.startswith("auroc_w")]
    assert min(window_aurocs) > 0.9

    # The paper's 16-unit bottleneck sits in a broad plateau.
    bottleneck_aurocs = [v for k, v in result.metrics.items() if k.startswith("auroc_b")]
    assert min(bottleneck_aurocs) > 0.9

    # Paper: "the value of the threshold is not critical" when distributions
    # separate — detection stays high across percentile choices...
    assert result.metrics["detect_p90"] >= result.metrics["detect_p99.9"] - 0.1
    assert result.metrics["detect_p99"] >= 0.85
    # ...while the false-positive rate falls as the percentile rises.
    assert result.metrics["fpr_p99"] <= result.metrics["fpr_p90"]

    # Saliency-method ablation: VBP's smooth value-based masks are the only
    # ones the small autoencoder can learn — it must dominate LRP/gradients.
    assert result.metrics["auroc_vbp"] > result.metrics["auroc_lrp"]
    assert result.metrics["auroc_vbp"] > result.metrics["auroc_gradient"]

    # Architecture ablation: the paper's narrow dense bottleneck must beat
    # the over-expressive convolutional variant as a one-class model.
    assert result.metrics["auroc_dense"] > result.metrics["auroc_conv"]
