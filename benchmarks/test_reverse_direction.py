"""Benchmark: §IV-B.3 — reverse direction, DSI target vs DSU novel (EXP-REV)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_reverse_direction(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("reverse", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Paper: "we were able to find comparable results" with the datasets
    # swapped — the proposed method must still separate cleanly.
    assert result.metrics["auroc_vbp_ssim"] > 0.95
    assert result.metrics["detect_vbp_ssim"] > 0.9
    assert (
        result.metrics["ssim_target_mean"]
        > result.metrics["ssim_novel_mean"] + 0.05
    )
