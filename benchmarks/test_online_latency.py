"""Benchmark: online detection latency (extension beyond the paper)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_online_latency(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("latency", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Every domain switch must be caught...
    assert result.metrics["alarm_rate"] == 1.0
    # ...quickly (the persistence rule's floor is 2 frames)...
    assert result.metrics["mean_latency_frames"] <= 10.0
    # ...without alarming on clean drives.
    assert result.metrics["clean_false_alarm_rate"] == 0.0
    # Per-frame scoring latency percentiles (Timer.p50/p95/p99) must be
    # populated and ordered — the operational numbers behind the paper's
    # real-time claim.
    assert 0.0 < result.metrics["frame_ms_p50"]
    assert (
        result.metrics["frame_ms_p50"]
        <= result.metrics["frame_ms_p95"]
        <= result.metrics["frame_ms_p99"]
        <= result.metrics["frame_ms_max"]
    )
