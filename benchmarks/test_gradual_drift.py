"""Benchmark: gradual-drift (dusk) detection latency (extension)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_gradual_drift(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("drift", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # CUSUM must notice the dusk...
    assert result.metrics["cusum_detected"] == 1.0
    # ...no later than the per-frame persistence alarm...
    assert result.metrics["cusum_first"] <= result.metrics["monitor_first"]
    # ...and not during the clean prefix.
    assert result.metrics["clean_prefix_clear"] == 1.0
