"""Benchmark: the fused monitor path vs the seed two-forward path.

Guarding a steering model used to cost two CNN forwards per frame: one in
``predict_angles`` for the steering command and a second inside the
saliency cascade for the novelty score.  The stage runtime's
``cnn_forward`` stage caches its activations so the ``steering_head`` and
``saliency_cascade`` stages share one pass — this benchmark gates that the
fused ``score_with_steering`` path delivers steering + novelty per frame
at >= 1.2x the two-call throughput, with scores identical to the
monolithic scoring path and angles identical to ``predict_angles``.
"""

import time

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline

N_FRAMES = 96
REPEATS = 3
SPEEDUP_GATE = 1.2


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def _throughput(fn, frames) -> float:
    """Best-of-REPEATS frames/s for full batched steering+novelty passes."""
    best = 0.0
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn(frames)
        best = max(best, len(frames) / (time.perf_counter() - started))
    return best


def test_fused_steering_novelty_speedup(benchmark, bench_workbench, report):
    pipeline = _fitted_pipeline(bench_workbench)
    model = pipeline.saliency_method.model
    test = bench_workbench.batch("dsu", "test").frames
    frames = np.stack([test[i % len(test)] for i in range(N_FRAMES)])

    def two_forward(stack):
        """The seed path: one forward for steering, another for novelty."""
        return pipeline.score_batch(stack), model.predict_angles(stack)

    def fused(stack):
        return pipeline.score_with_steering(stack)

    # Warm layer caches, workspace kernels, and allocator pools.
    two_forward(frames[:8])
    fused(frames[:8])

    def _measure():
        fps_two = _throughput(two_forward, frames)
        fps_fused = _throughput(fused, frames)
        return fps_two, fps_fused

    fps_two, fps_fused = benchmark.pedantic(_measure, rounds=1, iterations=1)
    speedup = fps_fused / fps_two

    # The speed must not come from different answers: fused scores match
    # the monolithic scoring path to 1e-9, angles match predict_angles.
    fused_scores, fused_angles = pipeline.score_with_steering(frames)
    np.testing.assert_allclose(fused_scores, pipeline.score_batch(frames), atol=1e-9)
    np.testing.assert_allclose(fused_angles, model.predict_angles(frames), atol=1e-9)

    result = ExperimentResult(
        exp_id="stage_fusion",
        title="Stage fusion: shared CNN forward for steering + novelty",
        rows=[
            f"two-forward (seed)     {fps_two:8.1f} frames/s",
            f"fused plan             {fps_fused:8.1f} frames/s",
            f"speedup                {speedup:8.2f}x  (gate: >= {SPEEDUP_GATE:.1f}x)",
            "scores/angles identical to the unfused entry points",
        ],
        metrics={
            "fps_two_forward": fps_two,
            "fps_fused": fps_fused,
            "speedup": speedup,
        },
        notes=(
            f"{N_FRAMES} bench-scale frames; steering + novelty per frame; "
            f"best of {REPEATS} full-batch passes per path"
        ),
    )
    report(result)
    assert speedup >= SPEEDUP_GATE
