"""Benchmark: Figure 4 — VBP masks on both datasets (see EXP-F4)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig4_vbp_masks(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Saliency concentrates on the lane markings on both datasets — the
    # quantified form of the paper's "reasonable activations" overlays.
    assert result.metrics["concentration_dsu"] > 1.0
    assert result.metrics["concentration_dsi"] > 1.0
