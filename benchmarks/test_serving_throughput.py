"""Benchmark: micro-batched serving throughput vs single-frame scoring.

The paper's safety monitor scores one camera frame at a time; the serving
engine's whole reason to exist is that coalescing those single-frame
requests into batched VBP + autoencoder passes buys real throughput on
the same hardware.  This benchmark gates that claim: the engine, fed
frame-by-frame through its admission queue, must sustain at least twice
the throughput of a plain one-frame-per-call scoring loop.
"""

import time

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline
from repro.serving import EngineConfig, PipelineScorer, ServingEngine

N_FRAMES = 96
SPEEDUP_GATE = 2.0


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def test_serving_throughput(benchmark, bench_workbench, report):
    pipeline = _fitted_pipeline(bench_workbench)
    test = bench_workbench.batch("dsu", "test").frames
    frames = np.stack([test[i % len(test)] for i in range(N_FRAMES)])
    pipeline.score_batch(frames[:8])  # warm layer caches

    def _measure():
        # Baseline: the monitor's naive deployment — one VBP + autoencoder
        # pass per frame.
        started = time.perf_counter()
        for frame in frames:
            pipeline.score_batch(frame[None])
        fps_single = N_FRAMES / (time.perf_counter() - started)

        # Micro-batched: same frames submitted individually through the
        # engine's bounded queue, scored in coalesced batches.
        engine = ServingEngine(
            PipelineScorer(pipeline),
            EngineConfig(max_batch_size=16, max_wait_ms=5.0, queue_capacity=N_FRAMES),
        )
        try:
            engine.infer(frames[0])  # warm the dispatch path
            started = time.perf_counter()
            outcomes = engine.infer_many(frames)
            fps_batched = N_FRAMES / (time.perf_counter() - started)
            stats = engine.stats()
        finally:
            engine.close()
        assert all(o.status == "ok" for o in outcomes)
        return fps_single, fps_batched, stats

    fps_single, fps_batched, stats = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    speedup = fps_batched / fps_single
    result = ExperimentResult(
        exp_id="serving",
        title="Serving throughput: micro-batched engine vs single-frame loop",
        rows=[
            f"single-frame scoring   {fps_single:8.1f} frames/s",
            f"micro-batched engine   {fps_batched:8.1f} frames/s",
            f"speedup                {speedup:8.2f}x  (gate: >= {SPEEDUP_GATE:.1f}x)",
            (
                f"engine latency (ms)    p50={stats['latency_ms']['p50']:.2f}  "
                f"p95={stats['latency_ms']['p95']:.2f}  "
                f"p99={stats['latency_ms']['p99']:.2f}"
            ),
            f"mean batch size        {stats['mean_batch_size']:8.2f}",
        ],
        metrics={
            "fps_single": fps_single,
            "fps_batched": fps_batched,
            "speedup": speedup,
            "mean_batch_size": stats["mean_batch_size"],
            "latency_ms_p99": stats["latency_ms"]["p99"],
        },
        notes=(
            f"{N_FRAMES} bench-scale frames; engine policy batch<=16, "
            "wait 5 ms, queue sized to the burst"
        ),
    )
    report(result)
    assert speedup >= SPEEDUP_GATE
