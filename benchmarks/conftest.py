"""Shared benchmark fixtures.

Each paper artifact gets one benchmark module.  All share one session-scoped
:class:`repro.experiments.Workbench` at the ``bench`` scale so datasets are
rendered and steering networks trained exactly once per run; the per-figure
benchmark then times only that experiment's own work (autoencoder training
and scoring).

Experiment reports are printed (run with ``-s`` to see them inline) and also
collected into ``benchmarks/report.txt`` at the end of the session so the
paper-vs-measured tables survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult, Workbench

_REPORTS: Dict[str, ExperimentResult] = {}


@pytest.fixture(scope="session")
def bench_workbench() -> Workbench:
    """Session-shared workbench at bench scale."""
    return Workbench(BENCH, seed=0)


@pytest.fixture
def report():
    """Collect an ExperimentResult for the end-of-session report file."""

    def _collect(result: ExperimentResult) -> ExperimentResult:
        _REPORTS[result.exp_id] = result
        print()
        print(result.render())
        return result

    return _collect


def pytest_sessionfinish(session, exitstatus):
    if not _REPORTS:
        return
    # One file per experiment so partial runs never clobber other results...
    reports_dir = Path(__file__).parent / "reports"
    reports_dir.mkdir(exist_ok=True)
    for exp_id, result in _REPORTS.items():
        (reports_dir / f"{exp_id}.txt").write_text(result.render() + "\n")
    # ...and a combined report assembled from everything measured so far.
    blocks = [
        path.read_text().rstrip() for path in sorted(reports_dir.glob("*.txt"))
    ]
    (Path(__file__).parent / "report.txt").write_text("\n\n".join(blocks) + "\n")
