"""Benchmark: Figure 7 — Gaussian-noise detection (EXP-F7)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig7_noise_detection(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Paper: "An MSE loss is not able to distinguish noisy images while SSIM
    # is able to separate the two distributions" (on VBP images).
    assert result.metrics["auroc_vbp_ssim"] > result.metrics["auroc_vbp_mse"]
    # Paper: "the separation between noisy data and original data is smaller
    # ... than the separation from data sampled from a different dataset" —
    # cross-checked against fig5's near-perfect separation.
    assert result.metrics["auroc_vbp_ssim"] < 0.999
