"""Benchmark: noise-sensitivity curve (extension of Figure 7)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_noise_sweep(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("noise_sweep", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # SSIM at or above MSE along (most of) the curve — the paper's ordering
    # holds beyond its single operating point.
    assert result.metrics["ssim_win_fraction"] >= 0.8
    # Separation grows with noise magnitude.
    assert result.metrics["auroc_ssim_s0.5"] > result.metrics["auroc_ssim_s0.05"]
