"""Benchmark: float32 inference throughput vs the float64 reference.

The precision policy exists for exactly one reason: the monitor's score
path (VBP deconvolution cascade + autoencoder reconstruction + SSIM) is
pure numpy arithmetic, and halving every operand pays for itself in
memory bandwidth.  This benchmark gates that claim — a fitted pipeline
cast to float32 must score the same frames at >= 1.3x the float64
throughput while reaching the same verdicts.
"""

import copy
import time

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline

N_FRAMES = 96
REPEATS = 3
SPEEDUP_GATE = 1.3


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def _throughput(pipeline, frames) -> float:
    """Best-of-REPEATS frames/s for full batched score passes."""
    best = 0.0
    for _ in range(REPEATS):
        started = time.perf_counter()
        pipeline.score_batch(frames)
        best = max(best, len(frames) / (time.perf_counter() - started))
    return best


def test_float32_score_path_speedup(benchmark, bench_workbench, report):
    reference = _fitted_pipeline(bench_workbench)
    fast = copy.deepcopy(reference).set_inference_dtype("float32")
    test = bench_workbench.batch("dsu", "test").frames
    frames = np.stack([test[i % len(test)] for i in range(N_FRAMES)])

    # Warm layer caches and allocator pools on both paths before timing.
    reference.score_batch(frames[:8])
    fast.score_batch(frames[:8])

    def _measure():
        fps_float64 = _throughput(reference, frames)
        fps_float32 = _throughput(fast, frames)
        return fps_float64, fps_float32

    fps_float64, fps_float32 = benchmark.pedantic(_measure, rounds=1, iterations=1)
    speedup = fps_float32 / fps_float64

    # The speed must not come from different answers.
    verdicts64 = reference.predict_novel(frames)
    verdicts32 = fast.predict_novel(frames)
    np.testing.assert_array_equal(verdicts64, verdicts32)
    max_delta = float(
        np.max(np.abs(reference.score_batch(frames) - fast.score_batch(frames)))
    )

    result = ExperimentResult(
        exp_id="precision",
        title="Precision policy: float32 vs float64 score-path throughput",
        rows=[
            f"float64 reference      {fps_float64:8.1f} frames/s",
            f"float32 inference      {fps_float32:8.1f} frames/s",
            f"speedup                {speedup:8.2f}x  (gate: >= {SPEEDUP_GATE:.1f}x)",
            f"max |score delta|      {max_delta:8.2e}  (identical verdicts)",
        ],
        metrics={
            "fps_float64": fps_float64,
            "fps_float32": fps_float32,
            "speedup": speedup,
            "max_score_delta": max_delta,
        },
        notes=(
            f"{N_FRAMES} bench-scale frames through VBP + autoencoder + SSIM; "
            f"best of {REPEATS} full-batch passes per policy"
        ),
    )
    report(result)
    assert speedup >= SPEEDUP_GATE
