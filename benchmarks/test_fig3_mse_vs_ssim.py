"""Benchmark: Figure 3 — equal-MSE noise vs brightness (see EXP-F3)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig3_mse_vs_ssim(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Both perturbations hit the paper's MSE (~91 on 0-255 intensities)...
    assert abs(result.metrics["mse_noise_255"] - 91.0) < 5.0
    assert abs(result.metrics["mse_brightness_255"] - 91.0) < 5.0
    # ...but SSIM separates them: noise scores well below brightness
    # (paper: 0.64 vs 0.98).
    assert result.metrics["ssim_noise"] < result.metrics["ssim_brightness"]
    assert result.metrics["ssim_gap"] > 0.03
