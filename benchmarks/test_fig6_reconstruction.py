"""Benchmark: Figure 6 — reconstruction quality comparison (EXP-F6)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig6_reconstruction(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # The raw+MSE baseline reconstructs blurrily even for target-class
    # images; the proposed VBP+SSIM system retains high-frequency structure.
    assert result.metrics["sharpness_vbp_ssim"] > result.metrics["sharpness_raw_mse"]
    assert result.metrics["recon_ssim_vbp_ssim"] > result.metrics["recon_ssim_raw_mse"]
