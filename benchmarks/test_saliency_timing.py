"""Benchmark: §III-B — saliency latency, VBP vs LRP vs gradients (EXP-TIME).

This one is a genuine latency benchmark, so alongside the experiment report
(which compares the three methods on equal terms) the VBP path itself is
timed by pytest-benchmark over multiple rounds.
"""

import pytest

from repro.config import BENCH
from repro.experiments.registry import run_experiment
from repro.saliency import VisualBackProp


def test_saliency_timing_report(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("timing", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # The paper's comparative claim ("order of magnitude faster" on GPU
    # infrastructure): on this numpy substrate we assert the direction.
    assert result.metrics["lrp_over_vbp"] > 1.0


@pytest.fixture(scope="module")
def vbp_and_frames(bench_workbench):
    model = bench_workbench.steering_model("dsu")
    frames = bench_workbench.batch("dsu", "test").frames[:16]
    return VisualBackProp(model), frames


def test_vbp_throughput(benchmark, vbp_and_frames):
    """Raw VBP throughput on a 16-frame batch (rounds handled by the
    pytest-benchmark harness)."""
    vbp, frames = vbp_and_frames
    masks = benchmark(vbp.saliency, frames)
    assert masks.shape == frames.shape
