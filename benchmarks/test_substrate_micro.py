"""Micro-benchmarks for the numpy substrate.

Not paper artifacts — these track the throughput of the hot paths every
experiment depends on (convolution, SSIM + gradient, autoencoder training
steps), so performance regressions in the substrate are visible separately
from the figure-level results.
"""

import numpy as np
import pytest

from repro.metrics.ssim import ssim, ssim_and_grad
from repro.models import DenseAutoencoder
from repro.nn import Adam, Conv2d, MSELoss, SSIMLoss, Trainer


@pytest.fixture(scope="module")
def frames():
    return np.random.default_rng(0).random((8, 24, 64))


def test_conv2d_forward(benchmark):
    conv = Conv2d(1, 24, 5, stride=2, rng=0)
    x = np.random.default_rng(0).random((8, 1, 60, 160))
    out = benchmark(conv.forward, x)
    assert out.shape[1] == 24


def test_conv2d_backward(benchmark):
    conv = Conv2d(1, 24, 5, stride=2, rng=0)
    x = np.random.default_rng(0).random((8, 1, 60, 160))
    out = conv.forward(x)
    grad = np.ones_like(out)

    def step():
        conv.zero_grad()
        return conv.backward(grad)

    assert benchmark(step).shape == x.shape


def test_ssim_metric(benchmark, frames):
    a, b = frames[:4], frames[4:]
    scores = benchmark(ssim, a, b, 9)
    assert scores.shape == (4,)


def test_ssim_with_gradient(benchmark, frames):
    a, b = frames[:4], frames[4:]
    _, grad = benchmark(ssim_and_grad, a, b, 9)
    assert grad.shape == a.shape


def test_autoencoder_train_step_mse(benchmark, frames):
    ae = DenseAutoencoder((24, 64), rng=0)
    trainer = Trainer(ae, MSELoss(), Adam(ae.parameters(), lr=1e-3))
    flat = frames.reshape(8, -1)
    loss = benchmark(trainer.train_step, flat, flat)
    assert loss >= 0.0


def test_autoencoder_train_step_ssim(benchmark, frames):
    ae = DenseAutoencoder((24, 64), rng=0)
    trainer = Trainer(ae, SSIMLoss((24, 64), window_size=9), Adam(ae.parameters(), lr=1e-3))
    flat = frames.reshape(8, -1)
    loss = benchmark(trainer.train_step, flat, flat)
    assert loss >= 0.0


def test_dataset_rendering(benchmark):
    from repro.datasets import SyntheticUdacity

    dsu = SyntheticUdacity((24, 64))
    batch = benchmark(dsu.render_batch, 8, 0)
    assert len(batch) == 8
