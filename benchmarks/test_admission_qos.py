"""Benchmark: admission control isolates critical traffic at 2x saturation.

The QoS claim is an SLO, not a throughput number: with a 10/90
critical/batch client population offering *twice* the backend's sustained
capacity, admission control (per-client quotas on the batch fleet, the
weighted multi-queue, AIMD) must keep the critical class essentially
unaffected.  Gates:

* critical goodput under overload >= 95% of its unloaded goodput,
* critical p99 latency under overload <= 1.5x its unloaded p99,
* typed-outcome accounting balances exactly — every request the load
  offered resolves to exactly one typed outcome, zero silent drops.

The backend is a deterministic sleep-scorer with *constant per-batch*
service time (GPU-like: a micro-batch costs one kernel launch whether it
carries one frame or eight).  That choice is load-bearing for the gates:
with per-frame service, per-client cycle time depends on how the
closed-loop critical clients happen to coalesce into batches, and both
gated ratios measure phase-locking luck instead of queueing policy.
With constant batch service, a client's cycle is ``batch window +
service`` no matter who shares its batch, so the unloaded baseline is
reproducible and any loaded regression is genuinely admission's fault.

Capacity is quoted in worst-case (unbatched) requests/s — ``replicas /
batch_service_s`` — because admitted batch-class strays are scored as
singletons; "2x saturation" means the batch fleet alone offers twice
what the backend could serve even one-request-per-batch.
"""

import threading
import time

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.serving import (
    AimdConfig,
    BatchVerdicts,
    ClassPolicy,
    EngineConfig,
    QosPolicy,
    RateLimit,
    ServingEngine,
    run_mixed_load,
)

FRAME_SHAPE = (8, 8)
#: Constant service time per micro-batch, regardless of batch size.
#: Deliberately coarse (10 ms) so the gated ratios measure queueing
#: policy, not sub-millisecond GIL scheduling noise from the 20-thread
#: client population.
BATCH_SERVICE_S = 0.01
REPLICAS = 4
MAX_BATCH = 4

#: 10/90 critical/batch client population.  Two critical clients can
#: occupy at most two of the four replicas, so an unloaded critical
#: request is never queued behind its own fleet — the baseline measures
#: pure service time and the loaded phase isolates admission's effect.
CRITICAL_CLIENTS = 2
BATCH_CLIENTS = 18
REQUESTS_PER_CLIENT = 150

#: Worst-case (one request per batch) capacity in requests/s, and the
#: overload multiple the batch fleet offers against it.
CAPACITY_RPS = REPLICAS / BATCH_SERVICE_S
SATURATION_MULTIPLE = 2.0

#: Each batch client's admitted quota — the fleet together is held to a
#: few percent of capacity no matter how hard it offers.
BATCH_CLIENT_RATE = RateLimit(rate_per_s=0.5, burst=1.0)

GOODPUT_GATE = 0.95
P99_GATE = 1.5


class _SleepScorer:
    """Deterministic GPU-like backend: every micro-batch costs
    ``BATCH_SERVICE_S`` of service time regardless of how many frames it
    carries, scored concurrently by ``REPLICAS`` dispatch threads."""

    replicas = REPLICAS
    image_shape = FRAME_SHAPE

    def score_batch(self, frames):
        n = len(frames)
        time.sleep(BATCH_SERVICE_S)
        return BatchVerdicts(
            scores=np.zeros(n), is_novel=np.zeros(n, dtype=bool), margins=np.zeros(n)
        )


def _policy() -> QosPolicy:
    return QosPolicy(
        classes={
            "critical": ClassPolicy(weight=16.0, sheddable=False),
            "interactive": ClassPolicy(weight=4.0),
            "batch": ClassPolicy(weight=1.0, queue_capacity=32),
        },
        client_rate_limits={
            f"batch-{i}": BATCH_CLIENT_RATE for i in range(BATCH_CLIENTS)
        },
        aimd=AimdConfig(initial=64),
    )


def _critical_load(engine, frames, requests_per_client=REQUESTS_PER_CLIENT):
    """The critical closed loop, identical in both phases."""
    return run_mixed_load(
        lambda frame, qos_class, client_id: engine.infer(
            frame, qos_class=qos_class, client_id=client_id
        ),
        frames,
        {"critical": 1},
        clients=CRITICAL_CLIENTS,
        requests_per_client=requests_per_client,
    )


def _saturate_batch(engine, frames, stop, counts, lock):
    """One paced batch client: offers at its share of 2x capacity and
    records every typed outcome it receives (nothing may vanish)."""
    period = BATCH_CLIENTS / (SATURATION_MULTIPLE * CAPACITY_RPS)

    def _client(index):
        client_id = f"batch-{index}"
        k = 0
        # Stagger start offsets across one period so the fleet offers a
        # smooth 2x rather than a phase-locked herd — eighteen clients
        # waking on the same tick monopolize the GIL in bursts that show
        # up in critical's p99 as scheduler noise, not queueing.
        stop.wait(index * period / BATCH_CLIENTS)
        while not stop.is_set():
            started = time.perf_counter()
            outcome = engine.infer(
                frames[k % len(frames)], qos_class="batch", client_id=client_id
            )
            k += 1
            with lock:
                counts[outcome.status] = counts.get(outcome.status, 0) + 1
            remaining = period - (time.perf_counter() - started)
            if remaining > 0:
                stop.wait(remaining)

    threads = [
        threading.Thread(target=_client, args=(i,), name=f"saturator-{i}", daemon=True)
        for i in range(BATCH_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    return threads


def test_admission_protects_critical_at_2x_saturation(benchmark, report):
    frames = [np.full(FRAME_SHAPE, i / 16) for i in range(16)]

    def _measure():
        engine = ServingEngine(
            _SleepScorer(),
            EngineConfig(
                max_batch_size=MAX_BATCH,
                max_wait_ms=1.0,
                queue_capacity=256,
                qos=_policy(),
            ),
        )
        try:
            # Warm the dispatch path, thread pool, and allocator — the
            # first few hundred requests of a cold engine run measurably
            # slower and would skew whichever phase went first.
            warm = _critical_load(engine, frames, requests_per_client=25)

            # Phase 1: critical fleet alone — the unloaded baseline.
            unloaded = _critical_load(engine, frames)

            # Phase 2: the same critical drive while 18 batch clients
            # offer 2x the backend's capacity for the whole window.
            stop = threading.Event()
            batch_counts = {}
            lock = threading.Lock()
            saturators = _saturate_batch(engine, frames, stop, batch_counts, lock)
            try:
                loaded = _critical_load(engine, frames)
            finally:
                stop.set()
                for thread in saturators:
                    thread.join(30.0)
            stats = engine.stats()
        finally:
            engine.close()
        return warm, unloaded, loaded, batch_counts, stats

    warm, unloaded, loaded, batch_counts, stats = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    u = unloaded.per_class["critical"]
    l = loaded.per_class["critical"]
    goodput_ratio = l["goodput_fps"] / u["goodput_fps"]
    p99_ratio = l["latency_ms_p99"] / u["latency_ms_p99"]
    batch_total = sum(batch_counts.values())
    batch_ok = batch_counts.get("ok", 0)
    batch_rejected = batch_counts.get("rejected", 0)

    result = ExperimentResult(
        exp_id="admission_qos",
        title="Admission control: critical SLO at 2x saturation (10/90 mix)",
        rows=[
            f"backend capacity       {CAPACITY_RPS:8.0f} req/s unbatched "
            f"(offered {SATURATION_MULTIPLE:.0f}x by {BATCH_CLIENTS} batch clients)",
            f"critical goodput       {u['goodput_fps']:8.1f} -> {l['goodput_fps']:8.1f} /s "
            f"({goodput_ratio * 100:5.1f}%,  gate: >= {GOODPUT_GATE * 100:.0f}%)",
            f"critical p99           {u['latency_ms_p99']:8.2f} -> "
            f"{l['latency_ms_p99']:8.2f} ms ({p99_ratio:4.2f}x,  gate: <= {P99_GATE:.1f}x)",
            f"batch outcomes         ok={batch_ok}  rejected={batch_rejected}  "
            f"other={batch_total - batch_ok - batch_rejected}",
            f"admission rejections   {stats['admission']['rejected']}",
        ],
        metrics={
            "critical_goodput_unloaded_fps": u["goodput_fps"],
            "critical_goodput_loaded_fps": l["goodput_fps"],
            "critical_goodput_ratio": goodput_ratio,
            "critical_p99_unloaded_ms": u["latency_ms_p99"],
            "critical_p99_loaded_ms": l["latency_ms_p99"],
            "critical_p99_ratio": p99_ratio,
            "batch_rejected": float(batch_rejected),
        },
        notes=(
            f"{CRITICAL_CLIENTS} critical + {BATCH_CLIENTS} batch clients, "
            f"{REQUESTS_PER_CLIENT} critical requests/client/phase, "
            f"batch quota {BATCH_CLIENT_RATE.rate_per_s:g}/s per client, "
            f"constant {BATCH_SERVICE_S * 1e3:g} ms/batch service"
        ),
    )
    report(result)

    # Gate 1: critical goodput survives the overload.
    assert goodput_ratio >= GOODPUT_GATE, (
        f"critical goodput fell to {goodput_ratio * 100:.1f}% under 2x saturation"
    )
    # Gate 2: critical tail latency survives the overload.
    assert p99_ratio <= P99_GATE, (
        f"critical p99 grew {p99_ratio:.2f}x under 2x saturation"
    )
    # Gate 3: typed-outcome accounting balances — zero silent drops.
    assert u["ok"] == u["requests"]  # unloaded critical never refused
    assert l["ok"] == l["requests"]  # loaded critical never refused either
    known = {"ok", "rejected", "overloaded", "deadline_exceeded", "degraded", "failed"}
    assert set(batch_counts) <= known, f"untyped outcome in {batch_counts}"
    expected_submitted = warm.requests + unloaded.requests + loaded.requests + batch_total
    assert stats["submitted"] == expected_submitted
    resolved = (
        stats["scored"] + stats["rejected"] + stats["rejected_admission"]
        + stats["deadline_exceeded"] + stats["failed"] + stats["degraded"]
    )
    assert resolved == stats["submitted"], (
        f"{stats['submitted']} submitted but only {resolved} resolved"
    )
    # The overload was real: the batch fleet was actually shed.
    assert batch_rejected > 0
