"""Micro-benchmark: the kernel profiler hook must be ~free when disabled.

Every kernel in the nn backend is wrapped by ``profiled``; the contract is
that the wrapper costs two loads and a branch when no profiler is
installed.  This compares pipeline scoring (the serving hot path) against
the same scoring with the raw undecorated kernels temporarily restored
(each wrapper keeps its baseline on ``__wrapped__``), and gates:

* disabled-profiler overhead under 2%,
* enabled-profiler overhead under 15% (timing + FLOP estimation + registry
  updates on every kernel call).
"""

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.nn.backend import kernel_profile
from repro.nn.backend import kernels as kernels_module
from repro.novelty import SaliencyNoveltyPipeline
from repro.telemetry import get_telemetry
from repro.utils.timer import time_call

REPEATS = 30
DISABLED_GATE = 0.02
ENABLED_GATE = 0.15


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


class _raw_kernels:
    """Temporarily restore the undecorated kernels on the module."""

    def __enter__(self):
        self._saved = {}
        for name, value in vars(kernels_module).items():
            wrapped = getattr(value, "__wrapped__", None)
            if callable(value) and wrapped is not None:
                self._saved[name] = value
                setattr(kernels_module, name, wrapped)
        assert self._saved, "no profiled kernels found on the module"
        return self

    def __exit__(self, *exc):
        for name, value in self._saved.items():
            setattr(kernels_module, name, value)
        return False


def test_profiler_overhead_on_the_serving_path(benchmark, bench_workbench, report):
    assert get_telemetry().enabled is False, "benchmark requires the null backend"

    pipeline = _fitted_pipeline(bench_workbench)
    test = bench_workbench.batch("dsu", "test").frames
    frames = np.stack([test[i % len(test)] for i in range(8)])
    pipeline.score_batch(frames)  # warm caches outside the timed region

    with _raw_kernels():
        baseline_scores, baseline = time_call(
            pipeline.score_batch, frames, repeats=REPEATS
        )
    disabled_scores, disabled = time_call(
        pipeline.score_batch, frames, repeats=REPEATS
    )
    with kernel_profile() as profiler:
        enabled_scores, enabled = time_call(
            pipeline.score_batch, frames, repeats=REPEATS
        )
    np.testing.assert_allclose(disabled_scores, baseline_scores)
    np.testing.assert_allclose(enabled_scores, baseline_scores)
    assert profiler.snapshot(), "enabled profiler recorded nothing"

    # min-of-repeats filters scheduler noise (see test_telemetry_overhead).
    disabled_overhead = disabled.min / baseline.min - 1.0
    enabled_overhead = enabled.min / baseline.min - 1.0

    result = ExperimentResult(
        exp_id="profiler_overhead",
        title="Kernel-profiler overhead on pipeline scoring (extension)",
        rows=[
            f"{'raw kernels ms/batch (min)':<30} {baseline.min * 1e3:>8.3f}",
            f"{'disabled hook ms/batch (min)':<30} {disabled.min * 1e3:>8.3f}",
            f"{'enabled hook ms/batch (min)':<30} {enabled.min * 1e3:>8.3f}",
            f"{'disabled overhead':<30} {disabled_overhead:>8.2%}"
            f"  (gate: < {DISABLED_GATE:.0%})",
            f"{'enabled overhead':<30} {enabled_overhead:>8.2%}"
            f"  (gate: < {ENABLED_GATE:.0%})",
        ],
        metrics={
            "baseline_ms": baseline.min * 1e3,
            "disabled_ms": disabled.min * 1e3,
            "enabled_ms": enabled.min * 1e3,
            "disabled_overhead_fraction": disabled_overhead,
            "enabled_overhead_fraction": enabled_overhead,
        },
        notes=(
            f"min over {REPEATS} repeats of an 8-frame score_batch; baseline "
            "runs each kernel's __wrapped__ original with the hook removed"
        ),
    )
    report(result)
    benchmark.pedantic(pipeline.score_batch, args=(frames,), rounds=3, iterations=1)
    assert disabled_overhead < DISABLED_GATE, (
        f"disabled profiler hook adds {disabled_overhead:.1%} to scoring "
        f"(gate {DISABLED_GATE:.0%})"
    )
    assert enabled_overhead < ENABLED_GATE, (
        f"enabled profiler adds {enabled_overhead:.1%} to scoring "
        f"(gate {ENABLED_GATE:.0%})"
    )
