"""Micro-benchmark: WAL journaling must be ~free on the serving path.

Durability is only on by default if nobody notices it: with
``--journal-dir`` set, every admitted request writes an admit and a
resolve record to the write-ahead journal (flush-per-append, fsync only
at rotation/snapshot — page cache survives ``kill -9``, so that is the
crash model the journal defends).  This compares ``ServingEngine``
throughput with a :class:`~repro.durability.RequestLedger` attached
against the identical engine with journaling off, and gates the
overhead at 5% — same bar as the telemetry and reliability-guard gates.
"""

import numpy as np

from repro.config import BENCH
from repro.durability import Journal, RequestLedger
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline
from repro.serving import EngineConfig, PipelineScorer, ServingEngine
from repro.utils.timer import time_call

REPEATS = 20
FRAMES = 32


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def test_journal_overhead_under_5_percent(
    benchmark, bench_workbench, report, tmp_path
):
    pipeline = _fitted_pipeline(bench_workbench)
    frames = np.stack(bench_workbench.batch("dsu", "test").frames[:FRAMES])

    engine = ServingEngine(
        PipelineScorer(pipeline),
        EngineConfig(max_batch_size=8, max_wait_ms=1.0, queue_capacity=2 * FRAMES),
    )
    journal = Journal(tmp_path / "journal")
    try:
        engine.infer_many(frames)  # warm-up: BLAS pools, dispatch thread

        bare, bare_timer = time_call(engine.infer_many, frames, repeats=REPEATS)

        engine.attach_ledger(RequestLedger(journal))
        engine.infer_many(frames)  # warm-up: journal segment open
        journaled, journaled_timer = time_call(
            engine.infer_many, frames, repeats=REPEATS
        )

        assert all(o.status == "ok" for o in bare)
        assert all(o.status == "ok" for o in journaled)
        for a, b in zip(bare, journaled):
            assert a.score == b.score  # journaling never touches verdicts

        # Min-of-repeats: the journal writes land in page cache, so the
        # signal is microseconds of encode+write per request against
        # milliseconds of scoring; scheduler noise dominates the mean.
        overhead = journaled_timer.min / bare_timer.min - 1.0

        ledger_stats = engine.stats()["ledger"]
        assert ledger_stats["outstanding"] == 0
        assert ledger_stats["admitted"] == (REPEATS + 1) * FRAMES

        result = ExperimentResult(
            exp_id="journal_overhead",
            title="WAL journaling overhead on the serving path (extension)",
            rows=[
                f"{'bare ms/32 frames (min)':<28} {bare_timer.min * 1e3:>8.3f}",
                f"{'journaled ms/32 (min)':<28} {journaled_timer.min * 1e3:>8.3f}",
                f"{'overhead':<28} {overhead:>8.2%}",
            ],
            metrics={
                "bare_ms": bare_timer.min * 1e3,
                "journaled_ms": journaled_timer.min * 1e3,
                "overhead_fraction": overhead,
            },
            notes=(
                f"min over {REPEATS} repeats of {FRAMES} frames through the "
                "batching engine; journaled path = admit + resolve WAL "
                "record per request (flush-per-append, no per-record fsync)"
            ),
        )
        report(result)
        benchmark.pedantic(engine.infer_many, args=(frames,), rounds=3, iterations=1)
        assert overhead < 0.05, (
            f"request journaling adds {overhead:.1%} to the serving path "
            f"(journaled {journaled_timer.min * 1e3:.3f}ms vs "
            f"bare {bare_timer.min * 1e3:.3f}ms)"
        )
    finally:
        engine.close()
        journal.close()
