"""Micro-benchmark: disabled telemetry must be ~free on the VBP hot path.

The telemetry subsystem's contract is that instrumented code costs nothing
when the null backend is active.  This compares the instrumented VBP
scoring entry point (``VisualBackProp._compute``, which opens
``vbp.forward`` / ``vbp.backproject`` spans) against the bare computation
(``_averaged_maps`` + ``_backproject``, the exact same math with no
telemetry calls) and requires the null backend's overhead to stay under 5%.
The measured ratio is recorded in ``benchmarks/reports/`` alongside the
paper artifacts.
"""

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.saliency.vbp import VisualBackProp
from repro.telemetry import get_telemetry
from repro.utils.timer import time_call

REPEATS = 30


def test_null_backend_overhead_under_5_percent(benchmark, bench_workbench, report):
    assert get_telemetry().enabled is False, "benchmark requires the null backend"

    vbp = VisualBackProp(bench_workbench.steering_model("dsu"))
    frames = bench_workbench.batch("dsu", "test").frames[:8]
    frames4d = np.asarray(frames, dtype=np.float64)[:, None, :, :]

    def bare(batch):
        """The same computation _compute performs, minus instrumentation."""
        maps = vbp._averaged_maps(batch)
        return vbp._backproject(maps, batch.shape[2:])

    # Warm-up outside the timed region (BLAS thread pools, caches).
    vbp._compute(frames4d)
    bare(frames4d)

    instrumented, instrumented_timer = time_call(
        vbp._compute, frames4d, repeats=REPEATS
    )
    baseline, baseline_timer = time_call(bare, frames4d, repeats=REPEATS)
    np.testing.assert_allclose(instrumented, baseline)

    # Compare the fastest laps: min is the standard micro-benchmark
    # statistic because it filters scheduler noise, which at millisecond
    # scale dwarfs the nanoseconds a no-op span costs.
    overhead = instrumented_timer.min / baseline_timer.min - 1.0

    result = ExperimentResult(
        exp_id="telemetry_overhead",
        title="Null-backend telemetry overhead on VBP scoring (extension)",
        rows=[
            f"{'baseline ms/batch (min)':<28} {baseline_timer.min * 1e3:>8.3f}",
            f"{'instrumented ms/batch (min)':<28} {instrumented_timer.min * 1e3:>8.3f}",
            f"{'overhead':<28} {overhead:>8.2%}",
        ],
        metrics={
            "baseline_ms": baseline_timer.min * 1e3,
            "instrumented_ms": instrumented_timer.min * 1e3,
            "overhead_fraction": overhead,
        },
        notes=(
            f"min over {REPEATS} repeats of an 8-frame batch; instrumented "
            "path runs through null-backend vbp.forward/vbp.backproject spans"
        ),
    )
    report(result)
    benchmark.pedantic(vbp._compute, args=(frames4d,), rounds=3, iterations=1)
    assert overhead < 0.05, (
        f"null telemetry adds {overhead:.1%} to VBP scoring "
        f"(instrumented {instrumented_timer.min * 1e3:.3f}ms vs "
        f"baseline {baseline_timer.min * 1e3:.3f}ms)"
    )
