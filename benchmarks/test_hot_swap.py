"""Benchmark: hot-swap latency tax under closed-loop load.

Zero-downtime reload is only zero-downtime if the drain-and-swap is
cheap: while a new model is installed the dispatcher may stall for at
most one in-flight batch, so client-observed tail latency should barely
move.  This benchmark gates that claim: with swaps firing continuously
under closed-loop load, p99 latency must stay within 2x of the
steady-state p99 measured on the same engine, and every admitted
request must still resolve ``Scored`` — zero drops, zero failures.
"""

import threading
import time

import numpy as np

from repro.config import BENCH
from repro.experiments.harness import ExperimentResult
from repro.novelty import SaliencyNoveltyPipeline
from repro.serving import EngineConfig, PipelineScorer, ServingEngine
from repro.serving.loadgen import run_load

N_FRAMES = 160
CLIENTS = 4
SWAP_INTERVAL_S = 0.02
P99_GATE = 2.0


def _fitted_pipeline(bench_workbench):
    pipeline = SaliencyNoveltyPipeline(
        bench_workbench.steering_model("dsu"),
        BENCH.image_shape,
        loss="ssim",
        config=bench_workbench.autoencoder_config(),
        rng=0,
    )
    pipeline.fit(bench_workbench.batch("dsu", "train").frames)
    return pipeline


def test_hot_swap_latency(benchmark, bench_workbench, report):
    pipeline = _fitted_pipeline(bench_workbench)
    test = bench_workbench.batch("dsu", "test").frames
    frames = [test[i % len(test)] for i in range(N_FRAMES)]
    pipeline.score_batch(np.stack(frames[:8]))  # warm layer caches

    def _measure():
        engine = ServingEngine(
            PipelineScorer(pipeline, model_version="v1"),
            EngineConfig(max_batch_size=8, max_wait_ms=2.0, queue_capacity=N_FRAMES),
        )
        try:
            engine.infer(frames[0])  # warm the dispatch path

            # Phase 1: steady state — no swaps, same closed-loop drive.
            steady = run_load(engine.infer, frames, clients=CLIENTS)

            # Phase 2: same load while a rollout loop hot-swaps the model
            # back and forth for the whole run.
            stop = threading.Event()

            def _swapper():
                generation = 0
                while not stop.is_set():
                    generation += 1
                    engine.reload(pipeline, model_version=f"v{generation}")
                    time.sleep(SWAP_INTERVAL_S)

            swapper = threading.Thread(target=_swapper, name="swapper", daemon=True)
            swapper.start()
            try:
                swapping = run_load(engine.infer, frames, clients=CLIENTS)
            finally:
                stop.set()
                swapper.join(30.0)
            swaps = engine.stats()["reloads"]
        finally:
            engine.close()
        return steady, swapping, swaps

    steady, swapping, swaps = benchmark.pedantic(_measure, rounds=1, iterations=1)
    ratio = swapping.latency_ms_p99 / steady.latency_ms_p99
    result = ExperimentResult(
        exp_id="hot_swap",
        title="Hot-swap under load: p99 latency tax vs steady state",
        rows=[
            f"steady p99             {steady.latency_ms_p99:8.2f} ms",
            f"swapping p99           {swapping.latency_ms_p99:8.2f} ms",
            f"p99 ratio              {ratio:8.2f}x  (gate: <= {P99_GATE:.1f}x)",
            f"swaps during load      {swaps:8d}",
            (
                f"swapping outcomes      ok={swapping.ok}  "
                f"dropped={swapping.overloaded}  failed={swapping.failed}"
            ),
        ],
        metrics={
            "p99_steady_ms": steady.latency_ms_p99,
            "p99_swapping_ms": swapping.latency_ms_p99,
            "p99_ratio": ratio,
            "swaps": float(swaps),
            "throughput_swapping_fps": swapping.throughput_fps,
        },
        notes=(
            f"{N_FRAMES} bench-scale frames, {CLIENTS} closed-loop clients, "
            f"a reload every {SWAP_INTERVAL_S * 1e3:.0f} ms"
        ),
    )
    report(result)
    # Zero dropped or failed admitted requests through every swap.
    assert steady.ok == steady.requests
    assert swapping.ok == swapping.requests
    assert swaps >= 1  # the rollout loop really ran
    assert swapping.latency_ms_p99 <= P99_GATE * steady.latency_ms_p99
