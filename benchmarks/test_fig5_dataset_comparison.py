"""Benchmark: Figure 5 — the central three-system comparison (EXP-F5).

Regenerates the paper's histogram figure as separation statistics for the
three systems (raw+MSE, VBP+MSE, VBP+SSIM), trained on DSU with DSI as the
novel class, and asserts the comparative claims.
"""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig5_dataset_comparison(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)

    # Paper: "MSE loss on VBP images improves upon MSE loss on original
    # images, while SSIM loss on VBP images most clearly separates the two
    # class distributions."
    assert result.metrics["auroc_vbp_mse"] > result.metrics["auroc_raw_mse"]
    assert result.metrics["auroc_vbp_ssim"] >= result.metrics["auroc_vbp_mse"] - 0.01
    assert result.metrics["overlap_vbp_ssim"] <= result.metrics["overlap_raw_mse"]

    # Paper: "all of DSI testing samples were classified as novel" under the
    # proposed method; we require >= 90% at bench scale.
    assert result.metrics["detect_vbp_ssim"] >= 0.9

    # Paper: target-class SSIM ~0.7 vs novel ~0 — we assert the gap's
    # direction and a clear margin.
    assert (
        result.metrics["ssim_target_mean"]
        > result.metrics["ssim_novel_mean"] + 0.05
    )
