"""Benchmark: Figure 2 — VBP masks vs learned features (see EXP-F2)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_fig2_vbp_alignment(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)
    # VBP extracts the road-edge features for every network variant...
    assert result.metrics["concentration_trained"] > 1.0
    # ...and the trained network is in the same range as the controls (the
    # documented substrate deviation: value-based saliency is label-weak).
    assert result.metrics["trained_over_random"] > 0.5
