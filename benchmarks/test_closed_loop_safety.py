"""Benchmark: closed-loop safety with detector hand-over (extension)."""

from repro.config import BENCH
from repro.experiments.registry import run_experiment


def test_closed_loop_safety(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_experiment("safety", BENCH, workbench=bench_workbench),
        rounds=1,
        iterations=1,
    )
    report(result)

    # A clean camera keeps the car on the road...
    assert result.metrics["offroad_clean"] == 0.0
    # ...a blocked lens does not...
    assert result.metrics["offroad_blocked"] > 0.05
    # ...and the detector-triggered hand-over restores safety.
    assert result.metrics["offroad_guarded"] == 0.0
    assert result.metrics["max_offset_guarded"] < result.metrics["max_offset_blocked"]
    # The hand-over must come after the fault (no pre-fault false alarm)
    # and promptly (the persistence rule's floor is 2 frames).
    assert 0 <= result.metrics["handover_latency"] <= 10
