#!/usr/bin/env python
"""Real-time monitoring: novelty detection on a simulated drive.

The paper picks VBP over slower saliency methods specifically for
"real-world systems where real-time decision making is required".  This
example simulates that deployment: a drive that starts in the training
domain (outdoor/DSU), suffers a brief sensor-noise burst, recovers, and
then enters an entirely unseen environment (indoor/DSI).  A
:class:`repro.novelty.StreamMonitor` scores each incoming frame and raises
a persistence alarm when novelty lasts — single-frame glitches warn but do
not alarm.

Run:  python examples/realtime_monitor.py
"""

import numpy as np

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    train_pilotnet,
)
from repro.datasets import add_gaussian_noise
from repro.novelty import AutoencoderConfig, StreamMonitor

IMAGE_SHAPE = (24, 64)
SEED = 0


def build_drive(dsu, dsi):
    """A 60-frame drive: 20 clean, 5 noisy, 10 clean, 25 out-of-domain."""
    clean_a = dsu.render_batch(20, rng=SEED + 10).frames
    burst = add_gaussian_noise(dsu.render_batch(5, rng=SEED + 11).frames, 0.5, rng=SEED)
    clean_b = dsu.render_batch(10, rng=SEED + 12).frames
    unseen = dsi.render_batch(25, rng=SEED + 13).frames
    frames = np.concatenate([clean_a, burst, clean_b, unseen])
    phases = ["clean"] * 20 + ["noise-burst"] * 5 + ["clean"] * 10 + ["new-domain"] * 25
    return frames, phases


def main() -> None:
    print("training the steering CNN and fitting the detector...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    dsi = SyntheticIndoor(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)

    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)
    pipeline = SaliencyNoveltyPipeline(
        model,
        IMAGE_SHAPE,
        loss="ssim",
        config=AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9),
        rng=SEED,
    )
    pipeline.fit(train.frames)

    monitor = StreamMonitor(pipeline, window=5, min_consecutive=3)
    frames, phases = build_drive(dsu, dsi)

    print("\nstreaming the drive through the monitor:\n")
    print(f"{'frame':>5} {'phase':<12} {'score':>8} {'novel':>6} {'alarm':>6}")
    first_alarm = None
    for verdict, phase in zip(monitor.observe_batch(frames), phases):
        marker = "  <-- ALARM" if verdict.alarm else ""
        if verdict.alarm and first_alarm is None:
            first_alarm = verdict.index
        if verdict.is_novel or verdict.index % 10 == 0:
            print(
                f"{verdict.index:>5} {phase:<12} {verdict.score:>8.4f} "
                f"{str(verdict.is_novel):>6} {str(verdict.alarm):>6}{marker}"
            )

    domain_change = 35  # the drive enters the unseen environment here
    print(f"\nframes seen: {monitor.frames_seen}")
    print(f"alarm frames: {monitor.alarm_frames}")
    if first_alarm is None:
        print("no persistent alarm raised (unexpected at these settings)")
    else:
        print(
            f"first alarm at frame {first_alarm} — the unseen environment "
            f"begins at frame {domain_change}, so the hand-over latency is "
            f"{max(first_alarm - domain_change, 0)} frames. A brief noise "
            "burst may warn per-frame without sustaining an alarm."
        )


if __name__ == "__main__":
    main()
