#!/usr/bin/env python
"""Tuning and deployment: search hyperparameters, save the winner, reload.

The workflow a team adopting this library would actually run:

1. grid-search the one-class stage's hyperparameters on held-out data;
2. refit the best configuration;
3. persist the fitted pipeline (autoencoder weights + decision threshold)
   and the steering model to disk;
4. reload both in a fresh "deployment" context and verify the decisions
   match bit-for-bit.

Run:  python examples/tuning_and_persistence.py
"""

from pathlib import Path

import numpy as np

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    train_pilotnet,
)
from repro.nn import load_model, save_model
from repro.novelty import AutoencoderConfig, load_pipeline_state, save_pipeline_state
from repro.tuning import grid_search, render_leaderboard

IMAGE_SHAPE = (24, 64)
SEED = 0
OUT = Path("out/deployment")


def main() -> None:
    print("preparing data and the steering model...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    test = dsu.render_batch(50, rng=SEED + 1)
    novel = SyntheticIndoor(IMAGE_SHAPE).render_batch(50, rng=SEED + 2)

    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)

    # -- 1. hyperparameter search -----------------------------------------
    print("grid-searching the one-class stage (8 candidates)...\n")
    trials = grid_search(
        model,
        IMAGE_SHAPE,
        train_frames=train.frames,
        test_frames=test.frames,
        novel_frames=novel.frames,
        grid={
            "loss": ["ssim", "mse"],
            "hidden": [(64, 16, 64), (32, 8, 32)],
            "learning_rate": [1e-3, 3e-3],
        },
        base_config=AutoencoderConfig(epochs=20, batch_size=32, ssim_window=9),
        rng=SEED,
    )
    print(render_leaderboard(trials, top=5))
    best = trials[0]
    print(f"\nbest configuration: {best.params}")

    # -- 2. refit the winner ----------------------------------------------
    config = AutoencoderConfig(
        epochs=20, batch_size=32, ssim_window=9,
        hidden=best.params.get("hidden", (64, 16, 64)),
        learning_rate=best.params.get("learning_rate", 1e-3),
    )
    pipeline = SaliencyNoveltyPipeline(
        model, IMAGE_SHAPE, loss=best.params.get("loss", "ssim"),
        config=config, rng=SEED,
    )
    pipeline.fit(train.frames)

    # -- 3. persist ---------------------------------------------------------
    model_path = save_and_report(model, pipeline)

    # -- 4. reload in a fresh context and verify ----------------------------
    print("\nreloading in a fresh deployment context...")
    fresh_model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=123)
    load_model(fresh_model, model_path)
    restored = load_pipeline_state(OUT / "pipeline.npz", fresh_model)

    original_decisions = pipeline.predict_novel(novel.frames)
    restored_decisions = restored.predict_novel(novel.frames)
    match = bool(np.array_equal(original_decisions, restored_decisions))
    print(f"decisions identical after reload: {match}")
    print(f"novel detection rate: {restored_decisions.mean():.1%}")


def save_and_report(model, pipeline) -> Path:
    model_path = OUT / "steering_model.npz"
    save_model(model, model_path)
    save_pipeline_state(pipeline, OUT / "pipeline.npz")
    print(f"\nsaved steering model -> {model_path}")
    print(f"saved fitted pipeline -> {OUT / 'pipeline.npz'}")
    return model_path


if __name__ == "__main__":
    main()
