#!/usr/bin/env python
"""Dataset comparison: the paper's Figure 5 as a runnable script.

Trains all three systems the paper compares —

* raw images + MSE autoencoder  (Richter & Roy, the prior method)
* VBP images + MSE autoencoder  (ablation: saliency helps even with MSE)
* VBP images + SSIM autoencoder (the proposed method)

— on the synthetic Udacity surrogate, scores a held-out target sample and a
novel sample from the indoor surrogate, and prints the separation
statistics plus an ASCII rendering of the proposed method's score
histograms (the right panel of Figure 5).

Run:  python examples/dataset_comparison.py
"""

from repro import (
    PilotNet,
    PilotNetConfig,
    RichterRoyBaseline,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    VbpMseBaseline,
    evaluate_detector,
    train_pilotnet,
)
from repro.metrics.histograms import render_ascii_histogram
from repro.novelty import AutoencoderConfig

IMAGE_SHAPE = (24, 64)
SEED = 0


def main() -> None:
    print("rendering data and training the steering CNN...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    dsi = SyntheticIndoor(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    test = dsu.render_batch(60, rng=SEED + 1)
    novel = dsi.render_batch(60, rng=SEED + 2)

    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)

    config = AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9)
    systems = {
        "raw+MSE (Richter&Roy)": RichterRoyBaseline(IMAGE_SHAPE, config=config, rng=SEED),
        "VBP+MSE (ablation)": VbpMseBaseline(model, IMAGE_SHAPE, config=config, rng=SEED),
        "VBP+SSIM (proposed)": SaliencyNoveltyPipeline(
            model, IMAGE_SHAPE, loss="ssim", config=config, rng=SEED
        ),
    }

    print("fitting and evaluating the three systems...\n")
    results = {}
    for name, system in systems.items():
        system.fit(train.frames)
        results[name] = evaluate_detector(system, test.frames, novel.frames, name=name)
        print(results[name].summary_row())

    proposed = results["VBP+SSIM (proposed)"]
    print("\nscore histograms for the proposed method "
          "('#' = target DSU, '*' = novel DSI):\n")
    print(render_ascii_histogram(proposed.comparison, width=34,
                                 label_target="DSU (target)", label_novel="DSI (novel)"))

    print(
        "\nexpected shape (paper Figure 5): separation improves "
        "raw+MSE -> VBP+MSE -> VBP+SSIM; the proposed method flags "
        "essentially every novel frame at ~0% false positives."
    )


if __name__ == "__main__":
    main()
