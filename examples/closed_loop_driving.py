#!/usr/bin/env python
"""Closed-loop driving: the paper's safety story, executed.

The steering CNN actually drives here — its predictions feed vehicle
kinematics, which move the camera, which renders the next frame.  Four
runs on the same road:

1. the trained CNN with a clean camera (stays in lane);
2. the same CNN after the camera's road view gets blocked mid-run — it
   keeps confidently steering on garbage and leaves the road;
3. the same fault, but with the novelty detector watching the frames: the
   alarm fires within a couple of frames and control hands over to the
   oracle policy (standing in for a human driver), keeping the car safe;
4. the oracle itself, for reference.

Prints a lane-offset strip chart per run.

Run:  python examples/closed_loop_driving.py
"""

import numpy as np

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticUdacity,
    train_pilotnet,
    viz,
)
from repro.novelty import AutoencoderConfig, StreamMonitor
from repro.simulation import (
    ClosedLoopSimulator,
    ModelPolicy,
    OraclePolicy,
    VehicleState,
)

IMAGE_SHAPE = (24, 64)
SEED = 0
STEPS = 260
FAULT_STEP = 40


def blocked_lens(frame: np.ndarray) -> np.ndarray:
    """Sensor fault: everything below the horizon third goes dark."""
    out = frame.copy()
    out[out.shape[0] // 3 :, :] = 0.05
    return out


def main() -> None:
    print("training the driving model (this is the long part)...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    driver = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(driver, train.frames, train.angles, epochs=40, batch_size=32, rng=SEED)

    print("training the saliency model and fitting the detector...")
    saliency_net = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(saliency_net, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)
    detector = SaliencyNoveltyPipeline(
        saliency_net, IMAGE_SHAPE, loss="ssim",
        config=AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9), rng=SEED,
    )
    detector.fit(train.frames)

    simulator = ClosedLoopSimulator(dsu, speed=2.0, dt=0.1)
    start = VehicleState(lane_offset=0.6, heading=0.0)
    oracle = OraclePolicy(dsu.geometry)
    model_policy = ModelPolicy(driver)
    half_width = dsu.geometry.road_half_width

    runs = {
        "model, clean camera": simulator.run(
            model_policy, STEPS, rng=SEED + 2, initial_state=start
        ),
        "model, blocked lens (no detector)": simulator.run(
            model_policy, STEPS, rng=SEED + 2, initial_state=start,
            disturb=blocked_lens, disturb_at=FAULT_STEP,
        ),
        "model + detector handover": simulator.run(
            model_policy, STEPS, rng=SEED + 2, initial_state=start,
            disturb=blocked_lens, disturb_at=FAULT_STEP,
            monitor=StreamMonitor(detector, window=5, min_consecutive=3),
            fallback=oracle,
        ),
        "oracle reference": simulator.run(
            oracle, STEPS, rng=SEED + 2, initial_state=start
        ),
    }

    print(f"\n(lens blocked from step {FAULT_STEP}; '|' lane edges, 'X' off-road)\n")
    for name, result in runs.items():
        print(f"=== {name} ===")
        print(result.summary_row())
        print(viz.trajectory_strip(result.lane_offsets, half_width))
        print()


if __name__ == "__main__":
    main()
