#!/usr/bin/env python
"""Saliency gallery: the image content of the paper's Figures 2 and 4.

Trains steering networks on both synthetic datasets and exports, for a few
frames each:

* the input frame,
* its VisualBackProp saliency mask,
* the mask overlaid on the input in red (Figure 4's presentation),

as PGM/PPM files under ``out/gallery/``, plus inline ASCII previews.  Also
renders the Figure 2 contrast — masks from a properly trained network next
to masks from a network trained on random steering angles.

Run:  python examples/saliency_gallery.py
"""

from pathlib import Path

import numpy as np

from repro import SyntheticIndoor, SyntheticUdacity, VisualBackProp, viz
from repro.models import PilotNet, PilotNetConfig
from repro.models.pilotnet import train_pilotnet

IMAGE_SHAPE = (24, 64)
OUT = Path("out/gallery")
SEED = 0


def train_model(frames, angles, seed=SEED):
    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=seed)
    train_pilotnet(model, frames, angles, epochs=4, batch_size=32, rng=seed)
    return model


def export(dataset_name, frames, masks):
    for i, (frame, mask) in enumerate(zip(frames, masks)):
        viz.save_pgm(frame, OUT / f"{dataset_name}_{i}_input.pgm")
        viz.save_pgm(mask, OUT / f"{dataset_name}_{i}_mask.pgm")
        viz.save_overlay_ppm(frame, mask, OUT / f"{dataset_name}_{i}_overlay.ppm")


def main() -> None:
    datasets = {
        "dsu": SyntheticUdacity(IMAGE_SHAPE),
        "dsi": SyntheticIndoor(IMAGE_SHAPE),
    }

    # --- Figure 4: masks per dataset, trained on that dataset -----------
    for name, dataset in datasets.items():
        print(f"training on {name.upper()} and generating masks...")
        train = dataset.render_batch(160, rng=SEED)
        test = dataset.render_batch(3, rng=SEED + 1)
        model = train_model(train.frames, train.angles)
        masks = VisualBackProp(model).saliency(test.frames)
        export(name, test.frames, masks)

        print(f"\n--- {name.upper()}: input (left) vs VBP mask (right) ---")
        print(viz.ascii_side_by_side(test.frames[0], masks[0], row_step=2))
        print()

    # --- Figure 2: trained vs random-label masks on the indoor data -----
    print("training the random-label control network (Figure 2)...")
    dsi = datasets["dsi"]
    train = dsi.render_batch(160, rng=SEED)
    test = dsi.render_batch(2, rng=SEED + 2)
    shuffled = np.random.default_rng(77).permutation(train.angles)
    random_net = train_model(train.frames, shuffled, seed=SEED)
    trained_net = train_model(train.frames, train.angles, seed=SEED)

    masks_random = VisualBackProp(random_net).saliency(test.frames)
    masks_trained = VisualBackProp(trained_net).saliency(test.frames)
    export("fig2_random", test.frames, masks_random)
    export("fig2_trained", test.frames, masks_trained)

    print("\n--- Figure 2: random-label mask (left) vs trained mask (right) ---")
    print(viz.ascii_side_by_side(masks_random[0], masks_trained[0], row_step=2))
    print(f"\nimage files written under {OUT}/ — any image viewer opens PGM/PPM.")


if __name__ == "__main__":
    main()
