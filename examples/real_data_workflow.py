#!/usr/bin/env python
"""Real-data workflow: running the pipeline on a dataset stored on disk.

The reproduction evaluates on synthetic renderers, but the library is built
to run on real footage.  This script demonstrates the full adoption path
using :mod:`repro.datasets.udacity_io`:

1. materialize a small dataset *on disk* in the Udacity layout (a
   ``driving_log.csv`` plus a directory of frames — here synthetic frames
   exported as PGM files, standing in for real camera dumps);
2. load it back through the real-data loader, which applies the paper's
   preprocessing (grayscale → resize → [0, 1]);
3. train the steering CNN and the novelty detector on the loaded data;
4. score an out-of-distribution sample.

Swap step 1 for your own driving log and frames directory and the rest of
the script runs unchanged.

Run:  python examples/real_data_workflow.py
"""

import csv
from pathlib import Path

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    train_pilotnet,
    viz,
)
from repro.datasets.udacity_io import load_dataset
from repro.novelty import AutoencoderConfig

DATA_DIR = Path("out/fake_udacity")
IMAGE_SHAPE = (24, 64)
SEED = 0


def materialize_dataset(n_frames: int = 160) -> Path:
    """Step 1: write frames + driving log to disk (stand-in for real data)."""
    frames_dir = DATA_DIR / "frames"
    batch = SyntheticUdacity((48, 128)).render_batch(n_frames, rng=SEED)
    rows = []
    for i, (frame, angle) in enumerate(zip(batch.frames, batch.angles)):
        name = f"center_{i:05d}.pgm"
        viz.save_pgm(frame, frames_dir / name)
        rows.append({"filename": f"frames/{name}", "steering_angle": f"{angle:.6f}"})
    log_path = DATA_DIR / "driving_log.csv"
    with open(log_path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=["filename", "steering_angle"])
        writer.writeheader()
        writer.writerows(rows)
    return log_path


def main() -> None:
    print(f"materializing an on-disk dataset under {DATA_DIR}/ ...")
    log_path = materialize_dataset()

    print("loading it back through the real-data loader...")
    frames, angles = load_dataset(log_path, size=IMAGE_SHAPE)
    print(f"  loaded {frames.shape[0]} frames at {frames.shape[1:]} "
          f"(angles in [{angles.min():+.2f}, {angles.max():+.2f}])")

    print("training the steering CNN on the loaded data...")
    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    history = train_pilotnet(model, frames, angles, epochs=4, batch_size=32, rng=SEED)
    print(f"  steering MSE: {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f}")

    print("fitting the novelty detector...")
    pipeline = SaliencyNoveltyPipeline(
        model, IMAGE_SHAPE, loss="ssim",
        config=AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9), rng=SEED,
    )
    pipeline.fit(frames)

    novel = SyntheticIndoor(IMAGE_SHAPE).render_batch(40, rng=SEED + 9)
    detected = pipeline.predict_novel(novel.frames).mean()
    false_alarms = pipeline.predict_novel(frames).mean()
    print()
    print(f"novel frames detected:  {detected:6.1%}")
    print(f"false alarms on target: {false_alarms:6.1%}")
    print("\nto use real footage: point load_dataset() at your own "
          "driving_log.csv and frames directory (PGM or NPY frames).")


if __name__ == "__main__":
    main()
