#!/usr/bin/env python
"""Serving quickstart: train → bundle → micro-batched engine → verdicts.

The paper positions its detector as an online safety monitor for deployed
driving systems.  This example walks the deployment path end to end:

1. train a tiny steering CNN and fit the VBP+SSIM pipeline;
2. save it as a versioned artifact bundle (``repro.serving.save_bundle``);
3. load the bundle back — exactly what a serving replica does at boot;
4. stand up a :class:`repro.serving.ServingEngine` (micro-batching +
   bounded admission) and stream a mixed in-domain/novel sequence
   through it one frame at a time;
5. print the typed outcomes and the engine's latency percentiles.

Run:  python examples/serving_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    train_pilotnet,
)
from repro.novelty import AutoencoderConfig
from repro.serving import (
    EngineConfig,
    PipelineScorer,
    ServingEngine,
    load_bundle,
    save_bundle,
)

IMAGE_SHAPE = (24, 64)
SEED = 0


def train_pipeline() -> SaliencyNoveltyPipeline:
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)
    pipeline = SaliencyNoveltyPipeline(
        model,
        IMAGE_SHAPE,
        loss="ssim",
        config=AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9),
        rng=SEED,
    )
    pipeline.fit(train.frames)
    return pipeline


def main() -> None:
    print("training the steering CNN and fitting the detector...")
    pipeline = train_pipeline()

    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "bundle"
        save_bundle(pipeline, bundle_dir)
        print(f"bundle saved to {bundle_dir}")

        # A serving replica starts from the bundle alone — no access to the
        # training process.  Loading validates the manifest (schema version,
        # config hash, threshold cross-check) and fails loudly on mismatch.
        bundle = load_bundle(bundle_dir)
        print(
            f"bundle loaded: image_shape={bundle.image_shape}, "
            f"threshold={bundle.threshold:.4f}"
        )

        engine = ServingEngine(
            PipelineScorer(bundle.pipeline),
            EngineConfig(max_batch_size=8, max_wait_ms=2.0, queue_capacity=64),
        )
        try:
            # A mixed stream: in-domain frames, then the unseen environment.
            target = SyntheticUdacity(IMAGE_SHAPE).render_batch(12, rng=SEED + 1).frames
            novel = SyntheticIndoor(IMAGE_SHAPE).render_batch(12, rng=SEED + 2).frames
            frames = np.concatenate([target, novel])
            labels = ["in-domain"] * len(target) + ["unseen"] * len(novel)

            print("\nsubmitting frames one at a time (the engine batches them):\n")
            outcomes = engine.infer_many(frames)
            print(f"{'frame':>5} {'stream':<10} {'score':>8} {'novel':>6} {'batch':>6}")
            for i, (outcome, label) in enumerate(zip(outcomes, labels)):
                if outcome.status != "ok":
                    print(f"{i:>5} {label:<10} {outcome.status}")
                    continue
                if outcome.is_novel or i % 6 == 0:
                    print(
                        f"{i:>5} {label:<10} {outcome.score:>8.4f} "
                        f"{str(outcome.is_novel):>6} {outcome.batch_size:>6}"
                    )

            detected = sum(
                o.status == "ok" and o.is_novel for o in outcomes[len(target):]
            )
            false_alarms = sum(
                o.status == "ok" and o.is_novel for o in outcomes[: len(target)]
            )
            stats = engine.stats()
            latency = stats["latency_ms"]
            print(f"\nunseen-domain frames flagged: {detected}/{len(novel)}")
            print(f"in-domain false alarms: {false_alarms}/{len(target)}")
            print(
                f"engine latency (ms): p50={latency['p50']:.2f} "
                f"p95={latency['p95']:.2f} p99={latency['p99']:.2f}"
            )
            print(
                f"micro-batches: {stats['batches']} "
                f"(mean size {stats['mean_batch_size']:.1f})"
            )
        finally:
            engine.close()


if __name__ == "__main__":
    main()
