#!/usr/bin/env python
"""Perturbation detection: Figure 7 plus the introduction's threat model.

The paper's Figure 7 detects Gaussian-noise corruption of in-distribution
frames; its introduction motivates the problem with adversarial attacks
("simple adversarial attacks such as the addition of noise can drastically
change the prediction of the model") and simple transformations (rotation
and translation suffice to fool CNNs).

This script fits the proposed detector once and then probes it with the
whole perturbation family: Gaussian noise, brightness shifts, blur,
occlusion, rotation, translation, and FGSM adversarial examples crafted
against the steering network itself — reporting, for each, how much the
steering prediction moves and how often the detector flags the frames.

Run:  python examples/noise_and_adversarial.py
"""

import numpy as np

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticUdacity,
    train_pilotnet,
)
from repro.datasets import (
    add_fog,
    add_gaussian_noise,
    add_rain,
    add_shadow,
    adjust_brightness,
    apply_blur,
    occlude,
    rotate,
    salt_and_pepper,
    translate,
)
from repro.datasets.adversarial import fgsm_attack, prediction_shift
from repro.novelty import AutoencoderConfig

IMAGE_SHAPE = (24, 64)
SEED = 0


def main() -> None:
    print("training the steering CNN and fitting the detector...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    test = dsu.render_batch(60, rng=SEED + 1)

    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    train_pilotnet(model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED)

    config = AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9)
    pipeline = SaliencyNoveltyPipeline(
        model, IMAGE_SHAPE, loss="ssim", config=config, rng=SEED
    )
    pipeline.fit(train.frames)

    # The VBP+SSIM pipeline is blind to additive noise (its masks are
    # noise-robust); fusing it with the raw-image MSE detector covers both
    # domain shifts and sensor noise.
    from repro import RichterRoyBaseline
    from repro.novelty import ScoreFusionDetector

    fused = ScoreFusionDetector([
        SaliencyNoveltyPipeline(model, IMAGE_SHAPE, loss="ssim", config=config, rng=SEED),
        RichterRoyBaseline(IMAGE_SHAPE, config=config, rng=SEED),
    ])
    fused.fit(train.frames)

    clean = test.frames
    perturbations = {
        "clean (control)": clean,
        "gaussian noise s=0.3": add_gaussian_noise(clean, 0.3, rng=SEED + 5),
        "gaussian noise s=0.5": add_gaussian_noise(clean, 0.5, rng=SEED + 6),
        "brightness +0.25": adjust_brightness(clean, 0.25),
        "blur s=2.0": apply_blur(clean, 2.0),
        "occlusion 40%": occlude(clean, size_frac=0.4, rng=SEED + 7),
        "rotation 20 deg": rotate(clean, 20.0),
        "translation (6, 12)px": translate(clean, 6, 12),
        "salt&pepper 10%": salt_and_pepper(clean, amount=0.1, rng=SEED + 8),
        "fog density=0.8": add_fog(clean, density=0.8),
        "rain 40 streaks": add_rain(clean, amount=40, rng=SEED + 9),
        "cast shadow": add_shadow(clean, darkness=0.5, rng=SEED + 10),
        "FGSM eps=0.1": fgsm_attack(model, clean, test.angles, epsilon=0.1),
    }

    print(
        f"\n{'perturbation':<24} {'steer shift':>12} {'mean SSIM':>10} "
        f"{'flagged':>9} {'fused':>9}"
    )
    for name, frames in perturbations.items():
        shift = prediction_shift(model, clean, frames).mean()
        similarity = pipeline.similarity(frames).mean()
        flagged = pipeline.predict_novel(frames).mean()
        fused_flagged = fused.predict_novel(frames).mean()
        print(
            f"{name:<24} {shift:>12.3f} {similarity:>10.3f} "
            f"{flagged:>9.1%} {fused_flagged:>9.1%}"
        )

    print(
        "\nreading: 'steer shift' is how far each perturbation moves the "
        "model's steering prediction (the danger); 'flagged' is how often "
        "the detector catches it (the defense). Structure-destroying "
        "perturbations (heavy noise, occlusion, large transforms) should be "
        "flagged; benign ones (brightness) largely pass — mirroring the "
        "SSIM-vs-MSE argument of the paper's Figure 3."
    )

    # Why was a specific frame flagged? Ask for an explanation.
    from repro.novelty import explain_frame

    occluded = perturbations["occlusion 40%"]
    flagged = np.flatnonzero(pipeline.predict_novel(occluded))
    if flagged.size:
        print("\nexplanation for one flagged (occluded) frame:")
        print(explain_frame(pipeline, occluded[flagged[0]]).render())


if __name__ == "__main__":
    main()
