#!/usr/bin/env python
"""Quickstart: the paper's framework end to end in ~30 seconds.

Builds the complete two-layer novelty-detection framework of Figure 1:

1. render a synthetic outdoor driving dataset (the Udacity/DSU surrogate);
2. train a PilotNet-style CNN to predict steering angles from frames;
3. fit the proposed detector — an autoencoder with SSIM loss trained on the
   CNN's VisualBackProp saliency masks;
4. score held-out in-distribution frames and out-of-distribution frames
   from a different driving domain (the indoor/DSI surrogate).

Run:  python examples/quickstart.py
"""

from repro import (
    PilotNet,
    PilotNetConfig,
    SaliencyNoveltyPipeline,
    SyntheticIndoor,
    SyntheticUdacity,
    train_pilotnet,
)
from repro.novelty import AutoencoderConfig

IMAGE_SHAPE = (24, 64)  # reduced from the paper's 60x160 for a fast demo
SEED = 0


def main() -> None:
    # -- 1. data ---------------------------------------------------------
    print("rendering synthetic driving data...")
    dsu = SyntheticUdacity(IMAGE_SHAPE)
    train = dsu.render_batch(160, rng=SEED)
    test = dsu.render_batch(50, rng=SEED + 1)
    novel = SyntheticIndoor(IMAGE_SHAPE).render_batch(50, rng=SEED + 2)

    # -- 2. steering model -------------------------------------------------
    print("training the steering CNN...")
    model = PilotNet(PilotNetConfig.for_image(IMAGE_SHAPE), rng=SEED)
    history = train_pilotnet(
        model, train.frames, train.angles, epochs=4, batch_size=32, rng=SEED
    )
    print(f"  steering MSE: {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f}")

    # -- 3. the proposed detector: CNN -> VBP -> SSIM autoencoder ---------
    print("fitting the novelty detector (VBP + SSIM autoencoder)...")
    pipeline = SaliencyNoveltyPipeline(
        model,
        IMAGE_SHAPE,
        loss="ssim",
        config=AutoencoderConfig(epochs=30, batch_size=32, ssim_window=9),
        rng=SEED,
    )
    pipeline.fit(train.frames)

    # -- 4. detection -----------------------------------------------------
    target_sim = pipeline.similarity(test.frames)
    novel_sim = pipeline.similarity(novel.frames)
    detected = pipeline.predict_novel(novel.frames)
    false_alarms = pipeline.predict_novel(test.frames)

    print()
    print(f"mean SSIM, in-distribution frames:     {target_sim.mean():+.3f}")
    print(f"mean SSIM, out-of-distribution frames: {novel_sim.mean():+.3f}")
    print(f"novel frames detected:  {detected.mean():6.1%}")
    print(f"false alarms on target: {false_alarms.mean():6.1%}")
    print()
    print(
        "paper's Figure 5 shape: high similarity for the training domain, "
        "low for the novel domain, with nearly all novel frames flagged."
    )


if __name__ == "__main__":
    main()
