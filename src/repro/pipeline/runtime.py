"""Compiling and executing scoring plans.

A :class:`ScoringPlan` is the compiled form of a detector's scoring path:
the ordered stage sequence, the reusable workspace buffers, per-stage
telemetry spans/counters, and per-stage fault guards.  Detectors compile a
plan once (:func:`compile_plan`) and execute named subsequences of it per
call — ``score`` runs ``cnn_forward → saliency_cascade → reconstruct →
similarity``; the fused monitor path adds ``steering_head`` between the
forward and the cascade so steering and novelty share one CNN forward.

Execution semantics:

* Each stage runs under a ``stage.<name>`` telemetry span carrying the
  plan's trace context (``None`` inherits the ambient request trace, so
  stage spans nest under a serving batch automatically and ship across
  the worker-pool process boundary with the other span records).
* Each stage is wrapped in a fault guard: an unexpected exception is
  re-raised as :class:`~repro.exceptions.StageError` naming the failing
  stage, so callers (the stream monitor's degraded path) can attribute
  the fault per-stage instead of per-call.  Caller-contract errors
  (``NotFittedError``, ``ConfigurationError``) and ``StageError`` itself
  pass through unchanged.
* The plan's :class:`Workspace` owns scratch buffers reused across calls
  (currently the saliency cascade's ones-kernels, keyed by geometry and
  dtype).  Buffers that escape to callers — masks, scores, verdicts —
  are never reused; only internal scratch is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, StageError
from repro.pipeline.stages import (
    AggregateStage,
    CnnForwardStage,
    MemberScoresStage,
    ReconstructStage,
    SaliencyCascadeStage,
    SimilarityStage,
    Stage,
    StageContext,
    StandardizeStage,
    SteeringHeadStage,
    VerdictStage,
)
from repro.telemetry import get_telemetry

#: Exception types the fault guard re-raises unchanged: caller-contract
#: errors, not runtime faults of a stage.
_PASSTHROUGH = (StageError, NotFittedError, ConfigurationError)

#: Stage subsequences for the common entry points of a saliency pipeline.
SCORE_STAGES = ("cnn_forward", "saliency_cascade", "reconstruct", "similarity")
FUSED_STAGES = (
    "cnn_forward",
    "steering_head",
    "saliency_cascade",
    "reconstruct",
    "similarity",
)
PREPROCESS_STAGES = ("cnn_forward", "saliency_cascade")


class Workspace:
    """Per-plan scratch buffers reused across plan invocations.

    The only arrays cached here are ones that never escape a stage — the
    saliency cascade's ones-kernels (one tiny array per conv stage per
    dtype, so a ``set_inference_dtype`` switch simply populates new keys).
    Output arrays are freshly allocated every run; reusing them would
    alias results a caller still holds.
    """

    def __init__(self) -> None:
        self.kernels: Dict[Tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def ones_kernel(self, shape: Sequence[int], dtype) -> np.ndarray:
        """A cached all-ones kernel of the given shape and dtype."""
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        kernel = self.kernels.get(key)
        if kernel is None:
            kernel = np.ones(key[0], dtype=np.dtype(dtype))
            self.kernels[key] = kernel
            self.misses += 1
        else:
            self.hits += 1
        return kernel

    def stats(self) -> Dict[str, int]:
        """Reuse statistics (cached buffers, hits, misses)."""
        return {"buffers": len(self.kernels), "hits": self.hits, "misses": self.misses}


class ScoringPlan:
    """A compiled stage sequence with spans, counters, and fault guards.

    Plans are cheap, immutable-after-compile objects: hot-swapping a model
    swaps the whole plan atomically (pipeline and plan travel together),
    and the workspace buffers swap with it.
    """

    def __init__(self, stages: Sequence[Stage], owner: str = "pipeline") -> None:
        stages = list(stages)
        if not stages:
            raise ConfigurationError("a ScoringPlan needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stage names in plan: {names}")
        self.stages: List[Stage] = stages
        self.owner = owner
        self.workspace = Workspace()
        self._by_name = {stage.name: stage for stage in stages}
        #: Per-stage invocation/error tallies (cheap, always on).
        self.counters: Dict[str, Dict[str, int]] = {
            name: {"calls": 0, "errors": 0} for name in names
        }

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """The full compiled stage sequence, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def select(self, names: Optional[Iterable[str]]) -> List[Stage]:
        """Resolve a stage subsequence (``None`` = every stage), keeping
        the compiled order and rejecting unknown names."""
        if names is None:
            return list(self.stages)
        requested = list(names)
        unknown = [n for n in requested if n not in self._by_name]
        if unknown:
            raise ConfigurationError(
                f"unknown stage(s) {unknown} — plan has {list(self.stage_names)}"
            )
        wanted = set(requested)
        return [stage for stage in self.stages if stage.name in wanted]

    def run(
        self,
        frames: np.ndarray,
        stages: Optional[Iterable[str]] = None,
        ctx: Optional[StageContext] = None,
        trace=None,
    ) -> StageContext:
        """Execute a stage subsequence over a coerced ``(N, H, W)`` stack.

        Returns the :class:`StageContext` holding every intermediate the
        selected stages produced.  ``ctx`` lets a caller preseed results
        (e.g. precomputed masks) so later stages skip the work; ``trace``
        parents the per-stage spans (``None`` inherits the ambient
        request trace).
        """
        selected = self.select(stages)
        if ctx is None:
            ctx = StageContext(frames=frames, trace=trace)
        telem = get_telemetry()
        n = int(np.asarray(frames).shape[0])
        for stage in selected:
            tallies = self.counters[stage.name]
            tallies["calls"] += 1
            try:
                with telem.span(f"stage.{stage.name}", trace=ctx.trace, frames=n):
                    stage.run(frames, ctx)
            except _PASSTHROUGH:
                tallies["errors"] += 1
                raise
            except Exception as exc:
                tallies["errors"] += 1
                raise StageError(
                    f"stage {stage.name!r} failed: {exc}", stage=stage.name
                ) from exc
        return ctx

    def describe(self) -> str:
        """Human-readable stage graph (the ``repro plan`` CLI output)."""
        lines = [f"ScoringPlan[{self.owner}]  stages={len(self.stages)}"]
        for i, stage in enumerate(self.stages, start=1):
            detail = ""
            describe = getattr(stage, "describe", None)
            if describe is not None:
                detail = f"  ({describe()})"
            tallies = self.counters[stage.name]
            lines.append(
                f"  {i}. {stage.name:<18}{detail}"
                f"  [calls={tallies['calls']} errors={tallies['errors']}]"
            )
        ws = self.workspace.stats()
        lines.append(
            f"  workspace: {ws['buffers']} cached buffers "
            f"({ws['hits']} hits / {ws['misses']} misses)"
        )
        return "\n".join(lines)


def compute_saliency(method, frames: np.ndarray) -> np.ndarray:
    """The blessed out-of-plan entry point for saliency masks.

    Everything inside the library scores through a compiled plan (whose
    ``saliency_cascade`` stage reuses the plan's cached CNN forward);
    tools that need bare masks — the mask-export CLI, the figure
    experiments, the timing benchmark — call this instead of
    ``SaliencyMethod.saliency`` directly, which a lint test bans outside
    the stage runtime so ad-hoc duplicate forwards cannot creep back in.
    """
    return method.saliency(frames)


def compile_plan(detector) -> ScoringPlan:
    """Compile a detector's scoring path into a :class:`ScoringPlan`.

    Dispatches on the detector's surface:

    * a saliency pipeline (``saliency_method`` + ``one_class``) compiles
      the full six-stage graph;
    * a score-fusion detector (``members`` + ``weights``) compiles
      ``member_scores → standardize → verdict``;
    * an ensemble (``members``) compiles ``member_scores → aggregate →
      verdict``;
    * a raw-frame detector (``one_class`` only) compiles
      ``reconstruct → similarity → verdict``.
    """
    saliency_method = getattr(detector, "saliency_method", None)
    if saliency_method is not None:
        model = getattr(saliency_method, "model", None)
        one_class = detector.one_class
        plan = ScoringPlan(
            [
                CnnForwardStage(model),
                SteeringHeadStage(model),
                SaliencyCascadeStage(saliency_method),
                ReconstructStage(one_class),
                SimilarityStage(one_class),
                VerdictStage(one_class.detector),
            ],
            owner=type(detector).__name__,
        )
        # The cascade's ones-kernels live with the plan, so a hot-swap
        # replaces model, plan, and buffers as one atomic unit.
        adopt = getattr(saliency_method, "adopt_kernel_cache", None)
        if adopt is not None:
            adopt(plan.workspace)
        return plan

    members = getattr(detector, "members", None)
    if members is not None:
        if hasattr(detector, "weights"):
            middle: Stage = StandardizeStage(detector)
        else:
            middle = AggregateStage()
        return ScoringPlan(
            [MemberScoresStage(members), middle, VerdictStage(detector.detector)],
            owner=type(detector).__name__,
        )

    one_class = getattr(detector, "one_class", None)
    if one_class is not None:
        return ScoringPlan(
            [
                ReconstructStage(one_class),
                SimilarityStage(one_class),
                VerdictStage(one_class.detector),
            ],
            owner=type(detector).__name__,
        )

    raise ConfigurationError(
        f"cannot compile a ScoringPlan for {type(detector).__name__}: expected "
        f"a saliency pipeline, an ensemble/fusion detector, or a one-class "
        f"detector surface"
    )
