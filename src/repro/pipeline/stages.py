"""The stages a compiled scoring plan executes.

The paper's framework is explicitly staged — trained CNN → VisualBackProp
mask → one-class autoencoder → SSIM → percentile threshold — and this
module makes each arrow a first-class :class:`Stage`: a named unit with a
``run(batch, ctx)`` method that reads its inputs from (and writes its
outputs to) a shared :class:`StageContext`.  The runtime
(:mod:`repro.pipeline.runtime`) sequences stages, wraps each in a
telemetry span and a fault guard, and owns the reusable workspace buffers.

The canonical saliency-pipeline decomposition:

``cnn_forward``
    One forward pass through the prediction CNN, collecting every layer's
    activation.  Both heads below consume this *same* cached forward —
    the monitor/closed-loop path no longer pays a second one.
``steering_head``
    The steering angle, read off the cached network output.
``saliency_cascade``
    Saliency masks ("VBP images") from the cached activations.
``reconstruct``
    The one-class autoencoder's reconstruction of the masks.
``similarity``
    Reconstruction loss per frame (the novelty score) and the paper's
    similarity convention.
``verdict``
    Threshold decisions and margins under the fitted detector.

Ensembles, fusion, and the raw-image baseline run on the same runtime
with their own stage sets (``member_scores`` → ``aggregate`` /
``standardize`` → ``verdict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import StageError


@runtime_checkable
class Stage(Protocol):
    """One named unit of the scoring path.

    ``run`` reads earlier stages' results from ``ctx`` and writes its own
    back; ``batch`` is the coerced ``(N, H, W)`` frame stack the plan was
    invoked with.  Stages must not mutate ``batch``.
    """

    name: str

    def run(self, batch: np.ndarray, ctx: "StageContext") -> None: ...


@dataclass
class StageContext:
    """Per-invocation cache shared by the stages of one plan run.

    Every array a stage computes lands here exactly once, so downstream
    stages (and callers — :func:`repro.novelty.explain_frame` reads masks,
    reconstruction, and scores out of one run) never recompute it.
    Arrays handed out of a context escape to callers and are therefore
    freshly allocated per run — only internal workspace buffers
    (:class:`~repro.pipeline.runtime.Workspace`) are reused across calls.
    """

    #: The coerced ``(N, H, W)`` input frames.
    frames: np.ndarray
    #: Trace context for the per-stage spans (``None`` inherits the
    #: ambient thread-local context, e.g. a serving batch's trace).
    trace: Any = None
    #: Prediction-network output for the batch, ``(N, 1)``.
    model_output: Optional[np.ndarray] = None
    #: Every layer's activation from the single CNN forward.
    activations: Optional[List[np.ndarray]] = None
    #: Steering angles, ``(N,)``.
    angles: Optional[np.ndarray] = None
    #: Saliency masks ("VBP images"), ``(N, H, W)`` in [0, 1].
    masks: Optional[np.ndarray] = None
    #: Flattened autoencoder input, ``(N, H*W)``.
    flat: Optional[np.ndarray] = None
    #: Autoencoder reconstruction, flat and reshaped to the input.
    recon_flat: Optional[np.ndarray] = None
    recon: Optional[np.ndarray] = None
    #: Loss-oriented novelty scores (higher = more novel), ``(N,)``.
    scores: Optional[np.ndarray] = None
    #: Scores in the paper's similarity convention.
    similarity: Optional[np.ndarray] = None
    #: Threshold decisions and margins (verdict stage).
    is_novel: Optional[np.ndarray] = None
    margins: Optional[np.ndarray] = None
    #: Per-member score matrix ``(n_members, N)`` (ensemble/fusion plans).
    member_scores: Optional[np.ndarray] = None
    #: Free-form slots for detector-specific stages.
    extras: Dict[str, Any] = field(default_factory=dict)


def _require(ctx_value, producer: str, consumer: str):
    """A stage's input must have been produced by an earlier stage."""
    if ctx_value is None:
        raise StageError(
            f"stage {consumer!r} needs the result of {producer!r}, which has "
            f"not run in this plan invocation",
            stage=consumer,
        )
    return ctx_value


class CnnForwardStage:
    """Single forward pass through the prediction CNN, caching activations."""

    name = "cnn_forward"

    def __init__(self, model) -> None:
        self.model = model

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        out, activations = self.model.forward_with_activations(
            batch[:, None, :, :], training=False
        )
        ctx.model_output = out
        ctx.activations = activations

    def describe(self) -> str:
        return f"forward_with_activations, dtype {np.dtype(self.model.dtype).name}"


class SteeringHeadStage:
    """Steering angles read off the cached network output (no new forward)."""

    name = "steering_head"

    def __init__(self, model) -> None:
        self.model = model

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        output = _require(ctx.model_output, "cnn_forward", self.name)
        extract = getattr(self.model, "angles_from_output", None)
        ctx.angles = extract(output) if extract is not None else output[:, 0]

    def describe(self) -> str:
        return "angles from cached cnn_forward output"


class SaliencyCascadeStage:
    """Saliency masks from the cached activations of ``cnn_forward``.

    Falls back to the method's own forward pass for saliency methods that
    cannot consume a precomputed forward (none in this library do, but the
    stage stays correct for third-party methods).
    """

    name = "saliency_cascade"

    def __init__(self, method) -> None:
        self.method = method

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        from_forward = getattr(self.method, "saliency_from_forward", None)
        if from_forward is not None and ctx.activations is not None:
            ctx.masks = from_forward(
                batch[:, None, :, :], ctx.model_output, ctx.activations
            )
        else:
            ctx.masks = self.method.saliency(batch)

    def describe(self) -> str:
        return (
            f"{type(self.method).__name__} from cached activations, "
            f"dtype {np.dtype(self.method.dtype).name}"
        )


class ReconstructStage:
    """One-class autoencoder forward over the masks (or raw frames)."""

    name = "reconstruct"

    def __init__(self, one_class) -> None:
        self.one_class = one_class

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        inputs = ctx.masks if ctx.masks is not None else batch
        oc = self.one_class
        flat = oc._flatten(inputs)
        if oc.architecture == "dense":
            model_input = flat
        else:
            h, w = oc.image_shape
            model_input = flat.reshape(flat.shape[0], 1, h, w)
        ctx.flat = flat
        ctx.recon_flat = oc.autoencoder.predict(model_input)
        ctx.recon = ctx.recon_flat.reshape(np.asarray(inputs).shape)

    def describe(self) -> str:
        oc = self.one_class
        return (
            f"{oc.architecture} autoencoder, "
            f"dtype {np.dtype(oc.dtype).name}"
        )


class SimilarityStage:
    """Per-frame reconstruction loss (the novelty score) + similarity."""

    name = "similarity"

    def __init__(self, one_class) -> None:
        self.one_class = one_class

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        oc = self.one_class
        flat = _require(ctx.flat, "reconstruct", self.name)
        recon = _require(ctx.recon_flat, "reconstruct", self.name)
        ctx.scores = oc._loss.per_sample(recon, flat)
        if oc.loss_name in ("ssim", "msssim"):
            ctx.similarity = 1.0 - ctx.scores
        else:
            ctx.similarity = -ctx.scores

    def describe(self) -> str:
        return f"{self.one_class.loss_name} loss, higher = more novel"


class VerdictStage:
    """Threshold decisions and margins under the fitted detector rule."""

    name = "verdict"

    def __init__(self, detector) -> None:
        self.detector = detector

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        scores = _require(ctx.scores, "similarity", self.name)
        ctx.is_novel = self.detector.predict(scores)
        ctx.margins = self.detector.novelty_margin(scores)

    def describe(self) -> str:
        if getattr(self.detector, "is_fitted", False):
            return f"threshold {float(self.detector.threshold):.6g}"
        return "threshold unfitted"


class MemberScoresStage:
    """Per-member score matrix for ensemble/fusion detectors."""

    name = "member_scores"

    def __init__(self, members) -> None:
        self.members = members

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        ctx.member_scores = np.stack(
            [member.score(batch) for member in self.members]
        )

    def describe(self) -> str:
        return f"{len(self.members)} members"


class AggregateStage:
    """Mean member score — the ensemble's fused novelty score."""

    name = "aggregate"

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        member_scores = _require(ctx.member_scores, "member_scores", self.name)
        ctx.scores = member_scores.mean(axis=0)

    def describe(self) -> str:
        return "mean over members"


class StandardizeStage:
    """Z-score standardization + weighted fusion for heterogeneous members."""

    name = "standardize"

    def __init__(self, fusion) -> None:
        self.fusion = fusion

    def run(self, batch: np.ndarray, ctx: StageContext) -> None:
        from repro.exceptions import NotFittedError

        fusion = self.fusion
        if fusion._means is None:
            raise NotFittedError("ScoreFusionDetector used before fit()")
        member_scores = _require(ctx.member_scores, "member_scores", self.name)
        z = (member_scores - fusion._means[:, None]) / fusion._stds[:, None]
        ctx.extras["member_zscores"] = z
        ctx.scores = np.einsum("m,mn->n", fusion.weights, z)
        ctx.similarity = -ctx.scores

    def describe(self) -> str:
        return "z-score per member, weighted mean"
