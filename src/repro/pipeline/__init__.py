"""The stage-graph scoring runtime.

Decomposes the paper's staged framework (CNN forward → saliency mask →
autoencoder reconstruction → similarity → verdict) into explicit
:class:`Stage` objects sequenced by a compiled :class:`ScoringPlan` —
single shared CNN forward for steering *and* novelty, per-stage telemetry
spans and fault guards, and workspace buffers reused across calls.  See
``docs/architecture.md`` ("Stage runtime") for the execution semantics.
"""

from repro.pipeline.runtime import (
    FUSED_STAGES,
    PREPROCESS_STAGES,
    SCORE_STAGES,
    ScoringPlan,
    Workspace,
    compile_plan,
    compute_saliency,
)
from repro.pipeline.stages import (
    AggregateStage,
    CnnForwardStage,
    MemberScoresStage,
    ReconstructStage,
    SaliencyCascadeStage,
    SimilarityStage,
    Stage,
    StageContext,
    StandardizeStage,
    SteeringHeadStage,
    VerdictStage,
)

__all__ = [
    "FUSED_STAGES",
    "PREPROCESS_STAGES",
    "SCORE_STAGES",
    "ScoringPlan",
    "Workspace",
    "compile_plan",
    "compute_saliency",
    "Stage",
    "StageContext",
    "CnnForwardStage",
    "SteeringHeadStage",
    "SaliencyCascadeStage",
    "ReconstructStage",
    "SimilarityStage",
    "VerdictStage",
    "MemberScoresStage",
    "AggregateStage",
    "StandardizeStage",
]
