"""Health-gated canary rollout: shadow → canary%N → promoted | rolled-back.

The rollout state machine every model upgrade walks:

.. code-block:: text

    idle ── start_shadow() ──> shadow ── start_canary() ──> canary
                                  │                            │
                                  │ rollback()       evaluate()/step()
                                  ▼                            ▼
                             rolled_back <── gates fail   promoted (gates
                                                          clean + enough
                                                          canary traffic)

Promotion and rollback are *decisions about evidence*, and the evidence
is the signals the system already produces rather than anything bespoke:
:meth:`StreamMonitor.health() <repro.novelty.monitor.StreamMonitor.health>`
(the persistence alarm), the :mod:`repro.novelty.drift` detectors (CUSUM
on the score stream), the serving engine's circuit-breaker state, shadow
agreement from :class:`~repro.deploy.ShadowRunner`, and the canary
split's own error ledger.  :class:`RolloutGates` aggregates them into one
``evaluate()``; :class:`CanaryController` acts on the verdict — a failed
gate while the canary is live triggers an automatic revert to the primary
scorer plus a ``deploy.rollback`` telemetry event, a clean gate after
enough canary traffic hot-swaps the engine fully onto the candidate and
promotes it in the :class:`~repro.deploy.ModelRegistry`.

Traffic splitting is scorer-level: :class:`CanarySplitScorer` routes a
seeded fraction of micro-batches to the candidate and stamps each batch's
verdicts with the model that produced them, so every ``Scored`` outcome
names its model even mid-rollout.  A candidate batch that raises or
returns non-finite scores surfaces as :class:`~repro.exceptions.RolloutError`
— the engine's retry/breaker machinery then treats the sick canary
exactly like any failing backend (requests retry, usually landing on the
primary), while the split's error ledger feeds the gate that will roll
the canary back.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, RolloutError, StateRestoreError
from repro.serving.engine import PipelineScorer, ServingEngine
from repro.serving.results import BatchVerdicts
from repro.telemetry import get_telemetry

from repro.deploy.registry import ModelRegistry
from repro.deploy.shadow import ShadowRunner

#: Rollout states (also the values of :attr:`CanaryController.state`).
IDLE = "idle"
SHADOW = "shadow"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

ROLLOUT_STATES = (IDLE, SHADOW, CANARY, PROMOTED, ROLLED_BACK)


class CanarySplitScorer:
    """Routes a seeded fraction of micro-batches to a candidate scorer.

    Whole batches route to one model (splitting inside a batch would serve
    one VBP pass from two different networks); the fraction therefore
    holds in expectation over batches.  Exposes the primary's
    ``image_shape`` / ``dtype`` / ``replicas`` so it drops into a running
    :class:`~repro.serving.ServingEngine` via
    :meth:`~repro.serving.ServingEngine.set_scorer`.
    """

    def __init__(
        self,
        primary: Any,
        candidate: Any,
        fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"canary fraction must be in (0, 1), got {fraction}"
            )
        self.primary = primary
        self.candidate = candidate
        self.fraction = float(fraction)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._counts = {
            "primary_batches": 0,
            "candidate_batches": 0,
            "candidate_errors": 0,
        }

    # The engine discovers these on its scorer; forward the primary's.
    @property
    def replicas(self) -> int:
        return int(getattr(self.primary, "replicas", 1))

    @property
    def image_shape(self):
        return getattr(self.primary, "image_shape", None)

    @property
    def dtype(self):
        return getattr(self.primary, "dtype", None)

    @property
    def model_version(self):
        """Ambient fallback version (the primary's): per-batch verdicts
        carry the routed model's version explicitly."""
        return getattr(self.primary, "model_version", None)

    def score_batch(self, frames: np.ndarray) -> BatchVerdicts:
        """Score on the routed model; candidate sickness raises loudly."""
        with self._lock:
            to_candidate = self._rng.random() < self.fraction
            key = "candidate_batches" if to_candidate else "primary_batches"
            self._counts[key] += 1
        scorer = self.candidate if to_candidate else self.primary
        telem = get_telemetry()
        if to_candidate:
            telem.counter("deploy.canary_batches").inc()
        try:
            verdicts = scorer.score_batch(frames)
            if to_candidate and not np.all(
                np.isfinite(np.asarray(verdicts.scores, dtype=float))
            ):
                raise RolloutError("canary model returned non-finite scores")
        except Exception:
            if to_candidate:
                with self._lock:
                    self._counts["candidate_errors"] += 1
                telem.counter("deploy.canary_errors").inc()
            raise
        return BatchVerdicts(
            scores=verdicts.scores,
            is_novel=verdicts.is_novel,
            margins=verdicts.margins,
            model_version=getattr(scorer, "model_version", None)
            or verdicts.model_version,
        )

    def stats(self) -> Dict[str, Any]:
        """Routing counts plus the candidate's observed error rate."""
        with self._lock:
            counts = dict(self._counts)
        candidate = counts["candidate_batches"]
        counts["candidate_error_rate"] = (
            counts["candidate_errors"] / candidate if candidate else 0.0
        )
        return counts

    def close(self) -> None:
        """Close both sides (the engine-shutdown-while-split path)."""
        for scorer in (self.primary, self.candidate):
            close = getattr(scorer, "close", None)
            if close is not None:
                close()


GateCheck = Callable[[], Optional[str]]


@dataclass
class RolloutGates:
    """Named health checks whose union gates promotion.

    Each check returns ``None`` (healthy) or a failure reason string;
    :meth:`evaluate` collects every current failure.  Constructors exist
    for each signal source the canary decision is specified over —
    monitor health, score drift, breaker state, shadow agreement, and the
    canary split's error ledger — plus :meth:`add` for anything else.
    """

    checks: List[Tuple[str, GateCheck]] = field(default_factory=list)

    def add(self, name: str, check: GateCheck) -> "RolloutGates":
        """Attach one named check; returns self for chaining."""
        self.checks.append((str(name), check))
        return self

    def add_monitor(self, monitor: Any) -> "RolloutGates":
        """Gate on :meth:`StreamMonitor.health`: an active persistence
        alarm (``healthy: False``) blocks promotion."""

        def check() -> Optional[str]:
            health = monitor.health()
            if not health.get("healthy", False):
                return (
                    f"stream monitor unhealthy (alarm_active="
                    f"{health.get('alarm_active')}, degraded_frames="
                    f"{health.get('degraded_frames')})"
                )
            return None

        return self.add("monitor", check)

    def add_drift(self, detector: Any) -> "RolloutGates":
        """Gate on a :class:`~repro.novelty.drift.CusumDetector` (or any
        object with a ``drifted`` flag): signalled drift blocks promotion."""

        def check() -> Optional[str]:
            if getattr(detector, "drifted", False):
                index = getattr(detector, "drift_index", None)
                return f"score drift signalled (cusum fired at index {index})"
            return None

        return self.add("drift", check)

    def add_breaker(self, breaker: Any) -> "RolloutGates":
        """Gate on circuit-breaker state: an open breaker blocks promotion."""

        def check() -> Optional[str]:
            if breaker is None:
                return None
            state = getattr(breaker, "state", None)
            if state == "open":
                return "circuit breaker open"
            return None

        return self.add("breaker", check)

    def add_shadow(
        self,
        runner: ShadowRunner,
        min_agreement: float = 0.9,
        min_compared: int = 10,
    ) -> "RolloutGates":
        """Gate on shadow verdict agreement once enough frames compared."""

        def check() -> Optional[str]:
            stats = runner.stats()
            compared = stats["compared"]
            if compared < min_compared:
                return None  # not enough evidence to fail on yet
            rate = stats["agreement_rate"]
            if rate is not None and rate < min_agreement:
                return (
                    f"shadow agreement {rate:.3f} below {min_agreement} "
                    f"over {compared} frames"
                )
            return None

        return self.add("shadow", check)

    def add_split(
        self,
        split: CanarySplitScorer,
        max_error_rate: float = 0.0,
        min_batches: int = 1,
    ) -> "RolloutGates":
        """Gate on the canary split's error ledger (NaN scores, raises)."""

        def check() -> Optional[str]:
            stats = split.stats()
            if stats["candidate_batches"] < min_batches:
                return None
            rate = stats["candidate_error_rate"]
            if rate > max_error_rate:
                return (
                    f"canary error rate {rate:.3f} over "
                    f"{stats['candidate_batches']} batches "
                    f"(limit {max_error_rate})"
                )
            return None

        return self.add("canary_errors", check)

    def evaluate(self) -> List[str]:
        """Run every check; returns ``"name: reason"`` per current failure."""
        failures = []
        for name, check in self.checks:
            reason = check()
            if reason is not None:
                failures.append(f"{name}: {reason}")
        return failures


@dataclass(frozen=True)
class CanaryConfig:
    """Rollout policy knobs for one :class:`CanaryController`.

    Attributes
    ----------
    canary_fraction:
        Fraction of micro-batches routed to the candidate during canary.
    min_canary_batches:
        Candidate batches that must score cleanly before promotion.
    shadow_fraction:
        Fraction of scored requests mirrored during the shadow phase.
    seed:
        Seed for both the shadow sampler and the canary router.
    """

    canary_fraction: float = 0.25
    min_canary_batches: int = 8
    shadow_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_fraction < 1.0:
            raise ConfigurationError(
                f"canary_fraction must be in (0, 1), got {self.canary_fraction}"
            )
        if self.min_canary_batches < 1:
            raise ConfigurationError(
                f"min_canary_batches must be >= 1, got {self.min_canary_batches}"
            )
        if not 0.0 < self.shadow_fraction <= 1.0:
            raise ConfigurationError(
                f"shadow_fraction must be in (0, 1], got {self.shadow_fraction}"
            )


@dataclass(frozen=True)
class RolloutDecision:
    """One :meth:`CanaryController.evaluate` verdict."""

    state: str
    failed_gates: Tuple[str, ...]
    promote_ready: bool

    @property
    def healthy(self) -> bool:
        return not self.failed_gates


class CanaryController:
    """Drives one candidate version through the rollout state machine.

    Parameters
    ----------
    engine:
        The live :class:`~repro.serving.ServingEngine`.
    registry:
        The :class:`~repro.deploy.ModelRegistry` holding the candidate
        (kept truthful at every transition).
    candidate_version:
        Registry version under rollout.
    gates:
        The :class:`RolloutGates` consulted by :meth:`evaluate`.
    config:
        Rollout policy (fractions, promotion quorum, seed).
    scorer_factory:
        Builds the candidate's scorer from ``(loaded_bundle, version)``;
        defaults to an in-process :class:`~repro.serving.PipelineScorer`.
        Chaos tests substitute a factory that wraps the scorer in a
        :class:`~repro.reliability.FaultInjector`.
    """

    def __init__(
        self,
        engine: ServingEngine,
        registry: ModelRegistry,
        candidate_version: str,
        gates: Optional[RolloutGates] = None,
        config: Optional[CanaryConfig] = None,
        scorer_factory: Optional[Callable[[Any, str], Any]] = None,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.candidate_version = str(candidate_version)
        self.gates = gates if gates is not None else RolloutGates()
        self.config = config or CanaryConfig()
        self._scorer_factory = scorer_factory or (
            lambda bundle, version: PipelineScorer(
                bundle.pipeline, model_version=version
            )
        )
        self.state = IDLE
        self.shadow: Optional[ShadowRunner] = None
        self.split: Optional[CanarySplitScorer] = None
        self._primary_scorer: Optional[Any] = None
        self._journal_sink: Optional[Callable[[], None]] = None
        # Fail fast on an unknown candidate before any traffic decisions.
        self.registry.get(self.candidate_version)

    # -- durable state ----------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the rollout state machine position."""
        return {"state": self.state, "candidate_version": self.candidate_version}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the state machine position (e.g. after a crash).

        Only the *position* is durable — the live shadow mirror / split
        scorer are traffic plumbing rebuilt by re-running the transition
        (``start_shadow`` / ``start_canary``) once the engine is back; the
        recovery runbook in ``docs/reliability.md`` walks through it.
        Restoring mid-``shadow``/``canary`` therefore leaves the engine on
        the primary until the operator (or supervisor hook) re-attaches.
        """
        name = state.get("state")
        if name not in ROLLOUT_STATES:
            raise StateRestoreError(f"unknown rollout state {name!r} in journal")
        version = state.get("candidate_version")
        if version != self.candidate_version:
            raise StateRestoreError(
                f"rollout state was journaled for candidate {version!r} but "
                f"this controller drives {self.candidate_version!r}"
            )
        if name in (SHADOW, CANARY):
            # The traffic attachments died with the old process; the
            # durable fact is that the rollout was in flight and not yet
            # judged.  Re-entering from idle lets start_shadow/start_canary
            # rebuild them through the normal (registry-truthful) path.
            name = IDLE
        self.state = name

    def attach_journal(self, sink: Optional[Callable[[], None]]) -> None:
        """Journal the state machine position after every transition.

        ``sink`` is a zero-argument callable (typically
        ``StateJournal.sink("rollout")``).  Pass ``None`` to detach.
        """
        self._journal_sink = sink

    def _journal(self) -> None:
        sink = self._journal_sink
        if sink is not None:
            sink()

    def _candidate_scorer(self) -> Any:
        bundle = self.registry.load(self.candidate_version)
        # Compile the candidate's scoring plan before it sees any traffic
        # (shadowed or split) — stage-graph construction belongs to the
        # rollout transition, not to the first mirrored request.
        getattr(bundle.pipeline, "plan", None)
        return self._scorer_factory(bundle, self.candidate_version)

    def _require_state(self, *allowed: str) -> None:
        if self.state not in allowed:
            raise RolloutError(
                f"invalid transition from {self.state!r} "
                f"(allowed from: {', '.join(allowed)})"
            )

    # -- transitions -----------------------------------------------------
    def start_shadow(self) -> ShadowRunner:
        """idle → shadow: mirror live traffic onto the candidate."""
        self._require_state(IDLE)
        self.shadow = ShadowRunner(
            self._candidate_scorer(),
            fraction=self.config.shadow_fraction,
            seed=self.config.seed,
        )
        self.engine.attach_shadow(self.shadow)
        self.gates.add_shadow(self.shadow)
        self.state = SHADOW
        telem = get_telemetry()
        telem.counter("deploy.shadow_started").inc()
        telem.event(
            "deploy.shadow_started",
            model_version=self.candidate_version,
            fraction=self.config.shadow_fraction,
        )
        self._journal()
        return self.shadow

    def _detach_shadow(self) -> None:
        if self.shadow is not None:
            self.engine.attach_shadow(None)
            self.shadow.drain()
            self.shadow.close()

    def start_canary(self) -> CanarySplitScorer:
        """shadow (or idle) → canary: route real traffic to the candidate.

        Installs a :class:`CanarySplitScorer` over the engine's current
        scorer; the shadow mirror (if any) is drained and detached first —
        its agreement stats stay on the gate list as frozen evidence.
        """
        self._require_state(IDLE, SHADOW)
        self._detach_shadow()
        self._primary_scorer = self.engine.scorer
        self.split = CanarySplitScorer(
            primary=self._primary_scorer,
            candidate=self._candidate_scorer(),
            fraction=self.config.canary_fraction,
            seed=self.config.seed,
        )
        self.gates.add_split(self.split)
        self.engine.set_scorer(self.split)
        self.registry.set_status(self.candidate_version, "canary")
        self.state = CANARY
        telem = get_telemetry()
        telem.counter("deploy.canary_started").inc()
        telem.event(
            "deploy.canary_started",
            model_version=self.candidate_version,
            fraction=self.config.canary_fraction,
        )
        self._journal()
        return self.split

    def evaluate(self) -> RolloutDecision:
        """Consult every gate; no side effects (see :meth:`step`)."""
        failed = tuple(self.gates.evaluate())
        promote_ready = (
            self.state == CANARY
            and not failed
            and self.split is not None
            and self.split.stats()["candidate_batches"]
            >= self.config.min_canary_batches
        )
        return RolloutDecision(
            state=self.state, failed_gates=failed, promote_ready=promote_ready
        )

    def step(self) -> RolloutDecision:
        """Evaluate and act: auto-rollback on failed gates while the
        candidate has live traffic, auto-promote once the quorum of clean
        canary batches is in.  Returns the decision that was acted on."""
        decision = self.evaluate()
        if decision.failed_gates and self.state in (SHADOW, CANARY):
            self.rollback("; ".join(decision.failed_gates))
        elif decision.promote_ready:
            self.promote()
        return decision

    def promote(self) -> None:
        """canary → promoted: the candidate becomes *the* model.

        The engine hot-swaps fully onto the candidate (the split scorer
        is removed; requests in flight on the primary finish normally),
        the registry's serving pointer moves, and the old primary scorer
        is released.
        """
        self._require_state(CANARY)
        assert self.split is not None
        candidate_scorer = self.split.candidate
        self.engine.set_scorer(candidate_scorer)
        primary, self._primary_scorer = self._primary_scorer, None
        if primary is not None and primary is not candidate_scorer:
            close = getattr(primary, "close", None)
            if close is not None:
                close()
        self.registry.promote(self.candidate_version, note="canary gates clean")
        self.state = PROMOTED
        telem = get_telemetry()
        telem.counter("deploy.promotions").inc()
        telem.event("deploy.promoted", model_version=self.candidate_version)
        self._journal()

    def rollback(self, reason: str = "") -> None:
        """shadow | canary → rolled_back: revert to the primary model.

        The engine's scorer is restored (canary) or the mirror detached
        (shadow), the candidate's scorer is closed, the registry marks the
        version ``rolled_back``, and a ``deploy.rollback`` event records
        why.  The primary never stopped serving, so there is nothing to
        re-warm.
        """
        self._require_state(SHADOW, CANARY)
        if self.state == CANARY and self.split is not None:
            assert self._primary_scorer is not None
            self.engine.set_scorer(self._primary_scorer)
            close = getattr(self.split.candidate, "close", None)
            if close is not None:
                close()
        else:
            self._detach_shadow()
        self.registry.set_status(
            self.candidate_version, "rolled_back", note=reason
        )
        self.state = ROLLED_BACK
        telem = get_telemetry()
        telem.counter("deploy.rollbacks").inc()
        telem.event(
            "deploy.rollback", model_version=self.candidate_version, reason=reason
        )
        self._journal()
