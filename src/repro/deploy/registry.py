"""Versioned on-disk catalog of serving bundles.

A :class:`ModelRegistry` turns a directory into the source of truth for
*which* models exist and which one is serving:

.. code-block:: text

    registry/
      registry.json        # the index: entries, serving pointer, history
      bundles/
        v0001/             # bundle directories copied in at register time
        v0002/

Every entry is indexed by two hashes from the bundle itself — the
manifest's ``config_hash`` (names the configuration) and the
``manifest_sha256`` over the manifest file bytes (names the exact saved
artifact; ``repro bundle`` prints both so registrations can be scripted
and diffed from the shell).  The index is rewritten through
:func:`~repro.utils.fileio.atomic_write_text` and re-read on every
operation, so a crash mid-update leaves the previous consistent index and
concurrent CLI invocations observe each other's writes.

The registry records *state*, not mechanism: :meth:`promote` /
:meth:`rollback` move the ``serving`` pointer and append to the history
ledger; actually moving traffic is the job of
:meth:`repro.serving.ServingEngine.reload` and
:class:`~repro.deploy.CanaryController`, which call back into the
registry to keep the ledger truthful.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ArtifactError, RegistryError
from repro.serving.artifacts import LoadedBundle, load_bundle, manifest_sha256, read_manifest
from repro.utils.fileio import atomic_write_text

#: Index discriminator and the schema revision this build reads/writes.
REGISTRY_SCHEMA = "repro.deploy.registry"
REGISTRY_SCHEMA_VERSION = 1

INDEX_FILE = "registry.json"
BUNDLES_DIR = "bundles"

#: Every status an entry may hold.
ENTRY_STATUSES = ("registered", "canary", "serving", "retired", "rolled_back")

_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class RegistryEntry:
    """One cataloged bundle.

    Attributes
    ----------
    version:
        Registry-unique name (auto-assigned ``v0001``, ``v0002``, ... or
        caller-chosen).
    path:
        Bundle directory this entry points at.
    config_hash:
        The bundle manifest's recorded configuration hash.
    manifest_sha256:
        SHA-256 over the manifest file bytes — the artifact's identity;
        re-checked on :meth:`ModelRegistry.load` to catch tampering.
    status:
        One of :data:`ENTRY_STATUSES`.
    registered_unix:
        Wall-clock registration time.
    note:
        Free-form operator annotation.
    """

    version: str
    path: Path
    config_hash: str
    manifest_sha256: str
    status: str
    registered_unix: float
    note: str = ""

    def to_json(self) -> Dict[str, Any]:
        payload = {
            "version": self.version,
            "path": str(self.path),
            "config_hash": self.config_hash,
            "manifest_sha256": self.manifest_sha256,
            "status": self.status,
            "registered_unix": self.registered_unix,
        }
        if self.note:
            payload["note"] = self.note
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RegistryEntry":
        try:
            return cls(
                version=str(payload["version"]),
                path=Path(payload["path"]),
                config_hash=str(payload["config_hash"]),
                manifest_sha256=str(payload["manifest_sha256"]),
                status=str(payload["status"]),
                registered_unix=float(payload["registered_unix"]),
                note=str(payload.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"corrupt registry entry {payload!r}: {exc}") from exc


class ModelRegistry:
    """Crash-safe versioned bundle catalog rooted at one directory.

    Parameters
    ----------
    root:
        Registry directory (created on first write).
    copy_bundles:
        Whether :meth:`register` copies the bundle into
        ``root/bundles/<version>/`` (the default — the registry then owns
        a stable snapshot) or records the caller's path in place.
    """

    def __init__(self, root: Union[str, Path], copy_bundles: bool = True) -> None:
        self.root = Path(root)
        self.copy_bundles = bool(copy_bundles)
        self._lock = threading.Lock()

    # -- index I/O -------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    def _empty_index(self) -> Dict[str, Any]:
        return {
            "schema": REGISTRY_SCHEMA,
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "entries": {},
            "order": [],
            "serving": None,
            "previous_serving": None,
            "history": [],
        }

    def _read_index(self) -> Dict[str, Any]:
        if not self.index_path.exists():
            return self._empty_index()
        try:
            index = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"unreadable registry index {self.index_path}: {exc}") from exc
        if not isinstance(index, dict) or index.get("schema") != REGISTRY_SCHEMA:
            raise RegistryError(f"{self.index_path} is not a {REGISTRY_SCHEMA} index")
        if index.get("schema_version") != REGISTRY_SCHEMA_VERSION:
            raise RegistryError(
                f"registry schema version {index.get('schema_version')!r} is not "
                f"supported (this build reads version {REGISTRY_SCHEMA_VERSION})"
            )
        return index

    def _write_index(self, index: Dict[str, Any]) -> None:
        atomic_write_text(self.index_path, json.dumps(index, indent=2) + "\n")

    @staticmethod
    def _append_history(index: Dict[str, Any], action: str, version: Optional[str], **fields: Any) -> None:
        event = {"unix": round(time.time(), 3), "action": action, "version": version}
        event.update(fields)
        index["history"].append(event)

    # -- registration ----------------------------------------------------
    def register(
        self,
        bundle_path: Union[str, Path],
        version: Optional[str] = None,
        note: str = "",
    ) -> RegistryEntry:
        """Catalog a bundle under a new version.

        The bundle's manifest is fully validated first (schema, keys,
        config hash); a bundle whose ``manifest_sha256`` is already
        cataloged is rejected — re-registering the identical artifact is
        an operator error, not a new version.
        """
        bundle_path = Path(bundle_path)
        manifest = read_manifest(bundle_path)  # raises ArtifactError on a bad bundle
        sha = manifest_sha256(bundle_path)
        with self._lock:
            index = self._read_index()
            entries = index["entries"]
            for payload in entries.values():
                if payload.get("manifest_sha256") == sha:
                    raise RegistryError(
                        f"bundle {bundle_path} is already registered as "
                        f"{payload['version']} (manifest {sha})"
                    )
            if version is None:
                n = len(index["order"])
                while True:
                    n += 1
                    version = f"v{n:04d}"
                    if version not in entries:
                        break
            elif not _VERSION_RE.match(version):
                raise RegistryError(
                    f"invalid version {version!r} (want letters/digits/._- , "
                    "starting alphanumeric, at most 64 chars)"
                )
            if version in entries:
                raise RegistryError(f"version {version!r} is already registered")

            stored_path = bundle_path
            if self.copy_bundles:
                stored_path = self.root / BUNDLES_DIR / version
                self._copy_bundle(bundle_path, stored_path)
            entry = RegistryEntry(
                version=version,
                path=stored_path,
                config_hash=str(manifest["config_hash"]),
                manifest_sha256=sha,
                status="registered",
                registered_unix=round(time.time(), 3),
                note=note,
            )
            entries[version] = entry.to_json()
            index["order"].append(version)
            self._append_history(index, "register", version, manifest_sha256=sha)
            self._write_index(index)
            return entry

    def _copy_bundle(self, src: Path, dst: Path) -> None:
        """Snapshot a bundle directory crash-safely (copy-then-rename)."""
        if dst.exists():
            raise RegistryError(f"registry bundle directory {dst} already exists")
        dst.parent.mkdir(parents=True, exist_ok=True)
        tmp = dst.with_name(f".{dst.name}.tmp-{os.getpid()}")
        if tmp.exists():
            shutil.rmtree(tmp)
        try:
            shutil.copytree(src, tmp)
            os.replace(tmp, dst)
        except OSError as exc:
            shutil.rmtree(tmp, ignore_errors=True)
            raise RegistryError(f"failed to snapshot bundle into {dst}: {exc}") from exc

    # -- lookup ----------------------------------------------------------
    def list(self) -> List[RegistryEntry]:
        """Every entry, in registration order."""
        index = self._read_index()
        return [
            RegistryEntry.from_json(index["entries"][version])
            for version in index["order"]
        ]

    def get(self, version: str) -> RegistryEntry:
        """One entry by version (``RegistryError`` if unknown)."""
        index = self._read_index()
        payload = index["entries"].get(version)
        if payload is None:
            known = ", ".join(index["order"]) or "none"
            raise RegistryError(f"unknown version {version!r} (registered: {known})")
        return RegistryEntry.from_json(payload)

    def load(self, version: str) -> LoadedBundle:
        """Load a cataloged bundle, re-verifying its recorded identity.

        On top of :func:`~repro.serving.artifacts.load_bundle`'s own
        validation, the manifest file's hash must still match what was
        recorded at registration — an edited or swapped bundle fails here
        instead of silently serving different weights.
        """
        entry = self.get(version)
        try:
            current_sha = manifest_sha256(entry.path)
        except ArtifactError as exc:
            raise RegistryError(
                f"registered bundle for {version} is gone or broken: {exc}"
            ) from exc
        if current_sha != entry.manifest_sha256:
            raise RegistryError(
                f"bundle for {version} changed on disk since registration "
                f"(recorded {entry.manifest_sha256}, found {current_sha})"
            )
        return load_bundle(entry.path)

    def serving(self) -> Optional[RegistryEntry]:
        """The entry currently marked serving, if any."""
        index = self._read_index()
        version = index.get("serving")
        if version is None:
            return None
        return RegistryEntry.from_json(index["entries"][version])

    def latest(self) -> Optional[RegistryEntry]:
        """The most recently registered entry, if any."""
        index = self._read_index()
        if not index["order"]:
            return None
        return RegistryEntry.from_json(index["entries"][index["order"][-1]])

    def history(self) -> List[Dict[str, Any]]:
        """The append-only event ledger (register/status/promote/rollback)."""
        return list(self._read_index()["history"])

    # -- lifecycle transitions ------------------------------------------
    def _set_status_locked(self, index: Dict[str, Any], version: str, status: str) -> None:
        payload = index["entries"].get(version)
        if payload is None:
            raise RegistryError(f"unknown version {version!r}")
        payload["status"] = status

    def set_status(self, version: str, status: str, note: str = "") -> RegistryEntry:
        """Move one entry to a new status (with a history record).

        The serving pointer is not touched — use :meth:`promote` /
        :meth:`rollback` for that.  A version cannot leave ``serving``
        this way either.
        """
        if status not in ENTRY_STATUSES:
            raise RegistryError(
                f"unknown status {status!r} (expected one of {', '.join(ENTRY_STATUSES)})"
            )
        with self._lock:
            index = self._read_index()
            if index.get("serving") == version:
                raise RegistryError(
                    f"{version} is the serving version; promote another version "
                    "or roll back instead of editing its status"
                )
            self._set_status_locked(index, version, status)
            self._append_history(index, "status", version, status=status, note=note)
            self._write_index(index)
            return RegistryEntry.from_json(index["entries"][version])

    def promote(self, version: str, note: str = "") -> RegistryEntry:
        """Mark ``version`` as the serving model.

        The previously serving entry (if any) drops back to
        ``registered`` and is remembered as the rollback target.  Retired
        and rolled-back entries cannot be promoted.
        """
        with self._lock:
            index = self._read_index()
            payload = index["entries"].get(version)
            if payload is None:
                raise RegistryError(f"unknown version {version!r}")
            if payload["status"] in ("retired", "rolled_back"):
                raise RegistryError(
                    f"cannot promote {version}: status is {payload['status']!r}"
                )
            previous = index.get("serving")
            if previous == version:
                raise RegistryError(f"{version} is already serving")
            if previous is not None:
                self._set_status_locked(index, previous, "registered")
            index["previous_serving"] = previous
            index["serving"] = version
            payload["status"] = "serving"
            self._append_history(index, "promote", version, previous=previous, note=note)
            self._write_index(index)
            return RegistryEntry.from_json(payload)

    def rollback(self, reason: str = "") -> RegistryEntry:
        """Revert the serving pointer to the previously promoted version.

        The failed version is marked ``rolled_back`` (it cannot be
        promoted again); returns the entry now serving.
        """
        with self._lock:
            index = self._read_index()
            failed = index.get("serving")
            previous = index.get("previous_serving")
            if failed is None:
                raise RegistryError("nothing is serving; cannot roll back")
            if previous is None:
                raise RegistryError(
                    f"{failed} has no predecessor recorded; cannot roll back"
                )
            self._set_status_locked(index, failed, "rolled_back")
            self._set_status_locked(index, previous, "serving")
            index["serving"] = previous
            index["previous_serving"] = None
            self._append_history(index, "rollback", failed, restored=previous, reason=reason)
            self._write_index(index)
            return RegistryEntry.from_json(index["entries"][previous])

    def retire(self, version: str, note: str = "") -> RegistryEntry:
        """Mark a version permanently out of rotation (keeps its files)."""
        with self._lock:
            index = self._read_index()
            if index.get("serving") == version:
                raise RegistryError(f"cannot retire the serving version {version}")
            self._set_status_locked(index, version, "retired")
            if index.get("previous_serving") == version:
                index["previous_serving"] = None
            self._append_history(index, "retire", version, note=note)
            self._write_index(index)
            return RegistryEntry.from_json(index["entries"][version])
