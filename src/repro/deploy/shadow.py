"""Shadow scoring: mirror live traffic onto a candidate model.

Before a candidate bundle takes any traffic, it should see real frames —
the distribution the serving model is judged on, not a held-out batch.  A
:class:`ShadowRunner` attaches to a :class:`~repro.serving.ServingEngine`
(via :meth:`~repro.serving.ServingEngine.attach_shadow`) and receives
every resolved ``Scored`` outcome together with its frame.  A seeded
sample of them is copied onto a bounded queue and re-scored against the
candidate on a background thread; per-frame verdict agreement and score
deltas (for the paper's pipeline these are SSIM-loss deltas) accumulate
into :meth:`stats`.

The mirror path can never affect responses: outcomes are already resolved
when the runner sees them, :meth:`offer` never blocks and never raises
(a full queue just drops the sample and counts it), and a candidate that
raises or returns NaN is tallied as a shadow error rather than surfacing
anywhere near the live path.

Telemetry: ``deploy.shadow_mirrored`` / ``deploy.shadow_agree`` /
``deploy.shadow_disagree`` / ``deploy.shadow_dropped`` /
``deploy.shadow_errors`` counters and the ``deploy.shadow_score_delta``
histogram (absolute candidate-minus-primary score deltas).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DeploymentError
from repro.serving.results import Scored
from repro.telemetry import get_telemetry


class ShadowRunner:
    """Mirrors a fraction of scored frames onto a candidate scorer.

    Parameters
    ----------
    candidate:
        Scorer for the candidate model (``score_batch(frames) ->
        BatchVerdicts`` — typically a
        :class:`~repro.serving.PipelineScorer` over the candidate bundle).
        The runner owns it: :meth:`close` closes it.
    fraction:
        Probability a scored frame is mirrored (seeded, so a replayed run
        mirrors the same requests).
    seed:
        Seed for the sampling stream.
    queue_capacity:
        Bound on frames awaiting shadow scoring; overflow is dropped and
        counted, never waited on.
    """

    def __init__(
        self,
        candidate: Any,
        fraction: float = 1.0,
        seed: int = 0,
        queue_capacity: int = 256,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.candidate = candidate
        self.fraction = float(fraction)
        self._rng = np.random.default_rng(seed)
        self._queue: "queue.Queue[Optional[Tuple[np.ndarray, Scored]]]" = queue.Queue(
            maxsize=queue_capacity
        )
        self._lock = threading.Lock()
        self._counts = {
            "offered": 0,
            "mirrored": 0,
            "dropped": 0,
            "compared": 0,
            "agreements": 0,
            "errors": 0,
        }
        self._score_deltas: List[float] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._mirror_loop, name="deploy-shadow", daemon=True
        )
        self._thread.start()

    # -- live-path side --------------------------------------------------
    def offer(self, frame: np.ndarray, outcome: Scored) -> bool:
        """Maybe mirror one already-resolved request; never blocks/raises.

        Returns whether the frame was enqueued for shadow scoring.
        """
        try:
            with self._lock:
                self._counts["offered"] += 1
                sampled = self._rng.random() < self.fraction
            if not sampled or self._closed:
                return False
            try:
                self._queue.put_nowait((np.array(frame, copy=True), outcome))
            except queue.Full:
                with self._lock:
                    self._counts["dropped"] += 1
                get_telemetry().counter("deploy.shadow_dropped").inc()
                return False
            with self._lock:
                self._counts["mirrored"] += 1
            get_telemetry().counter("deploy.shadow_mirrored").inc()
            return True
        except Exception:  # noqa: BLE001 — the live path must stay unharmed
            with self._lock:
                self._counts["errors"] += 1
            return False

    # -- mirror side -----------------------------------------------------
    def _mirror_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            frame, outcome = item
            telem = get_telemetry()
            try:
                verdicts = self.candidate.score_batch(frame[None])
                score = float(np.asarray(verdicts.scores)[0])
                if not np.isfinite(score):
                    raise DeploymentError("candidate returned a non-finite score")
                is_novel = bool(np.asarray(verdicts.is_novel)[0])
                delta = score - outcome.score
                agree = is_novel == outcome.is_novel
                with self._lock:
                    self._counts["compared"] += 1
                    if agree:
                        self._counts["agreements"] += 1
                    self._score_deltas.append(delta)
                telem.counter(
                    "deploy.shadow_agree" if agree else "deploy.shadow_disagree"
                ).inc()
                telem.histogram("deploy.shadow_score_delta").observe(abs(delta))
            except Exception:  # noqa: BLE001 — a sick candidate is data, not a crash
                with self._lock:
                    self._counts["errors"] += 1
                telem.counter("deploy.shadow_errors").inc()
            finally:
                self._queue.task_done()

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Mirroring counters plus agreement/score-delta aggregates."""
        with self._lock:
            counts = dict(self._counts)
            deltas = list(self._score_deltas)
        summary: Dict[str, Any] = dict(counts)
        compared = counts["compared"]
        summary["disagreements"] = compared - counts["agreements"]
        summary["agreement_rate"] = (
            counts["agreements"] / compared if compared else None
        )
        summary["mean_score_delta"] = float(np.mean(deltas)) if deltas else 0.0
        summary["max_abs_score_delta"] = (
            float(np.max(np.abs(deltas))) if deltas else 0.0
        )
        return summary

    # -- lifecycle -------------------------------------------------------
    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait until every mirrored frame so far has been compared.

        Returns ``False`` if the backlog did not clear within the timeout
        (the join runs on a helper thread because ``Queue.join`` itself
        takes no timeout).
        """
        joiner = threading.Thread(target=self._queue.join, daemon=True)
        joiner.start()
        joiner.join(timeout_s)
        return not joiner.is_alive()

    def close(self) -> None:
        """Stop the mirror thread and close the candidate scorer."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=10.0)
        close = getattr(self.candidate, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ShadowRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
