"""Model lifecycle: versioned registry, shadow scoring, canary rollout.

The serving stack scores frames; this package decides *which model* gets
to.  A :class:`ModelRegistry` catalogs saved bundles by content hash and
tracks which version is serving; :class:`ShadowRunner` mirrors live
traffic onto a candidate without touching responses;
:class:`CanarySplitScorer` routes a seeded fraction of real batches to
it; :class:`CanaryController` walks the shadow → canary → promoted |
rolled-back state machine, gated by :class:`RolloutGates` over the
signals the system already emits (stream-monitor health, score drift,
breaker state, shadow agreement, canary errors).  The actual traffic
moves are :meth:`repro.serving.ServingEngine.reload` (zero-downtime
hot-swap) and :meth:`~repro.serving.ServingEngine.set_scorer` /
:meth:`~repro.serving.ServingEngine.attach_shadow` (rollout hooks).

See ``docs/deployment.md`` for the registry layout, the rollout state
machine, and the rollback runbook; ``repro deploy`` drives the registry
from the shell.
"""

from repro.deploy.canary import (
    CanaryConfig,
    CanaryController,
    CanarySplitScorer,
    ROLLOUT_STATES,
    RolloutDecision,
    RolloutGates,
)
from repro.deploy.registry import (
    ENTRY_STATUSES,
    ModelRegistry,
    RegistryEntry,
)
from repro.deploy.shadow import ShadowRunner

__all__ = [
    "CanaryConfig",
    "CanaryController",
    "CanarySplitScorer",
    "ENTRY_STATUSES",
    "ModelRegistry",
    "RegistryEntry",
    "ROLLOUT_STATES",
    "RolloutDecision",
    "RolloutGates",
    "ShadowRunner",
]
