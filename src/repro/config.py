"""Experiment-scale configuration.

The paper runs at 60x160 resolution over ~45k Udacity images — hours of
compute for a pure-numpy substrate.  Every experiment in this repo therefore
takes a :class:`Scale` describing image geometry, dataset sizes and training
budgets, with three presets:

* ``ci``     — seconds; used by the test suite.
* ``bench``  — tens of seconds; used by the benchmark harness.
* ``paper``  — the paper's full 60x160 geometry and sample counts.

The *comparative* claims (which method separates distributions, who is
faster) hold at every preset; EXPERIMENTS.md records which preset produced
each reported number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Scale:
    """Knobs controlling the size of an experiment.

    Attributes
    ----------
    image_shape:
        ``(H, W)`` of the preprocessed grayscale frames.
    n_train:
        Number of target-class images rendered for training (the paper uses
        80 % of these for fitting, mirroring its 80/20 split).
    n_test:
        Target-class images held out for scoring histograms (paper: 500).
    n_novel:
        Novel-class images sampled for scoring (paper: 500).
    cnn_epochs, ae_epochs:
        Training epochs for the steering CNN and the autoencoder.
    batch_size:
        Mini-batch size (paper: 32).
    ssim_window:
        SSIM window size — 11 in the paper; smaller presets shrink it so the
        window still fits comfortably inside the image.
    """

    image_shape: Tuple[int, int]
    n_train: int
    n_test: int
    n_novel: int
    cnn_epochs: int
    ae_epochs: int
    batch_size: int = 32
    ssim_window: int = 11

    def __post_init__(self) -> None:
        h, w = self.image_shape
        if h < 8 or w < 8:
            raise ConfigurationError(f"image_shape too small: {self.image_shape}")
        for field_name in ("n_train", "n_test", "n_novel", "cnn_epochs", "ae_epochs", "batch_size"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")
        if self.ssim_window % 2 == 0 or self.ssim_window < 3:
            raise ConfigurationError(
                f"ssim_window must be odd and >= 3, got {self.ssim_window}"
            )
        if self.ssim_window > min(h, w):
            raise ConfigurationError(
                f"ssim_window {self.ssim_window} exceeds image {self.image_shape}"
            )

    def with_overrides(self, **kwargs) -> "Scale":
        """A copy of this scale with the given fields replaced."""
        return replace(self, **kwargs)


#: Tiny preset used by unit/integration tests.  24x64 is the smallest
#: geometry at which the paper's method ordering (VBP+SSIM ≥ VBP+MSE >
#: raw+MSE) is stable; shrinking further makes VBP masks too uniform to
#: carry dataset identity.
CI = Scale(
    image_shape=(24, 64),
    n_train=100,
    n_test=30,
    n_novel=30,
    cnn_epochs=3,
    ae_epochs=18,
    batch_size=16,
    ssim_window=9,
)

#: Medium preset used by the benchmark harness.
BENCH = Scale(
    image_shape=(24, 64),
    n_train=160,
    n_test=60,
    n_novel=60,
    cnn_epochs=4,
    ae_epochs=30,
    batch_size=32,
    ssim_window=9,
)

#: The paper's geometry: 60x160 frames, 500-image test samples.
PAPER = Scale(
    image_shape=(60, 160),
    n_train=2000,
    n_test=500,
    n_novel=500,
    cnn_epochs=10,
    ae_epochs=60,
    batch_size=32,
    ssim_window=11,
)

PRESETS: Dict[str, Scale] = {"ci": CI, "bench": BENCH, "paper": PAPER}


def get_scale(name: str) -> Scale:
    """Look up a preset by name (``ci`` / ``bench`` / ``paper``)."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(f"unknown scale {name!r}; known scales: {known}") from None
