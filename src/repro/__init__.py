"""repro — reproduction of "Novelty Detection via Network Saliency in
Visual-based Deep Learning" (Chen, Yoon, Shao; DSN 2019).

The package implements the paper's two-layer novelty-detection framework
and every substrate it relies on:

* :mod:`repro.nn` — a from-scratch numpy deep-learning framework (layers,
  losses including differentiable SSIM, optimizers, training loop);
* :mod:`repro.models` — the PilotNet-style steering CNN and the 64-16-64
  one-class autoencoder;
* :mod:`repro.saliency` — VisualBackProp plus LRP/gradient baselines;
* :mod:`repro.metrics` — SSIM, MSE, empirical CDFs, ROC, histogram
  separation, sharpness;
* :mod:`repro.datasets` — synthetic stand-ins for the Udacity (DSU) and
  in-house indoor (DSI) driving datasets, with perturbations and FGSM;
* :mod:`repro.novelty` — the proposed pipeline and the paper's baselines;
* :mod:`repro.experiments` — one runnable experiment per paper figure.

Quickstart
----------
>>> from repro import (
...     SyntheticUdacity, SyntheticIndoor, PilotNet, PilotNetConfig,
...     train_pilotnet, SaliencyNoveltyPipeline,
... )
>>> dsu = SyntheticUdacity((24, 64))
>>> batch = dsu.render_batch(100, rng=0)
>>> net = PilotNet(PilotNetConfig.for_image((24, 64)), rng=0)
>>> _ = train_pilotnet(net, batch.frames, batch.angles, epochs=3, rng=0)
>>> pipeline = SaliencyNoveltyPipeline(net, (24, 64), rng=0).fit(batch.frames)
>>> novel = SyntheticIndoor((24, 64)).render_batch(10, rng=1)
>>> bool(pipeline.predict_novel(novel.frames).mean() > 0.5)
True
"""

from repro.config import BENCH, CI, PAPER, Scale, get_scale
from repro.datasets import SyntheticIndoor, SyntheticUdacity
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    NotFittedError,
    ReproError,
    SerializationError,
    ShapeError,
)
from repro.metrics import auroc, mse, psnr, ssim
from repro.models import ConvAutoencoder, DenseAutoencoder, PilotNet, PilotNetConfig
from repro.models.pilotnet import train_pilotnet
from repro.novelty import (
    AutoencoderConfig,
    NoveltyDetector,
    OneClassAutoencoder,
    RichterRoyBaseline,
    SaliencyNoveltyPipeline,
    VbpMseBaseline,
    evaluate_detector,
)
from repro.saliency import GradientSaliency, LayerwiseRelevancePropagation, VisualBackProp

__version__ = "1.0.0"

__all__ = [
    "BENCH",
    "CI",
    "PAPER",
    "Scale",
    "get_scale",
    "SyntheticIndoor",
    "SyntheticUdacity",
    "ConfigurationError",
    "ExperimentError",
    "NotFittedError",
    "ReproError",
    "SerializationError",
    "ShapeError",
    "auroc",
    "mse",
    "psnr",
    "ssim",
    "ConvAutoencoder",
    "DenseAutoencoder",
    "PilotNet",
    "PilotNetConfig",
    "train_pilotnet",
    "AutoencoderConfig",
    "NoveltyDetector",
    "OneClassAutoencoder",
    "RichterRoyBaseline",
    "SaliencyNoveltyPipeline",
    "VbpMseBaseline",
    "evaluate_detector",
    "GradientSaliency",
    "LayerwiseRelevancePropagation",
    "VisualBackProp",
    "__version__",
]
