"""Experiment registry: id → runnable, shared by benchmarks and the CLI."""

from __future__ import annotations

from typing import Callable, Dict

from repro.config import Scale, get_scale
from repro.exceptions import ExperimentError
from repro.experiments import (
    ablations,
    closed_loop,
    fig2_vbp_alignment,
    fig3_mse_vs_ssim,
    fig4_vbp_masks,
    fig5_dataset_comparison,
    fig6_reconstruction,
    fig7_noise_detection,
    gradual_drift,
    noise_sweep,
    online_latency,
    timing,
)
from repro.experiments.harness import ExperimentResult, Workbench
from repro.telemetry import get_telemetry

Runner = Callable[..., ExperimentResult]

#: All reproduction experiments, keyed by the paper artifact they rebuild.
EXPERIMENTS: Dict[str, Runner] = {
    "fig2": fig2_vbp_alignment.run,
    "fig3": fig3_mse_vs_ssim.run,
    "fig4": fig4_vbp_masks.run,
    "fig5": fig5_dataset_comparison.run,
    "fig6": fig6_reconstruction.run,
    "fig7": fig7_noise_detection.run,
    "reverse": fig5_dataset_comparison.run_reverse,
    "timing": timing.run,
    "ablations": ablations.run,
    "latency": online_latency.run,
    "safety": closed_loop.run,
    "noise_sweep": noise_sweep.run,
    "drift": gradual_drift.run,
}


def get_experiment(exp_id: str) -> Runner:
    """Look up an experiment runner by id."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known experiments: {known}"
        ) from None


def run_experiment(
    exp_id: str,
    scale: str = "bench",
    rng: int = 0,
    workbench: Workbench = None,
    dtype: str = None,
) -> ExperimentResult:
    """Run one experiment at a named scale preset.

    Passing a shared ``workbench`` lets callers regenerate several figures
    without re-rendering data or retraining the steering networks.
    ``dtype`` selects the inference precision policy for the workbench's
    trained models (training always runs in float64); it cannot be combined
    with an explicit ``workbench``, which carries its own policy.
    """
    runner = get_experiment(exp_id)
    scale_obj: Scale = get_scale(scale) if isinstance(scale, str) else scale
    if dtype is not None:
        if workbench is not None:
            raise ExperimentError(
                "pass dtype when the workbench is built here, or build the "
                "workbench with its own dtype — not both"
            )
        workbench = Workbench(scale_obj, seed=rng, dtype=dtype)
    telem = get_telemetry()
    with telem.span("experiment.run", exp_id=exp_id):
        result = runner(scale_obj, rng=rng, workbench=workbench)
    if telem.enabled:
        telem.event("experiment.result", exp_id=exp_id, **result.metrics)
    return result


def run_all(
    scale: str = "bench", rng: int = 0, dtype: str = None
) -> Dict[str, ExperimentResult]:
    """Run every registered experiment with one shared workbench."""
    scale_obj = get_scale(scale) if isinstance(scale, str) else scale
    bench = Workbench(scale_obj, seed=rng, dtype=dtype)
    return {
        exp_id: run_experiment(exp_id, scale_obj, rng=rng, workbench=bench)
        for exp_id in EXPERIMENTS
    }
