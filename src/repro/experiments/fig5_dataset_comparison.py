"""Figure 5 — the paper's central comparison (and the §IV-B.3 reverse run).

Trained on DSU, tested on held-out DSU (target) vs DSI (novel), three
systems side by side:

* raw images + MSE autoencoder — the Richter & Roy prior method;
* VBP images + MSE autoencoder — the ablation (middle panel);
* VBP images + SSIM autoencoder — the proposed method (right panel).

The paper's claims, which the metrics here make checkable:
"MSE loss on VBP images improves upon MSE loss on original images, while
SSIM loss on VBP images most clearly separates the two class
distributions"; the proposed method reaches "an average SSIM value of about
0.7" on target images "while DSI images had almost 0 similarity", with all
novel samples classified as novel.

``run_reverse`` swaps the datasets (train on DSI, DSU novel), reproducing
the §IV-B.3 remark that results are comparable in the other direction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.metrics.histograms import render_ascii_histogram
from repro.novelty.baselines import RichterRoyBaseline, VbpMseBaseline
from repro.novelty.evaluation import EvaluationResult, evaluate_detector
from repro.novelty.framework import SaliencyNoveltyPipeline


def _compare_systems(
    bench: Workbench, target: str, novel: str, rng: int
) -> Dict[str, EvaluationResult]:
    """Fit and evaluate the three systems for one train/novel direction."""
    scale = bench.scale
    train = bench.batch(target, "train")
    test = bench.batch(target, "test")
    novel_batch = bench.batch(novel, "novel")
    model = bench.steering_model(target)
    config = bench.autoencoder_config()

    systems = {
        "raw+MSE (Richter&Roy)": RichterRoyBaseline(
            scale.image_shape, config=config, rng=rng
        ),
        "VBP+MSE (ablation)": VbpMseBaseline(
            model, scale.image_shape, config=config, rng=rng
        ),
        "VBP+SSIM (proposed)": SaliencyNoveltyPipeline(
            model, scale.image_shape, loss="ssim", config=config, rng=rng
        ),
    }
    results = {}
    for name, system in systems.items():
        system.fit(train.frames)
        results[name] = evaluate_detector(
            system, test.frames, novel_batch.frames, name=name
        )
    return results


def _result_from_comparison(
    exp_id: str,
    title: str,
    results: Dict[str, EvaluationResult],
    show_histogram_for: str = None,
) -> ExperimentResult:
    rows: List[str] = [result.summary_row() for result in results.values()]
    if show_histogram_for and show_histogram_for in results:
        chosen = results[show_histogram_for]
        rows.append(f"-- score histogram, {show_histogram_for} --")
        rows.extend(
            render_ascii_histogram(chosen.comparison, width=30).splitlines()
        )
    metrics: Dict[str, float] = {}
    for key, result in zip(("raw_mse", "vbp_mse", "vbp_ssim"), results.values()):
        metrics[f"auroc_{key}"] = result.auroc
        metrics[f"overlap_{key}"] = result.overlap
        metrics[f"detect_{key}"] = result.detection_rate
    proposed = results["VBP+SSIM (proposed)"]
    metrics["ssim_target_mean"] = float(proposed.target_similarity.mean())
    metrics["ssim_novel_mean"] = float(proposed.novel_similarity.mean())

    # Sampling uncertainty on the headline number (stratified bootstrap).
    from repro.metrics.bootstrap import bootstrap_auroc

    interval = bootstrap_auroc(
        proposed.target_scores, proposed.novel_scores, n_resamples=500, rng=0
    )
    rows.append(f"proposed AUROC with 95% bootstrap CI: {interval}")
    metrics["auroc_vbp_ssim_ci_low"] = interval.lower
    metrics["auroc_vbp_ssim_ci_high"] = interval.upper
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        rows=rows,
        metrics=metrics,
        notes=(
            "expected shape: AUROC/detection improve raw+MSE -> VBP+MSE -> "
            "VBP+SSIM; proposed method shows high target SSIM, low novel SSIM"
        ),
    )


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 5: train on DSU, novel = DSI, three systems."""
    bench = workbench or Workbench(scale, seed=rng)
    results = _compare_systems(bench, target="dsu", novel="dsi", rng=rng)
    return _result_from_comparison(
        "fig5",
        "Dataset comparison: DSU target vs DSI novel, three systems",
        results,
        show_histogram_for="VBP+SSIM (proposed)",
    )


def run_reverse(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce §IV-B.3's reverse direction: train on DSI, DSU novel."""
    bench = workbench or Workbench(scale, seed=rng)
    results = _compare_systems(bench, target="dsi", novel="dsu", rng=rng)
    result = _result_from_comparison(
        "reverse",
        "Reverse direction: DSI target vs DSU novel (paper §IV-B.3)",
        results,
    )
    result.notes = (
        "the paper reports 'comparable results' in this direction while noting "
        "DSU is the more varied dataset"
    )
    return result
