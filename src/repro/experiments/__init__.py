"""Reproduction experiments, one module per paper figure/claim.

Each experiment module exposes ``run(scale, rng=0) -> ExperimentResult``;
:mod:`repro.experiments.registry` maps experiment ids (``fig2`` ... ``fig7``,
``reverse``, ``timing``, ``ablations``) to those callables, and the
benchmark suite under ``benchmarks/`` invokes them one per paper artifact.
"""

from repro.experiments.harness import ExperimentResult, Workbench
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "Workbench",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
