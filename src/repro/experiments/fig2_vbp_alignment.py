"""Figure 2 — VBP masks extract road-edge features.

The paper's preliminary experiment: on the in-house data, generate VBP
masks from (a) a network trained with random steering angles and (b) a
network trained with the actual angles, and observe that (b) extracts
"key areas of an image such as the edge of the road".

Our renderer provides ground-truth lane-marking masks, so the visual claim
becomes measurable: the *saliency concentration* on the (dilated) marking
region — saliency mass inside the region normalized by its area, 1.0 =
uniform attention — should be clearly above 1 for the trained network.

Known substrate deviation: VisualBackProp is a *value-based* method (it
combines feature-map magnitudes, not gradients), so at numpy scale its
masks are dominated by input contrast and the trained-vs-random-label
contrast the paper draws is weak here — both networks' masks concentrate
on the tape lines.  We report all three networks (trained, random-label,
random-weight) so the effect size is visible, and flag the deviation in the
result notes; the claim that actually carries the paper's pipeline — that
VBP masks respond to the *model* and carry dataset identity — is validated
end-to-end by the fig5 experiment.
"""

from __future__ import annotations

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench, saliency_concentration
from repro.models.pilotnet import PilotNet, PilotNetConfig
from repro.pipeline import compute_saliency
from repro.saliency.vbp import VisualBackProp

#: Dilation applied to the thin marking masks before measuring overlap.
MARKING_DILATION = 2


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 2's saliency-vs-learned-features comparison."""
    bench = workbench or Workbench(scale, seed=rng)
    test = bench.batch("dsi", "test")

    networks = {
        "trained on actual driving angles": bench.steering_model("dsi"),
        "trained on random steering angles": bench.steering_model(
            "dsi", random_labels=True
        ),
        "untrained (random weights)": PilotNet(
            PilotNetConfig.for_image(scale.image_shape), rng=rng + 31
        ),
    }
    concentrations = {}
    for name, network in networks.items():
        masks = compute_saliency(VisualBackProp(network), test.frames)
        concentrations[name] = saliency_concentration(
            masks, test.marking_masks, dilate=MARKING_DILATION
        )

    trained = concentrations["trained on actual driving angles"]
    random_labels = concentrations["trained on random steering angles"]
    rows = [f"{'network':<36} {'marking-saliency concentration':>32}"]
    rows.extend(
        f"{name:<36} {value:>32.3f}" for name, value in concentrations.items()
    )
    return ExperimentResult(
        exp_id="fig2",
        title="VBP masks extract road-edge features (trained vs random labels)",
        rows=rows,
        metrics={
            "concentration_trained": trained,
            "concentration_random_labels": random_labels,
            "concentration_random_weights": concentrations[
                "untrained (random weights)"
            ],
            "trained_over_random": trained / random_labels
            if random_labels > 0
            else float("inf"),
        },
        notes=(
            "concentration > 1 confirms VBP extracts the road-edge features, "
            "and training sharpens it well beyond the untrained network "
            "(paper's main point). DEVIATION: the trained-vs-random-LABEL gap "
            "does not manifest — memorizing shuffled labels still drives the "
            "conv filters onto the strongest image features, and value-based "
            "VBP reports feature magnitude regardless of label semantics"
        ),
    )
