"""Figure 3 — MSE vs SSIM on noise vs brightness.

The paper engineers two modified copies of a road image — one with added
Gaussian noise, one with increased brightness — "to result in similar MSE
purely based on pixel-wise loss" (91.7 vs 90.6 on the 0-255 intensity
scale) and shows SSIM tells them apart (0.64 vs 0.98): noise destroys
structure while a brightness shift preserves it.

We reproduce the construction exactly: calibrate both perturbations of a
rendered road frame to the same target MSE, then report the two metrics on
the paper's scales (MSE on 0-255 intensities, SSIM on [-1, 1]).
"""

from __future__ import annotations

from repro.config import Scale
from repro.datasets.perturbations import (
    calibrate_brightness_to_mse,
    calibrate_noise_to_mse,
)
from repro.experiments.harness import ExperimentResult, Workbench
from repro.metrics.mse import mse
from repro.metrics.ssim import ssim

#: The paper's quoted MSE (~91) lives on 0-255 intensities; our images are
#: [0, 1], so the equivalent target is 91 / 255**2.
PAPER_MSE_255 = 91.0


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 3's equal-MSE noise/brightness comparison."""
    bench = workbench or Workbench(scale, seed=rng)
    image = bench.batch("dsu", "test").frames[0]
    target_mse = PAPER_MSE_255 / 255.0**2

    noisy = calibrate_noise_to_mse(image, target_mse, rng=rng)
    bright = calibrate_brightness_to_mse(image, target_mse)

    window = scale.ssim_window
    results = {
        "original": (mse(image, image), ssim(image, image, window_size=window)),
        "gaussian noise": (mse(image, noisy), ssim(image, noisy, window_size=window)),
        "brightness": (mse(image, bright), ssim(image, bright, window_size=window)),
    }

    rows = [f"{'variant':<18} {'MSE (0-255 scale)':>18} {'SSIM':>8}"]
    for name, (m, s) in results.items():
        rows.append(f"{name:<18} {m * 255.0**2:>18.1f} {s:>8.3f}")
    rows.append(
        "paper reference:   original 0.0/1.0(identity), noise 91.7/0.64, "
        "brightness 90.6/0.98"
    )

    ssim_noise = results["gaussian noise"][1]
    ssim_bright = results["brightness"][1]
    return ExperimentResult(
        exp_id="fig3",
        title="Equal-MSE perturbations: SSIM separates noise from brightness",
        rows=rows,
        metrics={
            "mse_noise_255": results["gaussian noise"][0] * 255.0**2,
            "mse_brightness_255": results["brightness"][0] * 255.0**2,
            "ssim_noise": ssim_noise,
            "ssim_brightness": ssim_bright,
            "ssim_gap": ssim_bright - ssim_noise,
        },
        notes="both perturbations calibrated to the paper's MSE of ~91 (0-255 scale)",
    )
