"""Extension experiment — gradual drift ("driving into dusk").

The paper's threshold rule targets abrupt novelty.  Real distribution shift
is often *gradual*: light fades, fog thickens, a lens film accumulates.
This experiment simulates a dusk drive — DSU frames whose brightness and
contrast decay linearly over the stream — and compares when each mechanism
notices:

* the per-frame 99th-percentile rule with the persistence alarm
  (:class:`repro.novelty.StreamMonitor`), and
* sequential change detection on the same score stream
  (:class:`repro.novelty.CusumDetector`).

Expected shape: CUSUM accumulates the small persistent score increases and
signals no later than (typically well before) the per-frame rule, whose
individual frames stay under the threshold until the scene is badly
degraded.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import Scale
from repro.datasets.perturbations import adjust_brightness, adjust_contrast
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.drift import CusumDetector
from repro.novelty.framework import SaliencyNoveltyPipeline
from repro.novelty.monitor import StreamMonitor

#: Stream layout: a clean prefix, then dusk deepens linearly.
CLEAN_FRAMES = 20
DUSK_FRAMES = 60
#: Photometric decay at full dusk (brightness shift / contrast factor).
FINAL_BRIGHTNESS = -0.45
FINAL_CONTRAST = 0.35


def _dusk_stream(frames: np.ndarray) -> np.ndarray:
    """Apply a linearly deepening dusk to a frame sequence (after the
    clean prefix)."""
    out = frames.copy()
    for t in range(CLEAN_FRAMES, frames.shape[0]):
        progress = (t - CLEAN_FRAMES + 1) / DUSK_FRAMES
        out[t] = adjust_contrast(
            out[t], 1.0 + (FINAL_CONTRAST - 1.0) * progress
        )
        out[t] = adjust_brightness(out[t], FINAL_BRIGHTNESS * progress)
    return out


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Compare per-frame alarming vs CUSUM on a dusk drive."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    pipeline = SaliencyNoveltyPipeline(
        bench.steering_model("dsu"),
        scale.image_shape,
        loss="ssim",
        config=bench.autoencoder_config(),
        rng=rng,
    )
    pipeline.fit(train.frames)
    train_scores = pipeline.score(train.frames)

    drive = bench.dsu.render_drive(CLEAN_FRAMES + DUSK_FRAMES, rng=rng + 3)
    stream = _dusk_stream(drive.frames)
    scores = pipeline.score(stream)

    # Per-frame persistence alarm.
    monitor = StreamMonitor(pipeline, window=5, min_consecutive=3)
    monitor.observe_batch(stream)
    monitor_first: Optional[int] = (
        monitor.alarm_frames[0] if monitor.alarm_frames else None
    )

    # Sequential change detection on the same scores.
    cusum = CusumDetector(allowance=0.5, decision_threshold=5.0).fit(train_scores)
    cusum.update_batch(scores)
    cusum_first = cusum.drift_index

    def _fmt(step: Optional[int]) -> str:
        if step is None:
            return "never"
        return f"step {step} (dusk depth {max(step - CLEAN_FRAMES + 1, 0) / DUSK_FRAMES:.0%})"

    rows = [
        f"(dusk deepens linearly over steps {CLEAN_FRAMES}..{CLEAN_FRAMES + DUSK_FRAMES - 1})",
        f"{'per-frame persistence alarm':<30} {_fmt(monitor_first)}",
        f"{'CUSUM drift detector':<30} {_fmt(cusum_first)}",
    ]
    big = CLEAN_FRAMES + DUSK_FRAMES + 1
    metrics: Dict[str, float] = {
        "monitor_first": float(monitor_first) if monitor_first is not None else float(big),
        "cusum_first": float(cusum_first) if cusum_first is not None else float(big),
        "cusum_detected": float(cusum_first is not None),
        "clean_prefix_clear": float(
            cusum_first is None or cusum_first >= CLEAN_FRAMES
        ),
    }
    return ExperimentResult(
        exp_id="drift",
        title="Gradual drift: dusk detection latency, per-frame vs CUSUM (extension)",
        rows=rows,
        metrics=metrics,
        notes=(
            "extension beyond the paper: gradual shifts evade per-frame "
            "thresholds; CUSUM on the same score stream accumulates the "
            "persistent small increases"
        ),
    )
