"""Figure 7 — detecting Gaussian-noise corruption of in-distribution data.

The novel set here is not a different dataset but *noisy copies of DSU
frames*: the paper adds Gaussian noise, passes the noisy frames through
VBP ("the VBP images of the noisy images were also garbled looking"), and
compares how well MSE vs SSIM scores on those VBP images separate clean
from noisy.  Expected shape: the separation is smaller than in the
dataset-comparison experiment, and SSIM separates where MSE struggles
("An MSE loss is not able to distinguish noisy images while SSIM is able
to separate the two distributions").

The paper also notes that raw-image MSE behaves like VBP-image MSE here;
we include that third row for completeness.
"""

from __future__ import annotations

from typing import Dict

from repro.config import Scale
from repro.datasets.perturbations import add_gaussian_noise
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.baselines import RichterRoyBaseline, VbpMseBaseline
from repro.novelty.evaluation import evaluate_detector
from repro.novelty.framework import SaliencyNoveltyPipeline

#: Noise level of the corrupted copies (std on [0, 1] intensities).  Higher
#: than Figure 3's calibrated example because this substrate's VBP masks are
#: more noise-robust than the paper's GPU-trained network (fewer conv
#: stages, smoother learned filters); the comparative SSIM-vs-MSE claim
#: holds across 0.1-0.5, with 0.3 giving a clear margin.
NOISE_SIGMA = 0.3


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 7's clean-vs-noisy separation comparison."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    noisy_frames = add_gaussian_noise(test.frames, NOISE_SIGMA, rng=rng + 13)
    model = bench.steering_model("dsu")
    config = bench.autoencoder_config()

    systems = {
        "VBP+MSE": VbpMseBaseline(model, scale.image_shape, config=config, rng=rng),
        "VBP+SSIM": SaliencyNoveltyPipeline(
            model, scale.image_shape, loss="ssim", config=config, rng=rng
        ),
        "raw+MSE": RichterRoyBaseline(scale.image_shape, config=config, rng=rng),
    }
    rows = []
    metrics: Dict[str, float] = {}
    for name, system in systems.items():
        system.fit(train.frames)
        result = evaluate_detector(system, test.frames, noisy_frames, name=name)
        rows.append(result.summary_row())
        key = name.lower().replace("+", "_")
        metrics[f"auroc_{key}"] = result.auroc
        metrics[f"overlap_{key}"] = result.overlap
        metrics[f"detect_{key}"] = result.detection_rate

    return ExperimentResult(
        exp_id="fig7",
        title=f"Noise detection: clean DSU vs DSU + N(0, {NOISE_SIGMA}^2)",
        rows=rows,
        metrics=metrics,
        notes=(
            "expected shape: on VBP images SSIM separates noisy from clean "
            "better than MSE, and the separation is smaller than the cross-"
            "dataset experiment because lane features survive the noise. "
            "DEVIATION: raw+MSE detects noise easily here (unlike the paper) "
            "because the synthetic DSU is less varied than real footage, so "
            "the raw autoencoder's training-loss distribution is tight"
        ),
    )
