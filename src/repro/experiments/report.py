"""Markdown report generation for experiment runs.

Turns a collection of :class:`repro.experiments.ExperimentResult` objects
into a single markdown document — the machine-written counterpart of
EXPERIMENTS.md, regenerable at any scale with
``python -m repro experiment all --markdown report.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.config import Scale
from repro.experiments.harness import ExperimentResult

#: Paper artifact each experiment id corresponds to (extensions marked).
_ARTIFACTS: Dict[str, str] = {
    "fig2": "Figure 2",
    "fig3": "Figure 3",
    "fig4": "Figure 4",
    "fig5": "Figure 5",
    "fig6": "Figure 6",
    "fig7": "Figure 7",
    "reverse": "§IV-B.3 remark",
    "timing": "§III-B speed claim",
    "ablations": "extension (design ablations)",
    "latency": "extension (online latency)",
    "safety": "extension (closed-loop safety)",
    "noise_sweep": "extension (Figure 7 sensitivity curve)",
    "drift": "extension (gradual-drift detection)",
}


def results_to_markdown(
    results: Dict[str, ExperimentResult], scale: Scale = None, title: str = None
) -> str:
    """Render experiment results as a markdown document."""
    lines = [f"# {title or 'Reproduction results'}", ""]
    if scale is not None:
        lines.append(
            f"Scale: {scale.image_shape[0]}x{scale.image_shape[1]} frames, "
            f"{scale.n_train} training images, {scale.n_test}/{scale.n_novel} "
            f"test/novel samples, CNN {scale.cnn_epochs} epochs, "
            f"AE {scale.ae_epochs} epochs."
        )
        lines.append("")
    for exp_id, result in results.items():
        artifact = _ARTIFACTS.get(exp_id, "")
        heading = f"## {exp_id}: {result.title}"
        if artifact:
            heading += f" — {artifact}"
        lines.append(heading)
        lines.append("")
        lines.append("```")
        lines.extend(result.rows)
        lines.append("```")
        if result.metrics:
            lines.append("")
            lines.append("| metric | value |")
            lines.append("|---|---|")
            for key, value in sorted(result.metrics.items()):
                lines.append(f"| {key} | {value:.4g} |")
        if result.notes:
            lines.append("")
            lines.append(f"*{result.notes}*")
        lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    results: Dict[str, ExperimentResult],
    path: Union[str, Path],
    scale: Scale = None,
    title: str = None,
) -> Path:
    """Render and write the markdown report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_markdown(results, scale=scale, title=title) + "\n")
    return path
