"""Shared experiment machinery.

:class:`Workbench` builds and caches the artifacts most experiments share —
rendered dataset batches and trained steering networks — so a benchmark run
that regenerates every figure doesn't retrain the same CNN seven times.
:class:`ExperimentResult` is the uniform "one table per paper artifact"
output format; its :meth:`~ExperimentResult.render` is what the benchmark
harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import Scale
from repro.datasets.base import RenderedBatch
from repro.datasets.synthetic_indoor import SyntheticIndoor
from repro.datasets.synthetic_udacity import SyntheticUdacity
from repro.exceptions import ExperimentError
from repro.models.pilotnet import PilotNet, PilotNetConfig, train_pilotnet
from repro.nn.backend.policy import as_tensor, resolve_dtype
from repro.novelty.framework import AutoencoderConfig
from repro.telemetry import get_telemetry
from repro.utils.log import get_logger

_log = get_logger(__name__)


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment.

    Attributes
    ----------
    exp_id:
        Registry id (``fig5``, ``timing``, ...).
    title:
        What paper artifact this reproduces.
    rows:
        Pre-formatted table rows (the "same rows/series the paper reports").
    metrics:
        Machine-readable key metrics, used by tests to assert the paper's
        comparative claims hold.
    notes:
        Free-text caveats (scale used, substitutions relied on).
    """

    exp_id: str
    title: str
    rows: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Human-readable report block."""
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.extend(self.rows)
        if self.metrics:
            metric_parts = [f"{k}={v:.4g}" for k, v in sorted(self.metrics.items())]
            lines.append("metrics: " + "  ".join(metric_parts))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


class Workbench:
    """Caches datasets, rendered batches and trained CNNs for one scale.

    All artifacts are derived deterministically from ``(scale, seed)``:
    asking twice returns the same object, and two workbenches with equal
    arguments produce bit-identical data.

    ``dtype`` selects the *inference* precision policy: models are always
    trained in float64 (identical weights regardless of policy) and then
    cast, so ``dtype="float32"`` reproduces the deploy story — train in
    double precision, score in single.
    """

    def __init__(self, scale: Scale, seed: int = 0, dtype=None) -> None:
        self.scale = scale
        self.seed = int(seed)
        self.dtype = None if dtype is None else resolve_dtype(dtype)
        self.dsu = SyntheticUdacity(scale.image_shape)
        self.dsi = SyntheticIndoor(scale.image_shape)
        self._batches: Dict[str, RenderedBatch] = {}
        self._models: Dict[str, PilotNet] = {}

    # -- data ----------------------------------------------------------
    def batch(self, dataset: str, split: str) -> RenderedBatch:
        """A rendered batch for ``dataset`` in {'dsu', 'dsi'} and ``split``
        in {'train', 'test', 'novel'} (sizes from the scale preset)."""
        key = f"{dataset}:{split}"
        if key not in self._batches:
            renderers = {"dsu": self.dsu, "dsi": self.dsi}
            sizes = {
                "train": self.scale.n_train,
                "test": self.scale.n_test,
                "novel": self.scale.n_novel,
            }
            if dataset not in renderers or split not in sizes:
                raise ExperimentError(f"unknown batch request {key!r}")
            # Distinct seeds per (dataset, split) keep batches independent.
            offsets = {"train": 0, "test": 1, "novel": 2}
            seed = self.seed * 1000 + offsets[split] + (0 if dataset == "dsu" else 500)
            with get_telemetry().span(
                "workbench.render_batch", dataset=dataset, split=split, n=sizes[split]
            ):
                self._batches[key] = renderers[dataset].render_batch(
                    sizes[split], rng=seed
                )
        return self._batches[key]

    # -- models ----------------------------------------------------------
    def steering_model(self, dataset: str, random_labels: bool = False) -> PilotNet:
        """A PilotNet trained on the given dataset's training batch.

        ``random_labels=True`` trains on shuffled steering angles — the
        control network of the paper's Figure 2 ("network trained with
        random steering angles").
        """
        key = f"{dataset}:{'random' if random_labels else 'true'}"
        if key not in self._models:
            _log.info(
                "training steering model %s (%d epochs on %d frames)",
                key, self.scale.cnn_epochs, self.scale.n_train,
            )
            batch = self.batch(dataset, "train")
            angles = batch.angles
            if random_labels:
                angles = np.random.default_rng(self.seed + 77).permutation(angles)
            model = PilotNet(
                PilotNetConfig.for_image(self.scale.image_shape), rng=self.seed
            )
            with get_telemetry().span(
                "workbench.train_model", model=key, epochs=self.scale.cnn_epochs
            ):
                train_pilotnet(
                    model,
                    batch.frames,
                    angles,
                    epochs=self.scale.cnn_epochs,
                    batch_size=self.scale.batch_size,
                    rng=self.seed,
                )
            if self.dtype is not None:
                model.set_policy(self.dtype)
            self._models[key] = model
        return self._models[key]

    def driver_model(self, dataset: str) -> PilotNet:
        """A *well-trained* PilotNet suitable for closed-loop driving.

        The standard :meth:`steering_model` budget (a few epochs) produces
        feature maps good enough for VisualBackProp but a regressor barely
        better than predicting the mean — fine for saliency, useless as a
        controller.  This variant trains 10x longer and is cached
        separately.
        """
        key = f"{dataset}:driver"
        if key not in self._models:
            batch = self.batch(dataset, "train")
            model = PilotNet(
                PilotNetConfig.for_image(self.scale.image_shape), rng=self.seed
            )
            with get_telemetry().span(
                "workbench.train_model", model=key, epochs=self.scale.cnn_epochs * 10
            ):
                train_pilotnet(
                    model,
                    batch.frames,
                    batch.angles,
                    epochs=self.scale.cnn_epochs * 10,
                    batch_size=self.scale.batch_size,
                    rng=self.seed,
                )
            if self.dtype is not None:
                model.set_policy(self.dtype)
            self._models[key] = model
        return self._models[key]

    # -- configs ---------------------------------------------------------
    def autoencoder_config(self, **overrides) -> AutoencoderConfig:
        """The scale's default one-class training configuration."""
        base = dict(
            epochs=self.scale.ae_epochs,
            batch_size=self.scale.batch_size,
            ssim_window=self.scale.ssim_window,
        )
        base.update(overrides)
        return AutoencoderConfig(**base)


def saliency_concentration(
    masks: np.ndarray, region_masks: np.ndarray, dilate: int = 0
) -> float:
    """How much saliency mass concentrates on a region, normalized by area.

    Returns ``(mass inside region / total mass) / (region area / image
    area)``.  1.0 means saliency ignores the region entirely (uniform
    spread); values above 1 mean the network attends to it — the
    quantitative version of the paper's Figure 2/4 visual argument.

    ``dilate`` grows the region by that many binary-dilation iterations,
    allowing a few pixels of slack when the region is thin (lane markings)
    and the saliency mask is produced at reduced deconvolution resolution.
    """
    from scipy import ndimage

    masks = as_tensor(masks)
    region = np.asarray(region_masks, dtype=bool)
    if masks.shape != region.shape:
        raise ExperimentError(
            f"masks {masks.shape} and region masks {region.shape} must align"
        )
    if dilate > 0:
        region = np.stack(
            [ndimage.binary_dilation(r, iterations=dilate) for r in region]
        )
    total_mass = masks.sum()
    if total_mass == 0:
        return 0.0
    mass_fraction = (masks * region).sum() / total_mass
    area_fraction = region.mean()
    if area_fraction == 0:
        return 0.0
    return float(mass_fraction / area_fraction)
