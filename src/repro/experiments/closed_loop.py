"""Extension experiment — closed-loop safety with detector hand-over.

The paper's introduction frames novelty detection as a safety mechanism
for systems where an untrusted prediction is "erroneous, perhaps
life-threatening".  This experiment closes that loop on the simulator:

* **clean** — the trained CNN drives a procedural road; it should hold the
  lane for the whole run.
* **blocked lens** — from mid-run the camera's road view is occluded (a
  physical sensor fault).  The CNN keeps driving on garbage input and
  drifts off the road.
* **guarded** — same fault, but frames stream through the fitted novelty
  detector; when the persistence alarm fires, control hands over to the
  oracle policy (standing in for a human driver).  The vehicle should stay
  on the road.

The oracle itself and the constant-steering baseline bracket the
achievable range.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.framework import SaliencyNoveltyPipeline
from repro.novelty.monitor import StreamMonitor
from repro.simulation.policies import ConstantPolicy, ModelPolicy, OraclePolicy
from repro.simulation.simulator import ClosedLoopSimulator
from repro.simulation.vehicle import VehicleState

#: Length of each run and the step at which the lens blockage starts.
RUN_STEPS = 260
FAULT_STEP = 40
#: Starting lateral offset — a mild disturbance every policy must correct.
INITIAL_OFFSET = 0.6


def _blocked_lens(frame: np.ndarray) -> np.ndarray:
    """Occlude the road view (everything below the horizon third)."""
    out = frame.copy()
    out[out.shape[0] // 3 :, :] = 0.05
    return out


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Run the four closed-loop configurations and tabulate trajectories."""
    bench = workbench or Workbench(scale, seed=rng)
    driver = bench.driver_model("dsu")
    detector = SaliencyNoveltyPipeline(
        bench.steering_model("dsu"),
        scale.image_shape,
        loss="ssim",
        config=bench.autoencoder_config(),
        rng=rng,
    )
    detector.fit(bench.batch("dsu", "train").frames)

    simulator = ClosedLoopSimulator(bench.dsu, speed=2.0, dt=0.1)
    start = VehicleState(lane_offset=INITIAL_OFFSET, heading=0.0)
    oracle = OraclePolicy(bench.dsu.geometry)
    model_policy = ModelPolicy(driver)

    runs = {
        "oracle (upper bound)": simulator.run(
            oracle, RUN_STEPS, rng=rng + 2, initial_state=start
        ),
        "constant 0 (lower bound)": simulator.run(
            ConstantPolicy(0.0), RUN_STEPS, rng=rng + 2, initial_state=start
        ),
        "model, clean camera": simulator.run(
            model_policy, RUN_STEPS, rng=rng + 2, initial_state=start
        ),
        "model, blocked lens": simulator.run(
            model_policy, RUN_STEPS, rng=rng + 2, initial_state=start,
            disturb=_blocked_lens, disturb_at=FAULT_STEP,
        ),
        "model + detector handover": simulator.run(
            model_policy, RUN_STEPS, rng=rng + 2, initial_state=start,
            disturb=_blocked_lens, disturb_at=FAULT_STEP,
            monitor=StreamMonitor(detector, window=5, min_consecutive=3),
            fallback=oracle,
        ),
    }

    rows = [f"(runs of {RUN_STEPS} steps; lens blocked from step {FAULT_STEP})"]
    rows.extend(
        f"{name:<26} {result.summary_row()}" for name, result in runs.items()
    )
    guarded = runs["model + detector handover"]
    metrics: Dict[str, float] = {
        "offroad_clean": runs["model, clean camera"].off_road_fraction,
        "offroad_blocked": runs["model, blocked lens"].off_road_fraction,
        "offroad_guarded": guarded.off_road_fraction,
        "offroad_constant": runs["constant 0 (lower bound)"].off_road_fraction,
        "max_offset_blocked": runs["model, blocked lens"].max_abs_offset,
        "max_offset_guarded": guarded.max_abs_offset,
        "handover_latency": (
            float(guarded.handover_step - FAULT_STEP)
            if guarded.handover_step is not None
            else float("inf")
        ),
    }
    return ExperimentResult(
        exp_id="safety",
        title="Closed-loop safety: sensor fault with and without hand-over (extension)",
        rows=rows,
        metrics=metrics,
        notes=(
            "extension beyond the paper: the detector turns an off-road "
            "excursion into a brief hand-over; 'oracle' stands in for the "
            "human driver the paper's framework would alert"
        ),
    )
