"""Extension experiment — online detection latency on simulated drives.

Beyond the paper's static histograms: the deployment it motivates is a
*running* vehicle, so what matters operationally is how many frames pass
between entering an unseen environment and the detector raising a
persistent alarm — and how often a clean drive false-alarms.

Protocol: fit the proposed pipeline on DSU; simulate drives that travel
through the training domain and then switch to the novel domain; stream
them through a :class:`repro.novelty.StreamMonitor` and record the alarm
latency (frames after the switch until the first alarm).  Control drives
never leave the training domain and should never alarm.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.framework import SaliencyNoveltyPipeline
from repro.novelty.monitor import StreamMonitor
from repro.utils.timer import Timer

#: Frames in the in-domain prefix and novel-domain suffix of each drive.
PREFIX_FRAMES = 12
SUFFIX_FRAMES = 18
N_DRIVES = 5


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Measure alarm latency after a domain switch, over several drives."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    pipeline = SaliencyNoveltyPipeline(
        bench.steering_model("dsu"),
        scale.image_shape,
        loss="ssim",
        config=bench.autoencoder_config(),
        rng=rng,
    )
    pipeline.fit(train.frames)

    latencies: List[int] = []
    missed = 0
    clean_alarms = 0
    # One accumulating timer across all drives: each lap is one frame's
    # observe() wall-clock, so the Timer's percentile properties are the
    # per-frame online latency distribution a deployment would see.
    frame_timer = Timer()
    for drive_index in range(N_DRIVES):
        prefix = bench.dsu.render_drive(PREFIX_FRAMES, rng=rng * 100 + drive_index)
        suffix = bench.dsi.render_drive(SUFFIX_FRAMES, rng=rng * 100 + 50 + drive_index)
        stream = np.concatenate([prefix.frames, suffix.frames])

        monitor = StreamMonitor(pipeline, window=5, min_consecutive=3)
        for frame in stream:
            with frame_timer:
                monitor.observe(frame)
        switch_alarms = [f for f in monitor.alarm_frames if f >= PREFIX_FRAMES]
        if switch_alarms:
            latencies.append(switch_alarms[0] - PREFIX_FRAMES)
        else:
            missed += 1

        # Control: an equally long drive that never leaves the domain.
        control = bench.dsu.render_drive(
            PREFIX_FRAMES + SUFFIX_FRAMES, rng=rng * 100 + 80 + drive_index
        )
        control_monitor = StreamMonitor(pipeline, window=5, min_consecutive=3)
        for frame in control.frames:
            with frame_timer:
                control_monitor.observe(frame)
        if control_monitor.alarm_transitions():
            clean_alarms += 1

    mean_latency = float(np.mean(latencies)) if latencies else float("inf")
    rows = [
        f"{'drives simulated':<28} {N_DRIVES:>6}",
        f"{'domain switches alarmed':<28} {N_DRIVES - missed:>6} / {N_DRIVES}",
        f"{'mean alarm latency (frames)':<28} {mean_latency:>6.1f}",
        f"{'clean drives false-alarming':<28} {clean_alarms:>6} / {N_DRIVES}",
        (
            f"{'per-frame scoring (ms)':<28} "
            f"p50={frame_timer.p50 * 1e3:.2f} p95={frame_timer.p95 * 1e3:.2f} "
            f"p99={frame_timer.p99 * 1e3:.2f} max={frame_timer.max * 1e3:.2f}"
        ),
    ]
    metrics: Dict[str, float] = {
        "alarm_rate": (N_DRIVES - missed) / N_DRIVES,
        "mean_latency_frames": mean_latency,
        "clean_false_alarm_rate": clean_alarms / N_DRIVES,
        "frame_ms_p50": frame_timer.p50 * 1e3,
        "frame_ms_p95": frame_timer.p95 * 1e3,
        "frame_ms_p99": frame_timer.p99 * 1e3,
        "frame_ms_max": frame_timer.max * 1e3,
    }
    return ExperimentResult(
        exp_id="latency",
        title="Online detection latency after a domain switch (extension)",
        rows=rows,
        metrics=metrics,
        notes=(
            "extension beyond the paper: the StreamMonitor needs 3 novel "
            "frames in a 5-frame window, so latency floors at 2 frames after "
            "a clean prefix (less if boundary frames already scored novel)"
        ),
    )
