"""§III-B speed claim — VBP vs LRP (and gradient saliency) latency.

The paper selects VBP because it "has been demonstrated to be order of
magnitude faster than other network saliency visualization methods (such as
[LRP]) that produce comparable [masks], making it an appropriate choice for
real-world systems where real-time decision making is required."

We time all three saliency methods implemented in this library on the same
trained network and identical frames.  The absolute numbers depend on the
numpy substrate, but the *ratio* is the claim under test.  (On this
substrate both methods are a handful of matrix products, so expect VBP
faster but not necessarily by the GPU-era order of magnitude.)
"""

from __future__ import annotations

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.pipeline import compute_saliency
from repro.saliency.gradient import GradientSaliency
from repro.saliency.lrp import LayerwiseRelevancePropagation
from repro.saliency.vbp import VisualBackProp
from repro.utils.timer import time_call


def run(scale: Scale, rng: int = 0, workbench: Workbench = None, repeats: int = 5) -> ExperimentResult:
    """Time VBP / LRP / gradient saliency per frame on a trained network."""
    bench = workbench or Workbench(scale, seed=rng)
    model = bench.steering_model("dsu")
    frames = bench.batch("dsu", "test").frames

    methods = {
        "VBP": VisualBackProp(model),
        "LRP": LayerwiseRelevancePropagation(model),
        "gradient": GradientSaliency(model),
    }
    per_frame = {}
    rows = [f"{'method':<10} {'ms/frame':>10}"]
    for name, method in methods.items():
        compute_saliency(method, frames[:2])  # warm-up outside the timed region
        _, timer = time_call(compute_saliency, method, frames, repeats=repeats)
        per_frame[name] = timer.min / frames.shape[0]
        rows.append(f"{name:<10} {per_frame[name] * 1000:>10.2f}")

    speedup = per_frame["LRP"] / per_frame["VBP"] if per_frame["VBP"] > 0 else float("inf")
    rows.append(f"{'LRP/VBP':<10} {speedup:>10.2f}x")
    return ExperimentResult(
        exp_id="timing",
        title="Saliency latency: VBP vs LRP vs input gradients",
        rows=rows,
        metrics={
            "vbp_ms": per_frame["VBP"] * 1000,
            "lrp_ms": per_frame["LRP"] * 1000,
            "gradient_ms": per_frame["gradient"] * 1000,
            "lrp_over_vbp": speedup,
        },
        notes="paper cites an order-of-magnitude GPU speedup; shape under test is VBP < LRP",
    )
