"""Extension experiment — noise-detection sensitivity curve.

Figure 7 reports one operating point (one noise level).  This sweep traces
the whole curve: for a range of noise magnitudes, how well do the VBP+MSE
and VBP+SSIM detectors separate clean from corrupted frames?  The series
makes two things visible that a single point cannot: the detection
*threshold* (the σ below which corruption passes unnoticed) and the
consistency of the paper's SSIM-over-MSE ordering along the curve.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import Scale
from repro.datasets.perturbations import add_gaussian_noise
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.baselines import VbpMseBaseline
from repro.novelty.evaluation import evaluate_detector
from repro.novelty.framework import SaliencyNoveltyPipeline

#: Noise standard deviations swept (on [0, 1] intensities).
SIGMAS = (0.05, 0.1, 0.2, 0.3, 0.5)


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Sweep noise magnitude; report AUROC per detector per level."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    model = bench.steering_model("dsu")
    config = bench.autoencoder_config()

    ssim_pipe = SaliencyNoveltyPipeline(
        model, scale.image_shape, loss="ssim", config=config, rng=rng
    )
    mse_pipe = VbpMseBaseline(model, scale.image_shape, config=config, rng=rng)
    ssim_pipe.fit(train.frames)
    mse_pipe.fit(train.frames)

    rows: List[str] = [f"{'sigma':>6} {'AUROC ssim':>11} {'AUROC mse':>10} {'detect ssim':>12}"]
    metrics: Dict[str, float] = {}
    ssim_wins = 0
    for index, sigma in enumerate(SIGMAS):
        noisy = add_gaussian_noise(test.frames, sigma, rng=rng * 100 + index)
        ssim_result = evaluate_detector(ssim_pipe, test.frames, noisy)
        mse_result = evaluate_detector(mse_pipe, test.frames, noisy)
        rows.append(
            f"{sigma:>6.2f} {ssim_result.auroc:>11.3f} {mse_result.auroc:>10.3f} "
            f"{ssim_result.detection_rate:>12.1%}"
        )
        metrics[f"auroc_ssim_s{sigma:g}"] = ssim_result.auroc
        metrics[f"auroc_mse_s{sigma:g}"] = mse_result.auroc
        if ssim_result.auroc >= mse_result.auroc:
            ssim_wins += 1
    metrics["ssim_win_fraction"] = ssim_wins / len(SIGMAS)

    return ExperimentResult(
        exp_id="noise_sweep",
        title="Noise-detection sensitivity curve (extension of Figure 7)",
        rows=rows,
        metrics=metrics,
        notes=(
            "extension: Figure 7 is one operating point; this traces the "
            "AUROC-vs-sigma curve. Expected shape: both detectors improve "
            "with sigma, SSIM at or above MSE along the curve"
        ),
    )
