"""Figure 6 — reconstruction quality: raw+MSE blurs, VBP+SSIM doesn't.

The paper shows an original image reconstructed by the MSE autoencoder
(blurry even for a *target-class* image) next to a VBP image reconstructed
by the SSIM autoencoder (clean), arguing that blurriness is why the MSE
baseline cannot separate classes visually.

Blur is measurable: we report the *sharpness ratio* — gradient energy of
the reconstruction relative to its input (1.0 = all high-frequency content
preserved; small = blurred away) — for both systems on held-out
target-class images, along with the input-reconstruction similarity.
"""

from __future__ import annotations

import numpy as np

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.metrics.sharpness import sharpness_ratio
from repro.metrics.ssim import ssim
from repro.novelty.baselines import RichterRoyBaseline
from repro.novelty.framework import SaliencyNoveltyPipeline


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 6's reconstruction-quality comparison."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    config = bench.autoencoder_config()

    baseline = RichterRoyBaseline(scale.image_shape, config=config, rng=rng)
    baseline.fit(train.frames)
    proposed = SaliencyNoveltyPipeline(
        bench.steering_model("dsu"), scale.image_shape, loss="ssim", config=config, rng=rng
    )
    proposed.fit(train.frames)

    base_in, base_rec = baseline.reconstruct(test.frames)
    prop_in, prop_rec = proposed.reconstruct(test.frames)

    def stats(inputs: np.ndarray, recs: np.ndarray):
        ratios = [sharpness_ratio(r, i) for r, i in zip(recs, inputs)]
        sims = ssim(inputs, recs, window_size=scale.ssim_window)
        return float(np.mean(ratios)), float(np.mean(sims))

    base_sharp, base_sim = stats(base_in, base_rec)
    prop_sharp, prop_sim = stats(prop_in, prop_rec)

    rows = [
        f"{'system':<28} {'sharpness ratio':>16} {'recon SSIM':>12}",
        f"{'raw+MSE (Richter&Roy)':<28} {base_sharp:>16.3f} {base_sim:>12.3f}",
        f"{'VBP+SSIM (proposed)':<28} {prop_sharp:>16.3f} {prop_sim:>12.3f}",
    ]
    return ExperimentResult(
        exp_id="fig6",
        title="Reconstruction quality on target-class images",
        rows=rows,
        metrics={
            "sharpness_raw_mse": base_sharp,
            "sharpness_vbp_ssim": prop_sharp,
            "recon_ssim_raw_mse": base_sim,
            "recon_ssim_vbp_ssim": prop_sim,
        },
        notes=(
            "the paper's 'blurry vs clean' side-by-side, quantified as the "
            "reconstruction's retained gradient energy"
        ),
    )
