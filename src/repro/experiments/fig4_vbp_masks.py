"""Figure 4 — VBP produces reasonable masks on both datasets.

The paper shows example VBP masks overlaid on input frames for both DSI and
DSU, arguing the activations are "reasonable ... as a human driver would
expect", i.e. they land on the road.  With ground-truth road masks from the
renderers we can report, per dataset, the saliency concentration on the
road and basic mask statistics for a network trained on that dataset.
"""

from __future__ import annotations

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench, saliency_concentration
from repro.pipeline import compute_saliency
from repro.saliency.vbp import VisualBackProp


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Reproduce Figure 4's per-dataset VBP mask inspection, quantified."""
    bench = workbench or Workbench(scale, seed=rng)

    rows = [
        f"{'dataset':<8} {'marking concentration':>22} {'mask mean':>10} {'mask std':>10}"
    ]
    metrics = {}
    for dataset in ("dsu", "dsi"):
        model = bench.steering_model(dataset)
        test = bench.batch(dataset, "test")
        masks = compute_saliency(VisualBackProp(model), test.frames)
        concentration = saliency_concentration(masks, test.marking_masks, dilate=2)
        rows.append(
            f"{dataset.upper():<8} {concentration:>22.3f} "
            f"{masks.mean():>10.3f} {masks.std():>10.3f}"
        )
        metrics[f"concentration_{dataset}"] = concentration
        metrics[f"mask_mean_{dataset}"] = float(masks.mean())

    return ExperimentResult(
        exp_id="fig4",
        title="VBP masks concentrate on lane markings for both datasets",
        rows=rows,
        metrics=metrics,
        notes=(
            "concentration > 1 means saliency prefers the lane-marking region "
            "over a uniform spread; the paper argues the same point with "
            "overlay images ('reasonable activations as a human driver would "
            "expect')"
        ),
    )
