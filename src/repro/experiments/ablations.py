"""Design ablations beyond the paper's figures.

The paper fixes three design constants without sweeping them: the SSIM
window (11x11), the autoencoder bottleneck (16 units), and the decision
percentile (99th).  These ablations measure how sensitive the headline
result (DSU target vs DSI novel separation) is to each choice — the
robustness analysis a reviewer would ask for.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import Scale
from repro.experiments.harness import ExperimentResult, Workbench
from repro.novelty.evaluation import evaluate_detector
from repro.novelty.framework import SaliencyNoveltyPipeline


def run_ssim_window(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Sweep the SSIM window size used as the training loss."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")
    model = bench.steering_model("dsu")

    max_window = min(scale.image_shape)
    windows = [w for w in (3, 5, 7, 9, 11) if w <= max_window]
    rows = [f"{'window':>6} {'AUROC':>8} {'detect':>8} {'overlap':>8}"]
    metrics: Dict[str, float] = {}
    for window in windows:
        pipeline = SaliencyNoveltyPipeline(
            model,
            scale.image_shape,
            loss="ssim",
            config=bench.autoencoder_config(ssim_window=window),
            rng=rng,
        )
        pipeline.fit(train.frames)
        result = evaluate_detector(pipeline, test.frames, novel.frames)
        rows.append(
            f"{window:>6} {result.auroc:>8.3f} {result.detection_rate:>8.1%} "
            f"{result.overlap:>8.3f}"
        )
        metrics[f"auroc_w{window}"] = result.auroc
    return ExperimentResult(
        exp_id="ablation_window",
        title="Ablation: SSIM window size",
        rows=rows,
        metrics=metrics,
        notes="paper fixes 11x11 windows; separation should be stable across sizes",
    )


def run_bottleneck(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Sweep the autoencoder bottleneck width (paper: 64-16-64)."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")
    model = bench.steering_model("dsu")

    rows = [f"{'bottleneck':>10} {'AUROC':>8} {'detect':>8} {'target SSIM':>12}"]
    metrics: Dict[str, float] = {}
    for bottleneck in (4, 8, 16, 32):
        pipeline = SaliencyNoveltyPipeline(
            model,
            scale.image_shape,
            loss="ssim",
            config=bench.autoencoder_config(hidden=(64, bottleneck, 64)),
            rng=rng,
        )
        pipeline.fit(train.frames)
        result = evaluate_detector(pipeline, test.frames, novel.frames)
        rows.append(
            f"{bottleneck:>10} {result.auroc:>8.3f} {result.detection_rate:>8.1%} "
            f"{float(result.target_similarity.mean()):>12.3f}"
        )
        metrics[f"auroc_b{bottleneck}"] = result.auroc
    return ExperimentResult(
        exp_id="ablation_bottleneck",
        title="Ablation: autoencoder bottleneck width",
        rows=rows,
        metrics=metrics,
        notes="paper fixes 16; too-wide bottlenecks risk reconstructing novel inputs too",
    )


def run_percentile(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Sweep the decision percentile (paper: 99th) on one fitted pipeline."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")

    pipeline = SaliencyNoveltyPipeline(
        bench.steering_model("dsu"),
        scale.image_shape,
        loss="ssim",
        config=bench.autoencoder_config(),
        rng=rng,
    )
    pipeline.fit(train.frames)
    train_scores = pipeline.score(train.frames)
    test_scores = pipeline.score(test.frames)
    novel_scores = pipeline.score(novel.frames)

    from repro.novelty.detector import NoveltyDetector

    rows = [f"{'percentile':>10} {'detect':>8} {'FPR':>8}"]
    metrics: Dict[str, float] = {}
    for percentile in (90.0, 95.0, 99.0, 99.9):
        detector = NoveltyDetector(percentile=percentile).fit(train_scores)
        detect = float(detector.predict(novel_scores).mean())
        fpr = float(detector.predict(test_scores).mean())
        rows.append(f"{percentile:>10.1f} {detect:>8.1%} {fpr:>8.1%}")
        metrics[f"detect_p{percentile:g}"] = detect
        metrics[f"fpr_p{percentile:g}"] = fpr
    return ExperimentResult(
        exp_id="ablation_percentile",
        title="Ablation: decision threshold percentile",
        rows=rows,
        metrics=metrics,
        notes=(
            "the paper argues the threshold 'is not critical' when distributions "
            "are separable — detection should stay high across percentiles"
        ),
    )


def run_loss_function(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Compare reconstruction losses: MSE, SSIM (paper), multi-scale SSIM."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")
    model = bench.steering_model("dsu")

    rows = [f"{'loss':>8} {'AUROC':>8} {'detect':>8} {'overlap':>8}"]
    metrics: Dict[str, float] = {}
    for loss in ("mse", "ssim", "msssim"):
        pipeline = SaliencyNoveltyPipeline(
            model,
            scale.image_shape,
            loss=loss,
            config=bench.autoencoder_config(),
            rng=rng,
        )
        pipeline.fit(train.frames)
        result = evaluate_detector(pipeline, test.frames, novel.frames)
        rows.append(
            f"{loss:>8} {result.auroc:>8.3f} {result.detection_rate:>8.1%} "
            f"{result.overlap:>8.3f}"
        )
        metrics[f"auroc_loss_{loss}"] = result.auroc
        metrics[f"detect_loss_{loss}"] = result.detection_rate
    return ExperimentResult(
        exp_id="ablation_loss",
        title="Ablation: reconstruction loss (MSE / SSIM / MS-SSIM)",
        rows=rows,
        metrics=metrics,
        notes=(
            "the paper compares MSE vs SSIM; MS-SSIM (arithmetic-mean "
            "variant) is the natural next step and should perform on par "
            "with single-scale SSIM"
        ),
    )


def run_saliency_method(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Swap the preprocessing saliency method (paper: VBP).

    The paper selects VBP over LRP-class methods purely on speed, citing
    that the masks are "comparable"; this ablation checks the comparable-
    detection-quality half of that argument on our substrate.
    """
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")
    model = bench.steering_model("dsu")

    rows = [f"{'saliency':>10} {'AUROC':>8} {'detect':>8} {'target SSIM':>12}"]
    metrics: Dict[str, float] = {}
    for method in ("vbp", "lrp", "gradient"):
        pipeline = SaliencyNoveltyPipeline(
            model,
            scale.image_shape,
            loss="ssim",
            config=bench.autoencoder_config(),
            saliency=method,
            rng=rng,
        )
        pipeline.fit(train.frames)
        result = evaluate_detector(pipeline, test.frames, novel.frames)
        rows.append(
            f"{method:>10} {result.auroc:>8.3f} {result.detection_rate:>8.1%} "
            f"{float(result.target_similarity.mean()):>12.3f}"
        )
        metrics[f"auroc_{method}"] = result.auroc
        metrics[f"detect_{method}"] = result.detection_rate
    return ExperimentResult(
        exp_id="ablation_saliency",
        title="Ablation: saliency method feeding the one-class stage",
        rows=rows,
        metrics=metrics,
        notes=(
            "VBP wins decisively here: gradient-flavoured masks (LRP, input "
            "gradients) are high-frequency and the small 64-16-64 autoencoder "
            "cannot reconstruct them even for target data, so the one-class "
            "stage loses its signal. VBP's smooth value-based masks are what "
            "make the paper's second stage workable"
        ),
    )


def run_architecture(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """Dense (paper) vs convolutional one-class autoencoder."""
    bench = workbench or Workbench(scale, seed=rng)
    train = bench.batch("dsu", "train")
    test = bench.batch("dsu", "test")
    novel = bench.batch("dsi", "novel")
    model = bench.steering_model("dsu")

    rows = [f"{'architecture':>14} {'AUROC':>8} {'detect':>8} {'target SSIM':>12}"]
    metrics: Dict[str, float] = {}
    for architecture in ("dense", "conv"):
        pipeline = SaliencyNoveltyPipeline(
            model,
            scale.image_shape,
            loss="ssim",
            config=bench.autoencoder_config(),
            architecture=architecture,
            rng=rng,
        )
        pipeline.fit(train.frames)
        result = evaluate_detector(pipeline, test.frames, novel.frames)
        rows.append(
            f"{architecture:>14} {result.auroc:>8.3f} {result.detection_rate:>8.1%} "
            f"{float(result.target_similarity.mean()):>12.3f}"
        )
        metrics[f"auroc_{architecture}"] = result.auroc
        metrics[f"detect_{architecture}"] = result.detection_rate
    return ExperimentResult(
        exp_id="ablation_architecture",
        title="Ablation: dense (paper) vs convolutional autoencoder",
        rows=rows,
        metrics=metrics,
        notes=(
            "the dense 64-16-64 bottleneck wins: the convolutional variant is "
            "expressive enough to reconstruct *novel* masks too (the classic "
            "one-class failure mode), validating the paper's architecture "
            "choice"
        ),
    )


def run(scale: Scale, rng: int = 0, workbench: Workbench = None) -> ExperimentResult:
    """All ablations merged into one report."""
    bench = workbench or Workbench(scale, seed=rng)
    parts: List[ExperimentResult] = [
        run_ssim_window(scale, rng, bench),
        run_bottleneck(scale, rng, bench),
        run_percentile(scale, rng, bench),
        run_loss_function(scale, rng, bench),
        run_saliency_method(scale, rng, bench),
        run_architecture(scale, rng, bench),
    ]
    rows: List[str] = []
    metrics: Dict[str, float] = {}
    for part in parts:
        rows.append(f"-- {part.title} --")
        rows.extend(part.rows)
        metrics.update(part.metrics)
    return ExperimentResult(
        exp_id="ablations",
        title="Design ablations (window / bottleneck / percentile)",
        rows=rows,
        metrics=metrics,
    )
