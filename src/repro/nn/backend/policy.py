"""Precision policy: the substrate's single dtype decision point.

Training wants ``float64`` (central-difference gradient checks need ~1e-10
headroom); inference wants ``float32`` (half the memory bandwidth for the
same verdicts).  Rather than sprinkle ``np.asarray(..., dtype=...)`` calls
through every layer, the stack routes every coercion through this module:

* :func:`resolve_dtype` maps a spec (``None``, ``"float32"``, a dtype, or a
  :class:`DTypePolicy`) to one of the two supported dtypes.
* :func:`as_tensor` is the one ``np.asarray`` call with an explicit dtype.
* :func:`result_dtype` implements the metrics convention: follow the inputs
  — float32 in, float32 out; anything else computes in float64.

A lint test (``tests/test_lint_dtype_literals.py``) enforces that no module
outside ``repro/nn/backend/`` names ``np.float32``/``np.float64`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.exceptions import ConfigurationError

#: The two dtypes the policy supports.  float64 is the training default;
#: float32 is the inference mode threaded through saliency, novelty and
#: serving.
FLOAT32 = np.dtype(np.float32)
FLOAT64 = np.dtype(np.float64)

SUPPORTED_DTYPES: Dict[str, np.dtype] = {
    FLOAT32.name: FLOAT32,
    FLOAT64.name: FLOAT64,
}


def resolve_dtype(spec: Any = None) -> np.dtype:
    """Map a dtype spec to one of the supported dtypes.

    Accepts ``None`` (→ float64, the historical default), a dtype name
    (``"float32"``/``"float64"``), anything ``np.dtype`` accepts, or a
    :class:`DTypePolicy`.  Raises :class:`ConfigurationError` for anything
    outside the supported pair, so unsupported precisions fail loudly at
    configuration time instead of silently upcasting mid-pipeline.
    """
    if spec is None:
        return FLOAT64
    if isinstance(spec, DTypePolicy):
        return spec.dtype
    try:
        dtype = np.dtype(spec)
    except TypeError as exc:
        raise ConfigurationError(f"not a dtype spec: {spec!r}") from exc
    if dtype.name not in SUPPORTED_DTYPES:
        supported = ", ".join(sorted(SUPPORTED_DTYPES))
        raise ConfigurationError(
            f"unsupported dtype {dtype.name!r}; supported dtypes: {supported}"
        )
    return dtype


def as_tensor(x: Any, dtype: Any = None) -> np.ndarray:
    """Coerce ``x`` to an ndarray of the resolved policy dtype.

    This is the single ``np.asarray(..., dtype=...)`` the stack funnels
    through; ``dtype=None`` keeps the float64 default every call site had
    before the policy existed.
    """
    return np.asarray(x, dtype=resolve_dtype(dtype))


def result_dtype(*arrays: np.ndarray) -> np.dtype:
    """Dtype a metric should compute in for the given inputs.

    float32 only when *every* input is already float32 — mixed or integer
    inputs fall back to float64, preserving the historical accuracy of
    callers that never opted into single precision.
    """
    if arrays and all(np.asarray(a).dtype == FLOAT32 for a in arrays):
        return FLOAT32
    return FLOAT64


@dataclass(frozen=True)
class DTypePolicy:
    """Value object naming the precision a model (or pipeline) runs at."""

    name: str = "float64"

    def __post_init__(self) -> None:
        if self.name not in SUPPORTED_DTYPES:
            supported = ", ".join(sorted(SUPPORTED_DTYPES))
            raise ConfigurationError(
                f"unsupported dtype policy {self.name!r}; supported: {supported}"
            )

    @classmethod
    def from_spec(cls, spec: Any = None) -> "DTypePolicy":
        """Build a policy from anything :func:`resolve_dtype` accepts."""
        return cls(resolve_dtype(spec).name)

    @property
    def dtype(self) -> np.dtype:
        """The concrete numpy dtype this policy names."""
        return SUPPORTED_DTYPES[self.name]

    def as_tensor(self, x: Any) -> np.ndarray:
        """Coerce ``x`` under this policy."""
        return as_tensor(x, self.dtype)

    def __str__(self) -> str:
        return self.name


def default_policy() -> DTypePolicy:
    """The training-grade default: full double precision."""
    return DTypePolicy(FLOAT64.name)
