"""Pure functional kernels: the stateless half of every layer.

Each kernel takes pre-coerced arrays, performs one forward or backward
computation, and returns whatever the matching pass needs — no parameters,
no caches, no policy lookups.  Kernels *preserve the dtype of their inputs*
(all intermediate allocations derive from ``x.dtype``/``grad.dtype``), so
the same code path serves float64 training and float32 inference; the
stateful ``Layer`` wrappers in :mod:`repro.nn.layers` decide the dtype once
at their boundary and dispatch here.

The im2col transformation unrolls every receptive field of a ``(N, C, H,
W)`` batch into the rows of a matrix so convolution becomes a single matrix
multiplication — the standard CPU-friendly formulation.  ``col2im`` is its
adjoint (a scatter-add), which gives both the convolution backward pass and
the transposed-convolution forward pass.  :func:`conv_transpose2d` is also
used directly by :mod:`repro.saliency.vbp`: VisualBackProp upscales
averaged feature maps with a ones-kernel transposed convolution matching
each convolution layer's geometry.

Every public kernel is wrapped by :func:`repro.nn.backend.profiler.profiled`
— a no-op unless a kernel profiler is installed (``repro profile``, the
serving worker's ``profile_kernels`` flag), in which case calls are timed
and attributed per kernel.  ``im2col``/``col2im`` are not wrapped: they run
nested inside the convolution kernels and would double-count.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import FLOAT32, as_tensor
from repro.nn.backend.profiler import profiled

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair, name: str) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a validated (h, w) tuple."""
    if isinstance(value, int):
        pair = (value, value)
    else:
        pair = (int(value[0]), int(value[1]))
    if pair[0] < 0 or pair[1] < 0:
        raise ShapeError(f"{name} must be non-negative, got {pair}")
    return pair


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def conv_transpose_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a transposed convolution along one axis."""
    out = (size - 1) * stride + kernel - 2 * padding
    if out <= 0:
        raise ShapeError(
            f"transposed convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> np.ndarray:
    """Unroll receptive fields of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input batch of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kh * kw)`` where row
    ``n * out_h * out_w + i * out_w + j`` holds the receptive field of output
    position ``(i, j)`` of sample ``n``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    # Gather into (N, C, kh, kw, out_h, out_w) with one strided slice per
    # kernel offset: O(kh*kw) slice operations instead of O(out_h*out_w).
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:sh, j:j_max:sw]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into image shape.

    Overlapping receptive fields accumulate, which is exactly the gradient of
    ``im2col`` — and the forward pass of a transposed convolution.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    expected_rows = n * out_h * out_w
    expected_cols = c * kh * kw
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expects cols of shape ({expected_rows}, {expected_cols}), "
            f"got {cols.shape}"
        )

    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            x_padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, :, i, j, :, :]
    if ph or pw:
        return x_padded[:, :, ph : ph + h, pw : pw + w]
    return x_padded


# -- convolution ---------------------------------------------------------


@profiled
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    Parameters
    ----------
    x:
        Input batch ``(N, C_in, H, W)``.
    weight:
        Kernel ``(C_out, C_in, kh, kw)``.

    Returns
    -------
    ``(out, cols)`` — the ``(N, C_out, out_h, out_w)`` output and the im2col
    matrix the backward pass reuses.
    """
    n = x.shape[0]
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(x.shape[2], kh, stride[0], padding[0])
    out_w = conv_output_size(x.shape[3], kw, stride[1], padding[1])
    cols = im2col(x, (kh, kw), stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out = out + bias
    return out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2), cols


@profiled
def conv2d_backward(
    grad_output: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    with_bias: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Convolution backward pass.

    Returns ``(grad_x, grad_weight, grad_bias)`` given the upstream gradient,
    the im2col matrix cached by :func:`conv2d_forward`, and the layer
    geometry.  ``grad_bias`` is ``None`` when ``with_bias`` is false.
    """
    n, c_out, out_h, out_w = grad_output.shape
    kh, kw = weight.shape[2], weight.shape[3]
    grad_rows = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)

    grad_weight = (grad_rows.T @ cols).reshape(weight.shape)
    grad_bias = grad_rows.sum(axis=0) if with_bias else None

    grad_cols = grad_rows @ weight.reshape(c_out, -1)
    grad_x = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return grad_x, grad_weight, grad_bias


# -- transposed convolution ----------------------------------------------


@profiled
def conv_transpose2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> np.ndarray:
    """Functional transposed convolution (used by VisualBackProp).

    Computes in the dtype of ``x`` (the kernel is cast to match), so a
    float32 saliency cascade stays float32 end to end.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_in, C_out, kh, kw)``.
    """
    x = np.asarray(x)
    if x.dtype != FLOAT32:
        x = as_tensor(x)  # lists / int arrays keep the float64 default
    if x.ndim != 4:
        raise ShapeError(
            f"conv_transpose2d input expects a 4-d batch, got shape {x.shape}"
        )
    weight = np.asarray(weight, dtype=x.dtype)
    if weight.ndim != 4 or weight.shape[0] != x.shape[1]:
        raise ShapeError(
            f"conv_transpose2d weight must be (C_in={x.shape[1]}, C_out, kh, kw), "
            f"got {weight.shape}"
        )
    stride_p = _pair(stride, "stride")
    padding_p = _pair(padding, "padding")
    n, c_in, h, w = x.shape
    _, c_out, kh, kw = weight.shape
    out_h = conv_transpose_output_size(h, kh, stride_p[0], padding_p[0])
    out_w = conv_transpose_output_size(w, kw, stride_p[1], padding_p[1])

    # Rows of `cols` correspond to input positions; scatter-add them into the
    # (larger) output canvas. This mirrors the conv backward-data pass.
    x_rows = x.transpose(0, 2, 3, 1).reshape(n * h * w, c_in)
    cols = x_rows @ weight.reshape(c_in, c_out * kh * kw)
    return col2im(
        cols, (n, c_out, out_h, out_w), (kh, kw), stride_p, padding_p
    )


def conv_transpose2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Transposed-convolution forward pass (weight ``(C_in, C_out, kh, kw)``)."""
    out = conv_transpose2d(x, weight, stride, padding)
    if bias is not None:
        out = out + bias[None, :, None, None]
    return out


@profiled
def conv_transpose2d_backward(
    grad_output: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    with_bias: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Transposed-convolution backward pass.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    when ``with_bias`` is false.
    """
    n, _, h, w = x.shape
    c_in = weight.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]

    # dL/dx: a plain convolution of grad_output with the same kernel.
    cols = im2col(grad_output, (kh, kw), stride, padding)
    w_mat = weight.reshape(c_in, -1)  # (C_in, C_out*kh*kw)
    grad_x_rows = cols @ w_mat.T
    grad_x = grad_x_rows.reshape(n, h, w, c_in).transpose(0, 3, 1, 2)

    # dL/dW: correlate input rows with grad_output receptive fields.
    x_rows = x.transpose(0, 2, 3, 1).reshape(n * h * w, c_in)
    grad_weight = (x_rows.T @ cols).reshape(weight.shape)
    grad_bias = grad_output.sum(axis=(0, 2, 3)) if with_bias else None
    return grad_x, grad_weight, grad_bias


# -- dense ----------------------------------------------------------------


@profiled
def dense_forward(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
) -> np.ndarray:
    """Affine map ``x @ W (+ b)`` on ``(N, in_features)`` batches."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


@profiled
def dense_backward(
    grad_output: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    with_bias: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Dense backward pass: ``(grad_x, grad_weight, grad_bias)``."""
    grad_weight = x.T @ grad_output
    grad_bias = grad_output.sum(axis=0) if with_bias else None
    return grad_output @ weight.T, grad_weight, grad_bias


# -- pooling --------------------------------------------------------------


def _pool_patches(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Pooling windows as ``(N, C, out_h, out_w, kh*kw)`` plus out sizes."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    # Treat channels as independent single-channel images so each row of
    # the unrolled matrix is exactly one pooling window.
    cols = im2col(x.reshape(n * c, 1, h, w), kernel, stride, padding)
    return cols.reshape(n, c, out_h, out_w, kh * kw), (out_h, out_w)


@profiled
def maxpool2d_forward(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns ``(out, argmax)`` for the backward scatter."""
    patches, (out_h, out_w) = _pool_patches(x, kernel, stride, padding)
    n, c = x.shape[:2]
    argmax = patches.argmax(axis=-1)
    return patches.max(axis=-1).reshape(n, c, out_h, out_w), argmax


@profiled
def maxpool2d_backward(
    grad_output: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Route each upstream gradient to the argmax position of its window."""
    n, c, h, w = x_shape
    out_h, out_w = grad_output.shape[2], grad_output.shape[3]
    kh, kw = kernel

    grad_patches = np.zeros((n, c, out_h, out_w, kh * kw), dtype=grad_output.dtype)
    np.put_along_axis(grad_patches, argmax[..., None], grad_output[..., None], axis=-1)
    cols = grad_patches.reshape(n * c * out_h * out_w, kh * kw)
    grad_x = col2im(cols, (n * c, 1, h, w), kernel, stride, padding)
    return grad_x.reshape(n, c, h, w)


@profiled
def avgpool2d_forward(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Average pooling over spatial windows."""
    patches, (out_h, out_w) = _pool_patches(x, kernel, stride, padding)
    n, c = x.shape[:2]
    return patches.mean(axis=-1).reshape(n, c, out_h, out_w)


@profiled
def avgpool2d_backward(
    grad_output: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Spread each upstream gradient uniformly over its window."""
    n, c, h, w = x_shape
    out_h, out_w = grad_output.shape[2], grad_output.shape[3]
    kh, kw = kernel

    window = float(kh * kw)
    grad_patches = np.broadcast_to(
        (grad_output / window)[..., None], (n, c, out_h, out_w, kh * kw)
    )
    cols = np.ascontiguousarray(grad_patches).reshape(n * c * out_h * out_w, kh * kw)
    grad_x = col2im(cols, (n * c, 1, h, w), kernel, stride, padding)
    return grad_x.reshape(n, c, h, w)


# -- activations ----------------------------------------------------------


@profiled
def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``max(x, 0)``; returns ``(out, mask)`` with ``mask = x > 0``."""
    mask = x > 0
    return np.where(mask, x, 0.0), mask


@profiled
def relu_backward(grad_output: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Gate the upstream gradient by the forward mask."""
    return np.where(mask, grad_output, 0.0)


@profiled
def leaky_relu_forward(
    x: np.ndarray, negative_slope: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Leaky ReLU; returns ``(out, mask)``."""
    mask = x > 0
    return np.where(mask, x, negative_slope * x), mask


@profiled
def leaky_relu_backward(
    grad_output: np.ndarray, mask: np.ndarray, negative_slope: float
) -> np.ndarray:
    """Leaky-ReLU gradient: slope 1 where positive, ``negative_slope`` else."""
    return np.where(mask, grad_output, negative_slope * grad_output)


@profiled
def sigmoid_forward(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (returns the output, its cache)."""
    # Evaluate the two algebraically-equal branches on their stable side
    # to avoid overflow in exp().
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


@profiled
def sigmoid_backward(grad_output: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Sigmoid gradient from the cached forward output."""
    return grad_output * out * (1.0 - out)


@profiled
def tanh_forward(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (the output doubles as the backward cache)."""
    return np.tanh(x)


@profiled
def tanh_backward(grad_output: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Tanh gradient from the cached forward output."""
    return grad_output * (1.0 - out**2)
