"""Opt-in kernel profiler: per-kernel timing, shapes, and FLOP estimates.

Every kernel in :mod:`repro.nn.backend.kernels` is wrapped by
:func:`profiled`.  With no profiler installed the wrapper is two loads and
a conditional jump on top of the kernel call — effectively free next to an
im2col matmul (gated by ``benchmarks/test_profiler_overhead.py``).  With a
profiler active (:func:`enable_kernel_profiler` or the ``kernel_profile``
context manager) each call records:

* an in-process aggregate (call count, wall seconds, estimated FLOPs and
  bytes moved, the set of input shapes/dtypes seen) — rendered by
  ``repro profile`` and :meth:`KernelProfiler.table`;
* ``kernel.<name>.calls`` / ``kernel.<name>.seconds`` /
  ``kernel.<name>.flops`` instruments in the active telemetry registry, so
  the ``/metrics`` endpoint exposes ``kernel.*`` series;
* a ``kernel.<name>`` span — only when an ambient trace context is active
  (see :mod:`repro.telemetry.trace`), so a traced serving request gets
  per-kernel timings in its tree without training-time span floods.

FLOP estimates use the textbook multiply-add counts (2 FLOPs per MAC) for
matmul-shaped kernels and one FLOP per output element for elementwise and
pooling kernels; bytes are the ``nbytes`` of array arguments and results.
Estimates, not measurements — good for attributing relative cost layer by
layer, not for quoting absolute GFLOP/s.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry import current_trace, get_telemetry

#: Bucket bounds for kernel-duration histograms (seconds, 1µs..5s).
KERNEL_BUCKETS = tuple(
    base * 10.0**exp for exp in range(-6, 1) for base in (1.0, 5.0)
)


class KernelStat:
    """Aggregate for one kernel across every profiled call."""

    __slots__ = ("name", "calls", "seconds", "flops", "bytes", "shapes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.flops = 0.0
        self.bytes = 0.0
        self.shapes: Dict[str, int] = {}  # "(8, 3, 66, 200) f4" -> count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "flops": self.flops,
            "bytes": self.bytes,
            "shapes": dict(self.shapes),
        }


class KernelProfiler:
    """Collects :class:`KernelStat` aggregates while installed.

    Thread-safe: serving dispatch threads and worker mains may drive
    kernels concurrently in one process.
    """

    def __init__(self) -> None:
        self.stats: Dict[str, KernelStat] = {}
        self._lock = threading.Lock()

    def record(
        self,
        name: str,
        duration: float,
        flops: float,
        nbytes: float,
        shape_key: str,
    ) -> None:
        with self._lock:
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = KernelStat(name)
            stat.calls += 1
            stat.seconds += duration
            stat.flops += flops
            stat.bytes += nbytes
            stat.shapes[shape_key] = stat.shapes.get(shape_key, 0) + 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """Aggregates as dicts, sorted by total wall time descending."""
        with self._lock:
            rows = [s.as_dict() for s in self.stats.values()]
        return sorted(rows, key=lambda r: r["seconds"], reverse=True)

    def table(self) -> str:
        """Human-readable aggregate table (what ``repro profile`` prints)."""
        return render_profile_table(self.snapshot())


def render_profile_table(rows: List[Dict[str, Any]]) -> str:
    """Format kernel aggregate rows as an aligned text table."""
    if not rows:
        return "(no kernel calls profiled)"
    lines = [
        f"{'kernel':<28} {'calls':>8} {'seconds':>10} {'ms/call':>9} "
        f"{'GFLOP':>9} {'GB':>8}  top shape"
    ]
    for row in rows:
        calls = row["calls"] or 1
        shapes = row.get("shapes", {})
        top_shape = max(shapes, key=shapes.get) if shapes else "-"
        lines.append(
            f"{row['name']:<28} {row['calls']:>8} {row['seconds']:>10.4f} "
            f"{1e3 * row['seconds'] / calls:>9.3f} "
            f"{row['flops'] / 1e9:>9.3f} {row['bytes'] / 1e9:>8.3f}  {top_shape}"
        )
    return "\n".join(lines)


_ACTIVE: Optional[KernelProfiler] = None


def get_kernel_profiler() -> Optional[KernelProfiler]:
    """The installed profiler, or ``None`` when profiling is off."""
    return _ACTIVE


def enable_kernel_profiler() -> KernelProfiler:
    """Install (and return) a fresh process-wide profiler."""
    global _ACTIVE
    _ACTIVE = KernelProfiler()
    return _ACTIVE


def disable_kernel_profiler() -> None:
    """Remove the installed profiler (kernels revert to the free path)."""
    global _ACTIVE
    _ACTIVE = None


class kernel_profile:
    """Context manager scoping a profiler installation.

    >>> from repro.nn.backend import kernel_profile
    >>> with kernel_profile() as prof:
    ...     pass  # run kernels
    >>> prof.snapshot()
    []
    """

    def __init__(self) -> None:
        self.profiler: Optional[KernelProfiler] = None
        self._previous: Optional[KernelProfiler] = None

    def __enter__(self) -> KernelProfiler:
        global _ACTIVE
        self._previous = _ACTIVE
        self.profiler = KernelProfiler()
        _ACTIVE = self.profiler
        return self.profiler

    def __exit__(self, *exc: Any) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


# -- FLOP estimators -------------------------------------------------------
#
# Each estimator mirrors its kernel's positional signature and returns the
# estimated floating-point operation count.  They run only while a profiler
# is installed, and any estimation failure degrades to 0 rather than
# breaking the kernel call.


def _flops_conv2d_forward(x, weight, bias, stride, padding) -> float:
    from repro.nn.backend.kernels import conv_output_size

    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    out_h = conv_output_size(x.shape[2], kh, stride[0], padding[0])
    out_w = conv_output_size(x.shape[3], kw, stride[1], padding[1])
    macs = n * out_h * out_w * c_out * c_in * kh * kw
    return 2.0 * macs


def _flops_conv2d_backward(grad_output, cols, x_shape, weight, *a, **k) -> float:
    # grad_weight and grad_cols are each the same matmul volume as forward.
    n, c_out, out_h, out_w = grad_output.shape
    _, c_in, kh, kw = weight.shape
    macs = n * out_h * out_w * c_out * c_in * kh * kw
    return 4.0 * macs


def _flops_conv_transpose2d(x, weight, stride=1, padding=0) -> float:
    n, c_in, h, w = np.asarray(x).shape
    _, c_out, kh, kw = np.asarray(weight).shape
    macs = n * h * w * c_in * c_out * kh * kw
    return 2.0 * macs


def _flops_conv_transpose2d_backward(grad_output, x, weight, *a, **k) -> float:
    n, _, h, w = x.shape
    c_in, c_out, kh, kw = weight.shape
    macs = n * h * w * c_in * c_out * kh * kw
    return 4.0 * macs


def _flops_dense_forward(x, weight, bias) -> float:
    return 2.0 * x.shape[0] * weight.shape[0] * weight.shape[1]


def _flops_dense_backward(grad_output, x, weight, *a, **k) -> float:
    return 4.0 * x.shape[0] * weight.shape[0] * weight.shape[1]


def _flops_elementwise(x, *a, **k) -> float:
    return float(np.asarray(x).size)


_FLOPS: Dict[str, Callable[..., float]] = {
    "conv2d_forward": _flops_conv2d_forward,
    "conv2d_backward": _flops_conv2d_backward,
    "conv_transpose2d": _flops_conv_transpose2d,
    "conv_transpose2d_backward": _flops_conv_transpose2d_backward,
    "dense_forward": _flops_dense_forward,
    "dense_backward": _flops_dense_backward,
}


def _estimate_flops(name: str, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> float:
    estimator = _FLOPS.get(name, _flops_elementwise)
    try:
        return float(estimator(*args, **kwargs))
    except Exception:
        return 0.0


def _array_bytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, tuple):
        return sum(_array_bytes(v) for v in value)
    return 0


def _shape_key(args: Tuple[Any, ...]) -> str:
    for value in args:
        if isinstance(value, np.ndarray):
            return f"{value.shape} {value.dtype.str.lstrip('<>=|')}"
    return "-"


def profiled(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a kernel with the opt-in profiling hook.

    The undecorated kernel stays reachable as ``wrapper.__wrapped__``
    (benchmarks use it to measure the true baseline).
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        profiler = _ACTIVE
        if profiler is None:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        duration = time.perf_counter() - start
        flops = _estimate_flops(name, args, kwargs)
        nbytes = _array_bytes(args) + _array_bytes(result)
        shape_key = _shape_key(args)
        profiler.record(name, duration, flops, nbytes, shape_key)
        telem = get_telemetry()
        if telem.enabled:
            telem.counter(f"kernel.{name}.calls").inc()
            telem.counter(f"kernel.{name}.flops").inc(flops)
            telem.histogram(f"kernel.{name}.seconds", buckets=KERNEL_BUCKETS).observe(duration)
            if current_trace() is not None:
                telem.add_span(
                    f"kernel.{name}",
                    duration,
                    context=current_trace().child(),
                    shape=shape_key,
                    flops=flops,
                    bytes=nbytes,
                )
        return result

    return wrapper
