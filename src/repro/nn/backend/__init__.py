"""Compute backend: pure functional kernels plus the precision policy.

This package is the only place in ``repro`` allowed to spell out concrete
float dtypes.  Everything above it — layers, models, saliency, metrics,
serving — either asks the policy (:func:`resolve_dtype` / :func:`as_tensor`)
or follows the dtype of its inputs (:func:`result_dtype`).

Two modules:

* :mod:`repro.nn.backend.policy` — ``DTypePolicy`` and the coercion helpers.
* :mod:`repro.nn.backend.kernels` — stateless forward/backward kernels
  (im2col convolution, transposed convolution, dense, pooling, activations)
  that preserve the dtype of their inputs.  The stateful ``Layer`` classes
  in :mod:`repro.nn.layers` are thin wrappers over these functions, which is
  what lets alternative backends (threaded kernels, blocked GEMM) slot in
  behind one interface.
"""

from repro.nn.backend.kernels import (
    avgpool2d_backward,
    avgpool2d_forward,
    col2im,
    conv2d_backward,
    conv2d_forward,
    conv_output_size,
    conv_transpose2d,
    conv_transpose2d_backward,
    conv_transpose2d_forward,
    conv_transpose_output_size,
    dense_backward,
    dense_forward,
    im2col,
    leaky_relu_backward,
    leaky_relu_forward,
    maxpool2d_backward,
    maxpool2d_forward,
    relu_backward,
    relu_forward,
    sigmoid_backward,
    sigmoid_forward,
    tanh_backward,
    tanh_forward,
)
from repro.nn.backend.policy import (
    FLOAT32,
    FLOAT64,
    SUPPORTED_DTYPES,
    DTypePolicy,
    as_tensor,
    default_policy,
    resolve_dtype,
    result_dtype,
)
from repro.nn.backend.profiler import (
    KernelProfiler,
    KernelStat,
    disable_kernel_profiler,
    enable_kernel_profiler,
    get_kernel_profiler,
    kernel_profile,
    profiled,
    render_profile_table,
)

__all__ = [
    "KernelProfiler",
    "KernelStat",
    "disable_kernel_profiler",
    "enable_kernel_profiler",
    "get_kernel_profiler",
    "kernel_profile",
    "profiled",
    "render_profile_table",
    "FLOAT32",
    "FLOAT64",
    "SUPPORTED_DTYPES",
    "DTypePolicy",
    "as_tensor",
    "default_policy",
    "resolve_dtype",
    "result_dtype",
    "avgpool2d_backward",
    "avgpool2d_forward",
    "col2im",
    "conv2d_backward",
    "conv2d_forward",
    "conv_output_size",
    "conv_transpose2d",
    "conv_transpose2d_backward",
    "conv_transpose2d_forward",
    "conv_transpose_output_size",
    "dense_backward",
    "dense_forward",
    "im2col",
    "leaky_relu_backward",
    "leaky_relu_forward",
    "maxpool2d_backward",
    "maxpool2d_forward",
    "relu_backward",
    "relu_forward",
    "sigmoid_backward",
    "sigmoid_forward",
    "tanh_backward",
    "tanh_forward",
]
