"""Model inspection: layer tables and parameter counts."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.model import Sequential


def parameter_count(model: Layer) -> int:
    """Total number of trainable scalars in a layer or model."""
    return int(sum(p.value.size for p in model.parameters()))


def layer_table(model: Sequential) -> List[Tuple[str, str, int]]:
    """Per-layer rows of ``(index, repr, parameter count)``."""
    rows = []
    for i, layer in enumerate(model.layers):
        rows.append((str(i), repr(layer), parameter_count(layer)))
    return rows


def describe(model: Sequential, input_shape: Tuple[int, ...] = None) -> str:
    """Human-readable model summary.

    With ``input_shape`` (excluding the batch axis) the summary also traces
    a dummy forward pass and reports each layer's output shape.
    """
    shapes: List[str] = []
    if input_shape is not None:
        x = np.zeros((1,) + tuple(input_shape), dtype=model.dtype)
        for layer in model.layers:
            x = layer.forward(x, training=False)
            shapes.append(str(tuple(x.shape[1:])))
    else:
        shapes = [""] * len(model.layers)

    header = f"{'#':>3}  {'layer':<60} {'output':<16} {'params':>10}"
    lines = [header, "-" * len(header)]
    for (index, name, params), shape in zip(layer_table(model), shapes):
        lines.append(f"{index:>3}  {name:<60} {shape:<16} {params:>10,}")
    lines.append("-" * len(header))
    lines.append(f"total parameters: {parameter_count(model):,}")
    return "\n".join(lines)
