"""Loss functions with analytic gradients.

Each loss exposes ``forward(pred, target) -> float`` and
``backward() -> dL/dpred``.  :class:`MSELoss` is the Richter & Roy baseline
objective; :class:`SSIMLoss` is the paper's contribution — it trains the
autoencoder to *maximize* structural similarity by minimizing
``1 - mean(SSIM(target, pred))``, using the exact analytic SSIM gradient
from :mod:`repro.metrics.ssim`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.metrics.msssim import ms_ssim_and_grad
from repro.metrics.ssim import DEFAULT_WINDOW_SIZE, ssim_and_grad
from repro.nn.backend.policy import as_tensor, result_dtype
from repro.utils.validation import require_same_shape


class Loss:
    """Base class: ``forward`` computes the scalar, ``backward`` its gradient."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Gradient of the scalar loss with respect to the last ``pred``."""
        raise NotImplementedError

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Per-sample loss vector for an ``(N, ...)`` batch (no caching)."""
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def _as_float_pair(pred: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    # Follow the inputs: a float32 inference pipeline keeps its scoring
    # losses in float32; any other combination computes in float64.
    dtype = result_dtype(np.asarray(pred), np.asarray(target))
    pred = as_tensor(pred, dtype)
    target = as_tensor(target, dtype)
    require_same_shape(pred, target, "loss inputs")
    if pred.size == 0:
        raise ShapeError("loss inputs must be non-empty")
    return pred, target


class MSELoss(Loss):
    """Mean squared error over all elements of the batch."""

    def __init__(self) -> None:
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _as_float_pair(pred, target)
        self._cache = (pred, target)
        return float(np.mean((pred - target) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MSELoss.backward() called before forward()")
        pred, target = self._cache
        return 2.0 * (pred - target) / pred.size

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _as_float_pair(pred, target)
        diff = (pred - target).reshape(pred.shape[0], -1)
        return np.mean(diff**2, axis=1)


class MAELoss(Loss):
    """Mean absolute error; more robust to outlier pixels than MSE."""

    def __init__(self) -> None:
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _as_float_pair(pred, target)
        self._cache = (pred, target)
        return float(np.mean(np.abs(pred - target)))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MAELoss.backward() called before forward()")
        pred, target = self._cache
        return np.sign(pred - target) / pred.size

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _as_float_pair(pred, target)
        diff = np.abs(pred - target).reshape(pred.shape[0], -1)
        return np.mean(diff, axis=1)


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``.

    Useful for steering-angle regression where occasional extreme labels
    (sharp turns) would otherwise dominate an MSE objective.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _as_float_pair(pred, target)
        self._cache = (pred, target)
        return float(np.mean(self._elementwise(pred - target)))

    def _elementwise(self, diff: np.ndarray) -> np.ndarray:
        abs_diff = np.abs(diff)
        quad = 0.5 * diff**2
        lin = self.delta * (abs_diff - 0.5 * self.delta)
        return np.where(abs_diff <= self.delta, quad, lin)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("HuberLoss.backward() called before forward()")
        pred, target = self._cache
        diff = pred - target
        grad = np.clip(diff, -self.delta, self.delta)
        return grad / pred.size

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _as_float_pair(pred, target)
        per_elem = self._elementwise(pred - target).reshape(pred.shape[0], -1)
        return np.mean(per_elem, axis=1)


class SSIMLoss(Loss):
    """``1 - mean SSIM`` between reconstructions and targets (paper §III-C).

    The autoencoder operates on flattened ``(N, H*W)`` vectors, so this loss
    reshapes each sample to ``image_shape`` before computing windowed SSIM
    statistics.  Minimizing the loss maximizes structural similarity; a loss
    of 0 corresponds to SSIM 1.0 (perfect reconstruction).

    Parameters
    ----------
    image_shape:
        ``(H, W)`` spatial shape each flattened sample encodes.
    window_size, data_range, k1, k2, window, sigma:
        Forwarded to :func:`repro.metrics.ssim.ssim_and_grad`.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        window_size: int = DEFAULT_WINDOW_SIZE,
        data_range: float = 1.0,
        k1: float = 0.01,
        k2: float = 0.03,
        window: str = "uniform",
        sigma: float = 1.5,
    ) -> None:
        if len(image_shape) != 2 or image_shape[0] < 1 or image_shape[1] < 1:
            raise ConfigurationError(f"image_shape must be (H, W), got {image_shape}")
        self.image_shape = (int(image_shape[0]), int(image_shape[1]))
        self.window_size = window_size
        self.data_range = data_range
        self.k1 = k1
        self.k2 = k2
        self.window = window
        self.sigma = sigma
        self._grad: Optional[np.ndarray] = None
        self._flat_input: bool = True
        self._n: int = 0

    def _to_images(self, arr: np.ndarray, name: str) -> np.ndarray:
        h, w = self.image_shape
        if arr.ndim == 2 and arr.shape[1] == h * w:
            self._flat_input = True
            return arr.reshape(arr.shape[0], h, w)
        if arr.ndim == 3 and arr.shape[1:] == (h, w):
            self._flat_input = False
            return arr
        raise ShapeError(
            f"{name} must be (N, {h * w}) flat or (N, {h}, {w}) images, got {arr.shape}"
        )

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _as_float_pair(pred, target)
        pred_img = self._to_images(pred, "pred")
        target_img = self._to_images(target, "target")
        self._n = pred_img.shape[0]
        # SSIM is differentiated with respect to its second argument, so the
        # reconstruction goes second: d(loss)/d(pred) is what training needs.
        scores, grad = ssim_and_grad(
            target_img,
            pred_img,
            window_size=self.window_size,
            data_range=self.data_range,
            k1=self.k1,
            k2=self.k2,
            window=self.window,
            sigma=self.sigma,
        )
        self._grad = grad
        return float(1.0 - np.mean(scores))

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise ShapeError("SSIMLoss.backward() called before forward()")
        # loss = 1 - mean_i score_i, and _grad[i] = d score_i / d pred_i.
        grad = -self._grad / self._n
        if self._flat_input:
            return grad.reshape(self._n, -1)
        return grad

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _as_float_pair(pred, target)
        pred_img = self._to_images(pred, "pred")
        target_img = self._to_images(target, "target")
        scores, _ = ssim_and_grad(
            target_img,
            pred_img,
            window_size=self.window_size,
            data_range=self.data_range,
            k1=self.k1,
            k2=self.k2,
            window=self.window,
            sigma=self.sigma,
        )
        return 1.0 - np.atleast_1d(scores)


class MSSSIMLoss(Loss):
    """``1 - mean multi-scale SSIM`` (arithmetic-mean variant).

    An extension beyond the paper's single-scale SSIM loss: also penalizes
    reconstruction errors in coarse structure via 2x-downsampled pyramid
    levels (see :mod:`repro.metrics.msssim`).  Used by the loss-function
    ablation experiment.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        scales: int = 3,
        window_size: int = DEFAULT_WINDOW_SIZE,
        data_range: float = 1.0,
        window: str = "uniform",
    ) -> None:
        if len(image_shape) != 2 or image_shape[0] < 1 or image_shape[1] < 1:
            raise ConfigurationError(f"image_shape must be (H, W), got {image_shape}")
        if scales < 1:
            raise ConfigurationError(f"scales must be >= 1, got {scales}")
        self.image_shape = (int(image_shape[0]), int(image_shape[1]))
        self.scales = int(scales)
        self.window_size = window_size
        self.data_range = data_range
        self.window = window
        self._grad: Optional[np.ndarray] = None
        self._flat_input: bool = True
        self._n: int = 0

    def _to_images(self, arr: np.ndarray, name: str) -> np.ndarray:
        h, w = self.image_shape
        if arr.ndim == 2 and arr.shape[1] == h * w:
            self._flat_input = True
            return arr.reshape(arr.shape[0], h, w)
        if arr.ndim == 3 and arr.shape[1:] == (h, w):
            self._flat_input = False
            return arr
        raise ShapeError(
            f"{name} must be (N, {h * w}) flat or (N, {h}, {w}) images, got {arr.shape}"
        )

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _as_float_pair(pred, target)
        pred_img = self._to_images(pred, "pred")
        target_img = self._to_images(target, "target")
        self._n = pred_img.shape[0]
        scores, grad = ms_ssim_and_grad(
            target_img,
            pred_img,
            scales=self.scales,
            window_size=self.window_size,
            data_range=self.data_range,
            window=self.window,
        )
        self._grad = grad
        return float(1.0 - np.mean(scores))

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise ShapeError("MSSSIMLoss.backward() called before forward()")
        grad = -self._grad / self._n
        if self._flat_input:
            return grad.reshape(self._n, -1)
        return grad

    def per_sample(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _as_float_pair(pred, target)
        pred_img = self._to_images(pred, "pred")
        target_img = self._to_images(target, "target")
        scores, _ = ms_ssim_and_grad(
            target_img,
            pred_img,
            scales=self.scales,
            window_size=self.window_size,
            data_range=self.data_range,
            window=self.window,
        )
        return 1.0 - np.atleast_1d(scores)
