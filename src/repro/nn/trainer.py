"""Mini-batch training loop with history tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.data import DataLoader
from repro.nn.losses import Loss
from repro.nn.model import Sequential
from repro.nn.optim import Optimizer
from repro.telemetry import get_telemetry
from repro.utils.log import get_logger

_log = get_logger(__name__)


@dataclass
class TrainingHistory:
    """Per-epoch loss records accumulated during training."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        """Lowest validation loss seen (inf when no validation ran)."""
        return min(self.val_loss) if self.val_loss else float("inf")


class EarlyStopping:
    """Stop when validation loss hasn't improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = float("inf")
        self.stale_epochs = 0

    def update(self, val_loss: float) -> bool:
        """Record an epoch's validation loss; return True to stop training."""
        if val_loss < self.best - self.min_delta:
            self.best = val_loss
            self.stale_epochs = 0
            return False
        self.stale_epochs += 1
        return self.stale_epochs >= self.patience


class Trainer:
    """Drives the zero-grad / forward / loss / backward / step cycle.

    Parameters
    ----------
    model, loss, optimizer:
        The pieces being trained.  The optimizer must have been constructed
        over ``model.parameters()``.
    gradient_clip:
        Optional max L2 norm for the concatenated gradient — useful for the
        SSIM loss whose gradients can spike early in training.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        gradient_clip: Optional[float] = None,
    ) -> None:
        if gradient_clip is not None and gradient_clip <= 0:
            raise ConfigurationError(f"gradient_clip must be positive, got {gradient_clip}")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.gradient_clip = gradient_clip
        #: Pre-clip gradient L2 norm of the most recent step (None until a
        #: step that measured it — clipping enabled or telemetry active).
        self.last_grad_norm: Optional[float] = None

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One optimization step on a mini-batch; returns the batch loss."""
        self.optimizer.zero_grad()
        pred = self.model.forward(inputs, training=True)
        value = self.loss.forward(pred, targets)
        self.model.backward(self.loss.backward())
        if self.gradient_clip is not None or get_telemetry().enabled:
            self.last_grad_norm = self.grad_norm()
            if self.gradient_clip is not None:
                self._clip_gradients(self.last_grad_norm)
        self.optimizer.step()
        return value

    def grad_norm(self) -> float:
        """L2 norm of the concatenated parameter gradients (as accumulated)."""
        total = 0.0
        for p in self.model.parameters():
            total += float(np.sum(p.grad**2))
        return float(np.sqrt(total))

    def _clip_gradients(self, norm: Optional[float] = None) -> None:
        if norm is None:
            norm = self.grad_norm()
        if norm > self.gradient_clip:
            scale = self.gradient_clip / norm
            for p in self.model.parameters():
                p.grad *= scale

    def evaluate(self, loader: DataLoader) -> float:
        """Mean loss over a loader in inference mode."""
        total, batches = 0.0, 0
        for inputs, targets in loader:
            pred = self.model.forward(inputs, training=False)
            total += self.loss.forward(pred, targets)
            batches += 1
        if batches == 0:
            raise ConfigurationError("evaluate() received an empty loader")
        return total / batches

    def save_checkpoint(self, path) -> None:
        """Write model + optimizer state to one ``.npz`` checkpoint.

        The write is crash-safe: bytes go to a same-directory temp file
        (flushed and fsync-ed) that atomically replaces ``path``, so a
        crash mid-write — even mid-epoch on a checkpoint callback — leaves
        the previous checkpoint intact and readable.

        Restoring with :meth:`load_checkpoint` into an identically built
        trainer resumes training exactly (modulo data-loader position).
        """
        import numpy as np

        from repro.exceptions import SerializationError
        from repro.utils.fileio import atomic_write, npz_path

        path = npz_path(path)
        state = {f"model/{k}": v for k, v in self.model.state_dict().items()}
        state.update(
            {f"optim/{k}": v for k, v in self.optimizer.state_dict().items()}
        )
        try:
            with atomic_write(path) as handle:
                np.savez(handle, **state)
        except OSError as exc:
            raise SerializationError(f"failed to save checkpoint to {path}: {exc}") from exc

    def load_checkpoint(self, path) -> None:
        """Restore model + optimizer state written by :meth:`save_checkpoint`."""
        from pathlib import Path

        import numpy as np

        from repro.exceptions import SerializationError

        path = Path(path)
        if not path.exists():
            raise SerializationError(f"checkpoint {path} does not exist")
        with np.load(path) as data:
            model_state = {
                key[len("model/"):]: data[key]
                for key in data.files
                if key.startswith("model/")
            }
            optim_state = {
                key[len("optim/"):]: data[key]
                for key in data.files
                if key.startswith("optim/")
            }
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optim_state)

    def fit(
        self,
        train_loader: DataLoader,
        epochs: int,
        val_loader: Optional[DataLoader] = None,
        early_stopping: Optional[EarlyStopping] = None,
        on_epoch_end: Optional[Callable[[int, TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` passes over ``train_loader``.

        Returns the accumulated :class:`TrainingHistory`.  ``on_epoch_end``
        (if given) is invoked with the epoch index and history after each
        epoch — handy for logging or checkpointing callbacks.
        """
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if early_stopping is not None and val_loader is None:
            raise ConfigurationError("early stopping requires a validation loader")
        history = TrainingHistory()
        telem = get_telemetry()
        for epoch in range(epochs):
            with telem.span("trainer.epoch", epoch=epoch):
                epoch_total, batches = 0.0, 0
                grad_norms = []
                for inputs, targets in train_loader:
                    epoch_total += self.train_step(inputs, targets)
                    batches += 1
                    if self.last_grad_norm is not None:
                        grad_norms.append(self.last_grad_norm)
                if batches == 0:
                    raise ConfigurationError("fit() received an empty training loader")
                history.train_loss.append(epoch_total / batches)

                if val_loader is not None:
                    history.val_loss.append(self.evaluate(val_loader))
            if telem.enabled:
                telem.event(
                    "trainer.epoch",
                    epoch=epoch,
                    train_loss=history.train_loss[-1],
                    val_loss=history.val_loss[-1] if val_loader is not None else None,
                    grad_norm=float(np.mean(grad_norms)) if grad_norms else None,
                )
                telem.histogram("trainer.train_loss").observe(history.train_loss[-1])
            _log.debug(
                "epoch %d/%d train_loss=%.6f%s",
                epoch + 1,
                epochs,
                history.train_loss[-1],
                f" val_loss={history.val_loss[-1]:.6f}" if val_loader is not None else "",
            )
            if on_epoch_end is not None:
                on_epoch_end(epoch, history)
            if early_stopping is not None and early_stopping.update(history.val_loss[-1]):
                break
        return history
