"""Inverted dropout regularization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.layers.base import Layer
from repro.utils.seeding import RngLike, derive_rng


class Dropout(Layer):
    """Inverted dropout: zero activations with probability ``p`` at train
    time, scaling the survivors by ``1/(1-p)`` so inference needs no change.

    Deterministic under a fixed ``rng`` seed, which keeps training runs
    reproducible end to end.
    """

    def __init__(self, p: float = 0.5, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = derive_rng(rng, stream="dropout")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_tensor(x, self.dtype)
        if not training or self.p == 0.0:
            self._mask = np.ones_like(x)
            return x
        keep = 1.0 - self.p
        # Draw in the generator's native float64 (keeping the stream identical
        # across policies), then cast the mask to the compute dtype.
        self._mask = ((self._rng.random(x.shape) < keep) / keep).astype(
            x.dtype, copy=False
        )
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("Dropout.backward() called before forward()")
        return as_tensor(grad_output, self.dtype) * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
