"""Neural-network layers with explicit forward/backward passes."""

from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2d, ConvTranspose2d
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm1d, BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, MaxPool2d

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "Conv2d",
    "ConvTranspose2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "BatchNorm1d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
]
