"""2-D convolution and transposed convolution layers.

The heavy lifting — im2col/col2im and the matrix-multiply kernels — lives in
:mod:`repro.nn.backend.kernels`; these classes are the thin stateful
wrappers: they own the weights, validate shapes, cache what the backward
pass needs, and dispatch to the kernels in the layer's policy dtype.

``im2col``/``col2im``/``conv_transpose2d`` are re-exported here for
backwards compatibility — :mod:`repro.saliency.vbp` and the pooling layers
historically imported them from this module.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import initializers
from repro.nn.backend.kernels import (  # noqa: F401 — re-exported API
    IntPair,
    _pair,
    col2im,
    conv_output_size,
    conv_transpose2d,
    conv_transpose_output_size,
    im2col,
)
from repro.nn.backend import kernels
from repro.nn.layers.base import Layer, Parameter, as_batch
from repro.utils.seeding import RngLike, derive_rng


class Conv2d(Layer):
    """2-D convolution on ``(N, C, H, W)`` batches.

    Parameters match the usual framework semantics: ``stride`` and
    ``padding`` may be ints or (h, w) pairs.  Weights are stored as
    ``(out_channels, in_channels, kh, kw)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        weight_init: Union[str, initializers.Initializer] = "he_normal",
        bias: bool = True,
        rng: RngLike = None,
        name: str = "conv",
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ShapeError(
                f"Conv2d channels must be positive, got {in_channels}->{out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size, "kernel_size")
        if self.kernel_size[0] == 0 or self.kernel_size[1] == 0:
            raise ShapeError("kernel_size must be positive")
        self.stride = _pair(stride, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("stride must be positive")
        self.padding = _pair(padding, "padding")

        generator = derive_rng(rng, stream=name)
        init = initializers.get(weight_init)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((out_channels, in_channels, kh, kw), generator), f"{name}.weight"
        )
        self._params = [self.weight]
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_channels), f"{name}.bias")
            self._params.append(self.bias)

        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the output ``(C, H, W)`` shape."""
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(f"Conv2d expects {self.in_channels} channels, got {c}")
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "Conv2d input", self.dtype)
        if x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expects {self.in_channels} input channels, got {x.shape[1]}"
            )
        self._x_shape = x.shape
        out, self._cols = kernels.conv2d_forward(
            x,
            self.weight.value,
            None if self.bias is None else self.bias.value,
            self.stride,
            self.padding,
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise ShapeError("Conv2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "Conv2d grad_output", self.dtype)
        grad_x, grad_w, grad_b = kernels.conv2d_backward(
            grad_output,
            self._cols,
            self._x_shape,
            self.weight.value,
            self.stride,
            self.padding,
            with_bias=self.bias is not None,
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )


class ConvTranspose2d(Layer):
    """Transposed 2-D convolution (a.k.a. deconvolution).

    Weights are stored as ``(in_channels, out_channels, kh, kw)``.  The
    forward pass is the adjoint of a :class:`Conv2d` with the same geometry,
    so conv followed by conv-transpose restores spatial dimensions — the
    property VisualBackProp relies on to align feature maps across layers.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        weight_init: Union[str, initializers.Initializer] = "he_normal",
        bias: bool = True,
        rng: RngLike = None,
        name: str = "convT",
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ShapeError(
                f"ConvTranspose2d channels must be positive, got {in_channels}->{out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size, "kernel_size")
        self.stride = _pair(stride, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("stride must be positive")
        self.padding = _pair(padding, "padding")

        generator = derive_rng(rng, stream=name)
        init = initializers.get(weight_init)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((in_channels, out_channels, kh, kw), generator), f"{name}.weight"
        )
        self._params = [self.weight]
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_channels), f"{name}.bias")
            self._params.append(self.bias)
        self._x: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the output ``(C, H, W)`` shape."""
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(f"ConvTranspose2d expects {self.in_channels} channels, got {c}")
        out_h = conv_transpose_output_size(
            h, self.kernel_size[0], self.stride[0], self.padding[0]
        )
        out_w = conv_transpose_output_size(
            w, self.kernel_size[1], self.stride[1], self.padding[1]
        )
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "ConvTranspose2d input", self.dtype)
        if x.shape[1] != self.in_channels:
            raise ShapeError(
                f"ConvTranspose2d expects {self.in_channels} input channels, "
                f"got {x.shape[1]}"
            )
        self._x = x
        return kernels.conv_transpose2d_forward(
            x,
            self.weight.value,
            None if self.bias is None else self.bias.value,
            self.stride,
            self.padding,
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("ConvTranspose2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "ConvTranspose2d grad_output", self.dtype)
        grad_x, grad_w, grad_b = kernels.conv_transpose2d_backward(
            grad_output,
            self._x,
            self.weight.value,
            self.stride,
            self.padding,
            with_bias=self.bias is not None,
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def __repr__(self) -> str:
        return (
            f"ConvTranspose2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )
