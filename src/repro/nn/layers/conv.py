"""2-D convolution and transposed convolution via im2col/col2im.

The im2col transformation unrolls every receptive field of a ``(N, C, H, W)``
batch into the rows of a matrix so convolution becomes a single matrix
multiplication — the standard CPU-friendly formulation.  ``col2im`` is its
adjoint (a scatter-add), which gives both the convolution backward pass and
the transposed-convolution forward pass.

These functions are also used directly by :mod:`repro.saliency.vbp`: the
VisualBackProp algorithm upscales averaged feature maps with a ones-kernel
transposed convolution matching each convolution layer's geometry.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import initializers
from repro.nn.layers.base import Layer, Parameter, as_batch
from repro.utils.seeding import RngLike, derive_rng

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair, name: str) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a validated (h, w) tuple."""
    if isinstance(value, int):
        pair = (value, value)
    else:
        pair = (int(value[0]), int(value[1]))
    if pair[0] < 0 or pair[1] < 0:
        raise ShapeError(f"{name} must be non-negative, got {pair}")
    return pair


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def conv_transpose_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a transposed convolution along one axis."""
    out = (size - 1) * stride + kernel - 2 * padding
    if out <= 0:
        raise ShapeError(
            f"transposed convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> np.ndarray:
    """Unroll receptive fields of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input batch of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kh * kw)`` where row
    ``n * out_h * out_w + i * out_w + j`` holds the receptive field of output
    position ``(i, j)`` of sample ``n``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    # Gather into (N, C, kh, kw, out_h, out_w) with one strided slice per
    # kernel offset: O(kh*kw) slice operations instead of O(out_h*out_w).
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:sh, j:j_max:sw]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into image shape.

    Overlapping receptive fields accumulate, which is exactly the gradient of
    ``im2col`` — and the forward pass of a transposed convolution.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    expected_rows = n * out_h * out_w
    expected_cols = c * kh * kw
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expects cols of shape ({expected_rows}, {expected_cols}), "
            f"got {cols.shape}"
        )

    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            x_padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, :, i, j, :, :]
    if ph or pw:
        return x_padded[:, :, ph : ph + h, pw : pw + w]
    return x_padded


def conv_transpose2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> np.ndarray:
    """Functional transposed convolution (used by VisualBackProp).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_in, C_out, kh, kw)``.
    """
    x = as_batch(x, 4, "conv_transpose2d input")
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 4 or weight.shape[0] != x.shape[1]:
        raise ShapeError(
            f"conv_transpose2d weight must be (C_in={x.shape[1]}, C_out, kh, kw), "
            f"got {weight.shape}"
        )
    stride_p = _pair(stride, "stride")
    padding_p = _pair(padding, "padding")
    n, c_in, h, w = x.shape
    _, c_out, kh, kw = weight.shape
    out_h = conv_transpose_output_size(h, kh, stride_p[0], padding_p[0])
    out_w = conv_transpose_output_size(w, kw, stride_p[1], padding_p[1])

    # Rows of `cols` correspond to input positions; scatter-add them into the
    # (larger) output canvas. This mirrors the conv backward-data pass.
    x_rows = x.transpose(0, 2, 3, 1).reshape(n * h * w, c_in)
    cols = x_rows @ weight.reshape(c_in, c_out * kh * kw)
    return col2im(
        cols, (n, c_out, out_h, out_w), (kh, kw), stride_p, padding_p
    )


class Conv2d(Layer):
    """2-D convolution on ``(N, C, H, W)`` batches.

    Parameters match the usual framework semantics: ``stride`` and
    ``padding`` may be ints or (h, w) pairs.  Weights are stored as
    ``(out_channels, in_channels, kh, kw)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        weight_init: Union[str, initializers.Initializer] = "he_normal",
        bias: bool = True,
        rng: RngLike = None,
        name: str = "conv",
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ShapeError(
                f"Conv2d channels must be positive, got {in_channels}->{out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size, "kernel_size")
        if self.kernel_size[0] == 0 or self.kernel_size[1] == 0:
            raise ShapeError("kernel_size must be positive")
        self.stride = _pair(stride, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("stride must be positive")
        self.padding = _pair(padding, "padding")

        generator = derive_rng(rng, stream=name)
        init = initializers.get(weight_init)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((out_channels, in_channels, kh, kw), generator), f"{name}.weight"
        )
        self._params = [self.weight]
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_channels), f"{name}.bias")
            self._params.append(self.bias)

        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the output ``(C, H, W)`` shape."""
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(f"Conv2d expects {self.in_channels} channels, got {c}")
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "Conv2d input")
        if x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expects {self.in_channels} input channels, got {x.shape[1]}"
            )
        n = x.shape[0]
        _, out_h, out_w = self.output_shape(x.shape[1:])
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape

        w_mat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out = out + self.bias.value
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise ShapeError("Conv2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "Conv2d grad_output")
        n, c_out, out_h, out_w = grad_output.shape
        grad_rows = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)

        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad_rows.T @ self._cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_rows.sum(axis=0)

        grad_cols = grad_rows @ w_mat
        return col2im(grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )


class ConvTranspose2d(Layer):
    """Transposed 2-D convolution (a.k.a. deconvolution).

    Weights are stored as ``(in_channels, out_channels, kh, kw)``.  The
    forward pass is the adjoint of a :class:`Conv2d` with the same geometry,
    so conv followed by conv-transpose restores spatial dimensions — the
    property VisualBackProp relies on to align feature maps across layers.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        weight_init: Union[str, initializers.Initializer] = "he_normal",
        bias: bool = True,
        rng: RngLike = None,
        name: str = "convT",
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ShapeError(
                f"ConvTranspose2d channels must be positive, got {in_channels}->{out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size, "kernel_size")
        self.stride = _pair(stride, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("stride must be positive")
        self.padding = _pair(padding, "padding")

        generator = derive_rng(rng, stream=name)
        init = initializers.get(weight_init)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((in_channels, out_channels, kh, kw), generator), f"{name}.weight"
        )
        self._params = [self.weight]
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_channels), f"{name}.bias")
            self._params.append(self.bias)
        self._x: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the output ``(C, H, W)`` shape."""
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(f"ConvTranspose2d expects {self.in_channels} channels, got {c}")
        out_h = conv_transpose_output_size(
            h, self.kernel_size[0], self.stride[0], self.padding[0]
        )
        out_w = conv_transpose_output_size(
            w, self.kernel_size[1], self.stride[1], self.padding[1]
        )
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "ConvTranspose2d input")
        if x.shape[1] != self.in_channels:
            raise ShapeError(
                f"ConvTranspose2d expects {self.in_channels} input channels, "
                f"got {x.shape[1]}"
            )
        self._x = x
        out = conv_transpose2d(x, self.weight.value, self.stride, self.padding)
        if self.bias is not None:
            out = out + self.bias.value[None, :, None, None]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("ConvTranspose2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "ConvTranspose2d grad_output")
        n = grad_output.shape[0]
        h, w = self._x.shape[2], self._x.shape[3]

        # dL/dx: a plain convolution of grad_output with the same kernel.
        cols = im2col(grad_output, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.value.reshape(self.in_channels, -1)  # (C_in, C_out*kh*kw)
        grad_x_rows = cols @ w_mat.T
        grad_x = grad_x_rows.reshape(n, h, w, self.in_channels).transpose(0, 3, 1, 2)

        # dL/dW: correlate input rows with grad_output receptive fields.
        x_rows = self._x.transpose(0, 2, 3, 1).reshape(n * h * w, self.in_channels)
        self.weight.grad += (x_rows.T @ cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        return grad_x

    def __repr__(self) -> str:
        return (
            f"ConvTranspose2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )
