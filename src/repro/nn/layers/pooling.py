"""Spatial pooling layers built on the im2col machinery."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer, as_batch
from repro.nn.layers.conv import IntPair, _pair, col2im, conv_output_size, im2col


class _Pool2d(Layer):
    """Shared plumbing for 2-D pooling layers."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size, "kernel_size")
        self.stride = _pair(stride if stride is not None else kernel_size, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("pooling stride must be positive")
        self.padding = _pair(padding, "padding")
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the pooled ``(C, H, W)`` shape."""
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (c, out_h, out_w)

    def _patches(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Return pooling windows as ``(N*out_h*out_w*C, kh*kw)`` rows."""
        n, c, h, w = x.shape
        _, out_h, out_w = self.output_shape((c, h, w))
        kh, kw = self.kernel_size
        # Treat channels as independent single-channel images so each row of
        # the unrolled matrix is exactly one pooling window.
        cols = im2col(
            x.reshape(n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return cols.reshape(n, c, out_h, out_w, kh * kw), (out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(_Pool2d):
    """Max pooling over spatial windows."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__(kernel_size, stride, padding)
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "MaxPool2d input")
        self._x_shape = x.shape
        patches, (out_h, out_w) = self._patches(x)
        self._argmax = patches.argmax(axis=-1)
        n, c = x.shape[:2]
        return patches.max(axis=-1).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None:
            raise ShapeError("MaxPool2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "MaxPool2d grad_output")
        n, c, h, w = self._x_shape
        out_h, out_w = grad_output.shape[2], grad_output.shape[3]
        kh, kw = self.kernel_size

        grad_patches = np.zeros((n, c, out_h, out_w, kh * kw), dtype=np.float64)
        np.put_along_axis(
            grad_patches, self._argmax[..., None], grad_output[..., None], axis=-1
        )
        cols = grad_patches.reshape(n * c * out_h * out_w, kh * kw)
        grad_x = col2im(
            cols.reshape(n * c * out_h * out_w, 1 * kh * kw),
            (n * c, 1, h, w),
            self.kernel_size,
            self.stride,
            self.padding,
        )
        return grad_x.reshape(n, c, h, w)


class AvgPool2d(_Pool2d):
    """Average pooling over spatial windows."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "AvgPool2d input")
        self._x_shape = x.shape
        patches, (out_h, out_w) = self._patches(x)
        n, c = x.shape[:2]
        return patches.mean(axis=-1).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise ShapeError("AvgPool2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "AvgPool2d grad_output")
        n, c, h, w = self._x_shape
        out_h, out_w = grad_output.shape[2], grad_output.shape[3]
        kh, kw = self.kernel_size

        window = float(kh * kw)
        grad_patches = np.broadcast_to(
            (grad_output / window)[..., None], (n, c, out_h, out_w, kh * kw)
        )
        cols = np.ascontiguousarray(grad_patches).reshape(
            n * c * out_h * out_w, kh * kw
        )
        grad_x = col2im(
            cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)
