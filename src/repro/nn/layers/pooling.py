"""Spatial pooling layers dispatching to the backend pooling kernels."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend import kernels
from repro.nn.backend.kernels import IntPair, _pair, conv_output_size
from repro.nn.layers.base import Layer, as_batch


class _Pool2d(Layer):
    """Shared plumbing for 2-D pooling layers."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size, "kernel_size")
        self.stride = _pair(stride if stride is not None else kernel_size, "stride")
        if self.stride[0] == 0 or self.stride[1] == 0:
            raise ShapeError("pooling stride must be positive")
        self.padding = _pair(padding, "padding")
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map an input ``(C, H, W)`` shape to the pooled ``(C, H, W)`` shape."""
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (c, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(_Pool2d):
    """Max pooling over spatial windows."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__(kernel_size, stride, padding)
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "MaxPool2d input", self.dtype)
        self._x_shape = x.shape
        out, self._argmax = kernels.maxpool2d_forward(
            x, self.kernel_size, self.stride, self.padding
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None:
            raise ShapeError("MaxPool2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "MaxPool2d grad_output", self.dtype)
        return kernels.maxpool2d_backward(
            grad_output,
            self._argmax,
            self._x_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )


class AvgPool2d(_Pool2d):
    """Average pooling over spatial windows."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 4, "AvgPool2d input", self.dtype)
        self._x_shape = x.shape
        return kernels.avgpool2d_forward(x, self.kernel_size, self.stride, self.padding)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise ShapeError("AvgPool2d.backward() called before forward()")
        grad_output = as_batch(grad_output, 4, "AvgPool2d grad_output", self.dtype)
        return kernels.avgpool2d_backward(
            grad_output, self._x_shape, self.kernel_size, self.stride, self.padding
        )
