"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import initializers
from repro.nn.backend import kernels
from repro.nn.layers.base import Layer, Parameter, as_batch
from repro.utils.seeding import RngLike, derive_rng


class Dense(Layer):
    """Affine map ``y = x @ W + b`` on ``(N, in_features)`` batches.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    weight_init:
        Initializer name or callable (see :mod:`repro.nn.initializers`).
        Defaults to He-normal, appropriate for the ReLU networks used
        throughout the paper.
    bias:
        Whether to include the additive bias term.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: Union[str, initializers.Initializer] = "he_normal",
        bias: bool = True,
        rng: RngLike = None,
        name: str = "dense",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"Dense features must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        generator = derive_rng(rng, stream=name)
        init = initializers.get(weight_init)
        self.weight = Parameter(init((in_features, out_features), generator), f"{name}.weight")
        self._params = [self.weight]
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_features), f"{name}.bias")
            self._params.append(self.bias)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, 2, "Dense input", self.dtype)
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expects {self.in_features} input features, got {x.shape[1]}"
            )
        self._x = x
        return kernels.dense_forward(
            x, self.weight.value, None if self.bias is None else self.bias.value
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("Dense.backward() called before forward()")
        grad_output = as_batch(grad_output, 2, "Dense grad_output", self.dtype)
        grad_x, grad_w, grad_b = kernels.dense_backward(
            grad_output, self._x, self.weight.value, with_bias=self.bias is not None
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features}, bias={self.bias is not None})"
