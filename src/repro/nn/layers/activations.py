"""Elementwise activation layers.

All activations work on batches of any dimensionality; they cache what the
backward pass needs and are parameter-free.  The math lives in
:mod:`repro.nn.backend.kernels`; each class just coerces to its policy
dtype and holds the cache between forward and backward.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend import kernels
from repro.nn.backend.policy import as_tensor
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_tensor(x, self.dtype)
        out, self._mask = kernels.relu_forward(x)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("ReLU.backward() called before forward()")
        return kernels.relu_backward(as_tensor(grad_output, self.dtype), self._mask)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative-side slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ShapeError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_tensor(x, self.dtype)
        out, self._mask = kernels.leaky_relu_forward(x, self.negative_slope)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("LeakyReLU.backward() called before forward()")
        return kernels.leaky_relu_backward(
            as_tensor(grad_output, self.dtype), self._mask, self.negative_slope
        )

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Layer):
    """Logistic sigmoid, numerically stable for large |x|.

    The paper's autoencoder uses a sigmoid output layer so reconstructions
    land in [0, 1] like the normalized input images.
    """

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = kernels.sigmoid_forward(as_tensor(x, self.dtype))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError("Sigmoid.backward() called before forward()")
        return kernels.sigmoid_backward(as_tensor(grad_output, self.dtype), self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = kernels.tanh_forward(as_tensor(x, self.dtype))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError("Tanh.backward() called before forward()")
        return kernels.tanh_backward(as_tensor(grad_output, self.dtype), self._out)
