"""Elementwise activation layers.

All activations work on batches of any dimensionality; they cache what the
backward pass needs and are parameter-free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("ReLU.backward() called before forward()")
        return np.where(self._mask, np.asarray(grad_output, dtype=np.float64), 0.0)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative-side slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ShapeError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("LeakyReLU.backward() called before forward()")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Layer):
    """Logistic sigmoid, numerically stable for large |x|.

    The paper's autoencoder uses a sigmoid output layer so reconstructions
    land in [0, 1] like the normalized input images.
    """

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Evaluate the two algebraically-equal branches on their stable side
        # to avoid overflow in exp().
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError("Sigmoid.backward() called before forward()")
        return np.asarray(grad_output, dtype=np.float64) * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(np.asarray(x, dtype=np.float64))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError("Tanh.backward() called before forward()")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._out**2)
