"""Layer and Parameter abstractions.

Every layer implements

* ``forward(x, training)`` — compute outputs, caching whatever the backward
  pass needs on ``self``;
* ``backward(grad_output)`` — given dL/d(output), accumulate dL/d(param) into
  each parameter's ``.grad`` and return dL/d(input);
* ``parameters()`` — the list of trainable :class:`Parameter` objects.

Layers are single-use per step: ``backward`` consumes the cache left by the
most recent ``forward``.  The :class:`repro.nn.Sequential` container chains
them and the :class:`repro.nn.Trainer` drives the loop.

Every layer carries a dtype from the precision policy
(:mod:`repro.nn.backend.policy`), defaulting to float64 for training;
:meth:`Layer.set_policy` recasts parameters and buffers, which is how the
float32 inference path is switched on after a model is fitted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor, default_policy, resolve_dtype


class Parameter:
    """A trainable array with an accumulated gradient.

    Attributes
    ----------
    value:
        The parameter tensor, updated in place by optimizers.
    grad:
        Gradient of the loss with respect to ``value``; same shape.
        Reset with :meth:`zero_grad` between steps.
    name:
        Human-readable identifier used in checkpoints and error messages.
    """

    def __init__(self, value: np.ndarray, name: str = "param", dtype: Any = None) -> None:
        self.value = as_tensor(value, dtype)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def astype(self, dtype: Any) -> "Parameter":
        """Recast value and gradient to a policy dtype, in place."""
        target = resolve_dtype(dtype)
        if self.value.dtype != target:
            self.value = self.value.astype(target)
            self.grad = self.grad.astype(target)
        return self

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying value array."""
        return self.value.dtype

    @property
    def shape(self) -> tuple:
        """Shape of the underlying value array."""
        return self.value.shape

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and
    register their :class:`Parameter` objects in ``self._params``.
    """

    def __init__(self) -> None:
        self._params: List[Parameter] = []
        self._dtype: np.dtype = default_policy().dtype

    @property
    def dtype(self) -> np.dtype:
        """The dtype this layer computes in (float64 unless re-policied)."""
        return self._dtype

    def set_policy(self, dtype: Any) -> "Layer":
        """Switch the layer to a policy dtype, recasting params and buffers.

        Containers override this to propagate to their children; layers with
        non-parameter state override :meth:`_cast_buffers`.
        """
        self._dtype = resolve_dtype(dtype)
        for p in self._params:
            p.astype(self._dtype)
        self._cast_buffers(self._dtype)
        return self

    def _cast_buffers(self, dtype: np.dtype) -> None:
        """Hook for layers with persistent non-parameter arrays."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``.

        ``training`` toggles train-time behaviour (dropout masks, batch-norm
        batch statistics); inference-only layers ignore it.
        """
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` (dL/d output) through the layer.

        Accumulates parameter gradients into each ``Parameter.grad`` and
        returns dL/d input.  Must be called after :meth:`forward`.
        """
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this layer."""
        return list(self._params)

    def zero_grad(self) -> None:
        """Reset gradients on all parameters of this layer."""
        for p in self._params:
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter values plus persistent buffers, keyed by name."""
        return {p.name: p.value.copy() for p in self._params}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (shape-checked).

        Arrays are restored in the owning parameter's dtype, so a model
        already switched to float32 inference stays float32 after loading a
        float64 checkpoint (and vice versa).
        """
        for p in self._params:
            if p.name not in state:
                raise ShapeError(f"missing parameter {p.name!r} in state dict")
            value = np.asarray(state[p.name], dtype=p.value.dtype)
            if value.shape != p.value.shape:
                raise ShapeError(
                    f"parameter {p.name!r} has shape {p.value.shape}, "
                    f"state dict provides {value.shape}"
                )
            p.value[...] = value

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def as_batch(x: np.ndarray, ndim: int, name: str, dtype: Any = None) -> np.ndarray:
    """Coerce ``x`` to a policy dtype (default float64) and validate rank."""
    x = as_tensor(x, dtype)
    if x.ndim != ndim:
        raise ShapeError(f"{name} expects a {ndim}-d batch, got shape {x.shape}")
    return x


def _cache_guard(cache: Optional[np.ndarray], layer: Layer) -> np.ndarray:
    """Raise a clear error when backward() is called before forward()."""
    if cache is None:
        raise ShapeError(
            f"{type(layer).__name__}.backward() called before forward(); "
            "each backward pass must follow a forward pass"
        )
    return cache
