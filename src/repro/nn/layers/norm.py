"""Batch normalization for dense and convolutional activations."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Parameter, as_batch


class _BatchNorm(Layer):
    """Shared implementation normalizing over a set of axes.

    Subclasses fix the expected input rank and the reduction axes; the core
    normalizes with batch statistics at train time while tracking running
    moments for inference.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str = "bn",
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ShapeError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.num_features = num_features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features), f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), f"{name}.beta")
        self._params = [self.gamma, self.beta]
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._name = name
        self._cache: Optional[tuple] = None

    # -- subclass hooks ----------------------------------------------------
    _ndim: int = 2
    _axes: tuple = (0,)

    def _shape_params(self, arr: np.ndarray) -> np.ndarray:
        """Reshape per-feature vectors for broadcasting against inputs."""
        if self._ndim == 2:
            return arr
        return arr[None, :, None, None]

    def _cast_buffers(self, dtype: np.dtype) -> None:
        self.running_mean = self.running_mean.astype(dtype, copy=False)
        self.running_var = self.running_var.astype(dtype, copy=False)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_batch(x, self._ndim, f"{type(self).__name__} input", self.dtype)
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"{type(self).__name__} expects {self.num_features} features, "
                f"got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._shape_params(mean)) * self._shape_params(inv_std)
        self._cache = (x_hat, inv_std, training)
        return self._shape_params(self.gamma.value) * x_hat + self._shape_params(
            self.beta.value
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"{type(self).__name__}.backward() called before forward()")
        x_hat, inv_std, training = self._cache
        grad_output = as_batch(grad_output, self._ndim, "grad_output", self.dtype)

        self.gamma.grad += (grad_output * x_hat).sum(axis=self._axes)
        self.beta.grad += grad_output.sum(axis=self._axes)

        g = grad_output * self._shape_params(self.gamma.value)
        if not training:
            # Inference normalizes with constants, so the Jacobian is diagonal.
            return g * self._shape_params(inv_std)

        # Train-time statistics depend on the batch; use the standard
        # batch-norm backward formula over the reduction axes.
        m = float(np.prod([grad_output.shape[a] for a in self._axes]))
        sum_g = g.sum(axis=self._axes)
        sum_gx = (g * x_hat).sum(axis=self._axes)
        return (
            self._shape_params(inv_std)
            / m
            * (m * g - self._shape_params(sum_g) - x_hat * self._shape_params(sum_gx))
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state[f"{self._name}.running_mean"] = self.running_mean.copy()
        state[f"{self._name}.running_var"] = self.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        for attr in ("running_mean", "running_var"):
            key = f"{self._name}.{attr}"
            if key in state:
                value = np.asarray(state[key], dtype=self.dtype)
                if value.shape != (self.num_features,):
                    raise ShapeError(
                        f"{key} has shape {value.shape}, expected ({self.num_features},)"
                    )
                setattr(self, attr, value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features}, momentum={self.momentum})"


class BatchNorm1d(_BatchNorm):
    """Batch normalization for ``(N, D)`` dense activations."""

    _ndim = 2
    _axes = (0,)


class BatchNorm2d(_BatchNorm):
    """Batch normalization for ``(N, C, H, W)`` convolutional activations."""

    _ndim = 4
    _axes = (0, 2, 3)
