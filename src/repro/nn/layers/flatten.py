"""Flatten layer bridging convolutional and dense stages of a network."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, prod(...))`` and back in backward."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_tensor(x, self.dtype)
        if x.ndim < 2:
            raise ShapeError(f"Flatten expects a batch with ndim >= 2, got {x.shape}")
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError("Flatten.backward() called before forward()")
        return as_tensor(grad_output, self.dtype).reshape(self._shape)
