"""Sequential model container with (de)serialization.

``Sequential`` chains layers, exposes the concatenated parameter list, and
— crucially for VisualBackProp — can run a forward pass that records every
intermediate activation (:meth:`Sequential.forward_with_activations`).
Models round-trip through numpy ``.npz`` checkpoints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import SerializationError, ShapeError
from repro.nn.backend.policy import as_tensor, resolve_dtype
from repro.nn.layers.base import Layer, Parameter


class Sequential(Layer):
    """A linear chain of layers executed in order.

    Supports indexing/iteration over the contained layers, which the
    saliency algorithms use to locate convolution/activation pairs.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        super().__init__()
        if not layers:
            raise ShapeError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)
        self._last_input: np.ndarray = None

    def set_policy(self, dtype) -> "Sequential":
        """Switch the whole chain (and this container) to a policy dtype."""
        self._dtype = resolve_dtype(dtype)
        for layer in self.layers:
            layer.set_policy(self._dtype)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = as_tensor(x, self.dtype)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def forward_with_activations(
        self, x: np.ndarray, training: bool = False
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass returning the output and every layer's activation.

        ``activations[i]`` is the output of ``self.layers[i]``; VisualBackProp
        reads the post-ReLU feature maps from this list.
        """
        activations: List[np.ndarray] = []
        out = as_tensor(x, self.dtype)
        for layer in self.layers:
            out = layer.forward(out, training=training)
            activations.append(out)
        return out, activations

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = as_tensor(grad_output, self.dtype)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (dropout off, batch-norm running stats)."""
        return self.forward(x, training=False)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Merged state of every layer, with indexed keys to avoid clashes."""
        state: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.state_dict().items():
                state[f"{i}:{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            prefix = f"{i}:"
            layer_state = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            layer.load_state_dict(layer_state)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


def save_model(model: Sequential, path: Union[str, Path]) -> None:
    """Serialize a model's parameters and buffers to an ``.npz`` checkpoint.

    Only state (not architecture) is saved; loading requires constructing an
    identically-shaped model first, which keeps checkpoints forward
    compatible with code changes that don't alter shapes.  The write is
    atomic (temp file + fsync + rename), so a crash mid-save leaves any
    previous checkpoint at ``path`` intact.
    """
    from repro.utils.fileio import atomic_write, npz_path

    path = npz_path(path)
    try:
        with atomic_write(path) as handle:
            np.savez(handle, **model.state_dict())
    except OSError as exc:
        raise SerializationError(f"failed to save model to {path}: {exc}") from exc


def load_model(model: Sequential, path: Union[str, Path]) -> Sequential:
    """Load an ``.npz`` checkpoint into an architecture-matching model."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as data:
            state = {key: data[key] for key in data.files}
    except (OSError, ValueError) as exc:
        raise SerializationError(f"failed to read checkpoint {path}: {exc}") from exc
    model.load_state_dict(state)
    return model
