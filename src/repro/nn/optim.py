"""Optimizers and learning-rate schedules.

Optimizers update :class:`repro.nn.Parameter` values in place from their
accumulated ``.grad``; the trainer owns the zero-grad / forward / backward /
step cycle.  Schedules map a step counter to a learning-rate multiplier so
the same optimizer instance can decay its rate over training.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Parameter


class LRSchedule:
    """Base learning-rate schedule: returns the LR for a given step."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` optimizer steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.5) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class ExponentialDecayLR(LRSchedule):
    """Continuous exponential decay, ``lr * decay**step``."""

    def __init__(self, lr: float, decay: float = 0.999) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if not 0 < decay <= 1:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.lr = float(lr)
        self.decay = float(decay)

    def __call__(self, step: int) -> float:
        return self.lr * self.decay**step


def _as_schedule(lr) -> LRSchedule:
    if isinstance(lr, LRSchedule):
        return lr
    return ConstantLR(float(lr))


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: List[Parameter], lr) -> None:
        if not params:
            raise ConfigurationError("optimizer requires at least one parameter")
        self.params = list(params)
        self.schedule = _as_schedule(lr)
        self.step_count = 0

    @property
    def lr(self) -> float:
        """Learning rate for the *next* step."""
        return self.schedule(self.step_count)

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        lr = self.schedule(self.step_count)
        self._update(lr)
        self.step_count += 1

    def _update(self, lr: float) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def _stores(self) -> Dict[str, Dict[int, np.ndarray]]:
        """Named per-parameter moment stores (subclass hook)."""
        return {}

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable optimizer state: step counter + moment arrays.

        Together with the model's ``state_dict`` this makes training
        exactly resumable (see :meth:`repro.nn.Trainer.save_checkpoint`).
        Keys are positional (parameter order), so the restored optimizer
        must be built over the same parameter list.
        """
        state: Dict[str, np.ndarray] = {"step_count": np.array(self.step_count)}
        for name, store in self._stores().items():
            for key, value in _state_arrays(store, self.params).items():
                state[f"{name}:{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state written by :meth:`state_dict` (shape-checked)."""
        if "step_count" in state:
            self.step_count = int(state["step_count"])
        for name, store in self._stores().items():
            prefix = f"{name}:"
            subset = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            _load_state_arrays(store, self.params, subset)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: List[Parameter],
        lr=0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, lr: float) -> None:
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v = self._velocity.setdefault(id(p), np.zeros_like(p.value))
                v *= self.momentum
                v -= lr * grad
                p.value += v
            else:
                p.value -= lr * grad

    def _stores(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Parameter],
        lr=0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, lr: float) -> None:
        t = self.step_count + 1
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m = self._m.setdefault(id(p), np.zeros_like(p.value))
            v = self._v.setdefault(id(p), np.zeros_like(p.value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.value -= lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def _stores(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"m": self._m, "v": self._v}


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    def __init__(
        self,
        params: List[Parameter],
        lr=0.001,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self._sq: Dict[int, np.ndarray] = {}

    def _update(self, lr: float) -> None:
        for p in self.params:
            sq = self._sq.setdefault(id(p), np.zeros_like(p.value))
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad**2
            p.value -= lr * p.grad / (np.sqrt(sq) + self.eps)

    def _stores(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"sq": self._sq}


def _state_arrays(store: Dict[int, np.ndarray], params: List[Parameter]) -> Dict[str, np.ndarray]:
    """Serialize a per-parameter array store keyed by parameter order."""
    out: Dict[str, np.ndarray] = {}
    for index, p in enumerate(params):
        if id(p) in store:
            out[str(index)] = store[id(p)].copy()
    return out


def _load_state_arrays(
    store: Dict[int, np.ndarray], params: List[Parameter], state: Dict[str, np.ndarray]
) -> None:
    store.clear()
    for index, p in enumerate(params):
        key = str(index)
        if key in state:
            # Restore in the owning parameter's dtype: optimizer moments must
            # match the params they update, whatever policy the model runs.
            value = np.asarray(state[key], dtype=p.value.dtype)
            if value.shape != p.value.shape:
                raise ConfigurationError(
                    f"optimizer state for parameter {index} has shape "
                    f"{value.shape}, parameter has {p.value.shape}"
                )
            store[id(p)] = value.copy()
