"""Datasets, loaders, and splits for mini-batch training.

The paper trains with an 80/20 train/test split and mini-batches of 32
(§III-A); :func:`train_test_split` and :class:`DataLoader` provide exactly
those mechanics, deterministically under a seed.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.utils.seeding import RngLike, derive_rng


class ArrayDataset:
    """An in-memory dataset of aligned ``(inputs, targets)`` arrays.

    ``targets`` may be omitted for self-supervised tasks — the paper's
    autoencoder reconstructs its own input, so ``targets`` defaults to
    ``inputs``.
    """

    def __init__(self, inputs: np.ndarray, targets: Optional[np.ndarray] = None) -> None:
        self.inputs = as_tensor(inputs)
        if self.inputs.ndim < 1 or self.inputs.shape[0] == 0:
            raise ShapeError(f"inputs must be a non-empty batch, got {self.inputs.shape}")
        if targets is None:
            self.targets = self.inputs
        else:
            self.targets = as_tensor(targets)
            if self.targets.shape[0] != self.inputs.shape[0]:
                raise ShapeError(
                    f"targets ({self.targets.shape[0]}) and inputs "
                    f"({self.inputs.shape[0]}) must have the same length"
                )

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset restricted to the given indices."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])


class DataLoader:
    """Deterministic mini-batch iterator over an :class:`ArrayDataset`.

    Each full pass (epoch) reshuffles with a stream derived from the root
    seed and an epoch counter, so the batch sequence is reproducible yet
    differs between epochs.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        root = derive_rng(rng, stream="loader")
        # One draw of seed material at construction keeps every epoch's
        # shuffle deterministic while remaining independent across epochs.
        self._seed_material = int(root.integers(0, 2**62))
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            epoch_rng = np.random.default_rng(self._seed_material + self._epoch)
            order = epoch_rng.permutation(n)
        else:
            order = np.arange(n)
        self._epoch += 1
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset[idx]


def train_test_split(
    inputs: np.ndarray,
    targets: Optional[np.ndarray] = None,
    test_fraction: float = 0.2,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split arrays into train/test datasets.

    Defaults to the paper's 80/20 split.  Guarantees at least one sample on
    each side (raising for datasets too small to split).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    dataset = ArrayDataset(inputs, targets)
    n = len(dataset)
    n_test = int(round(n * test_fraction))
    n_test = min(max(n_test, 1), n - 1)
    if n < 2:
        raise ShapeError(f"need at least 2 samples to split, got {n}")
    order = derive_rng(rng, stream="split").permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
