"""Weight initialization schemes.

Each initializer is a function ``(shape, rng) -> np.ndarray``.  Layers take
an initializer by name (string) or as a callable, so experiments can swap
schemes without touching layer code.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Sequence[int]) -> tuple:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes.

    Dense weights are ``(in, out)``; conv weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initializer (used for biases)."""
    del rng
    return np.zeros(shape)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-ones initializer (used for scale parameters)."""
    del rng
    return np.ones(shape)


def uniform(shape: Sequence[int], rng: np.random.Generator, scale: float = 0.05) -> np.ndarray:
    """Uniform initializer on ``[-scale, scale]``."""
    return rng.uniform(-scale, scale, size=shape)


def normal(shape: Sequence[int], rng: np.random.Generator, std: float = 0.05) -> np.ndarray:
    """Gaussian initializer with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — suited to sigmoid/tanh layers."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal — suited to ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


_REGISTRY: Dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "uniform": uniform,
    "normal": normal,
    "xavier_uniform": xavier_uniform,
    "he_normal": he_normal,
}


def get(name_or_fn: Union[str, Initializer]) -> Initializer:
    """Resolve an initializer by name, passing callables through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown initializer {name_or_fn!r}; known initializers: {known}"
        ) from None
