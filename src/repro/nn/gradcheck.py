"""Numerical gradient checking.

Central-difference verification of analytic gradients — the test suite runs
every layer and loss in this library through these checks, which is what
makes a from-scratch backprop implementation trustworthy.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import FLOAT64, as_tensor
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss


def _require_float64(layer: Layer) -> None:
    """Refuse to gradcheck a layer running a reduced-precision policy.

    Central differences with ``eps ~ 1e-6`` need ~1e-10 of headroom that
    float32 simply does not have; checking a float32 layer would "fail" for
    numerical reasons unrelated to the analytic gradient.  Callers must
    gradcheck at float64 and only then switch the model's policy.
    """
    dtypes = {layer.dtype} | {p.dtype for p in layer.parameters()}
    if dtypes != {FLOAT64}:
        found = ", ".join(sorted(d.name for d in dtypes - {FLOAT64}))
        raise ConfigurationError(
            f"gradient checking requires the float64 policy, but "
            f"{type(layer).__name__} is pinned to {found}; run set_policy"
            f"('{FLOAT64.name}') before gradcheck"
        )


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``.

    Always computed in float64 regardless of the caller's policy.
    """
    x = as_tensor(x, FLOAT64)
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = grad.ravel()
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = fn(x)
        flat_x[i] = original - eps
        minus = fn(x)
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2.0 * eps)
    return grad


def relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max elementwise relative error with an absolute floor."""
    analytic = as_tensor(analytic, FLOAT64)
    numeric = as_tensor(numeric, FLOAT64)
    if analytic.shape != numeric.shape:
        raise ShapeError(
            f"gradient shapes disagree: {analytic.shape} vs {numeric.shape}"
        )
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    eps: float = 1e-6,
    tolerance: float = 1e-5,
    rng: Optional[np.random.Generator] = None,
    training: bool = True,
) -> float:
    """Verify a layer's input and parameter gradients numerically.

    Projects the layer output against a fixed random cotangent ``v`` so the
    scalar ``sum(v * layer(x))`` has gradients computable both analytically
    (one backward pass) and numerically.  Returns the worst relative error
    across the input and every parameter, raising ``AssertionError`` above
    ``tolerance``.
    """
    _require_float64(layer)
    rng = rng or np.random.default_rng(0)
    x = as_tensor(x, FLOAT64)
    out = layer.forward(x, training=training)
    v = rng.normal(size=out.shape)

    layer.zero_grad()
    layer.forward(x, training=training)
    grad_in = layer.backward(v)

    def scalar_of_input(x_probe: np.ndarray) -> float:
        return float(np.sum(v * layer.forward(x_probe, training=training)))

    worst = relative_error(grad_in, numerical_gradient(scalar_of_input, x.copy(), eps))

    for param in layer.parameters():
        analytic = param.grad.copy()

        def scalar_of_param(p_probe: np.ndarray, _param=param) -> float:
            # p_probe aliases _param.value (numerical_gradient mutates in
            # place), so a fresh forward pass sees the perturbed value.
            return float(np.sum(v * layer.forward(x, training=training)))

        numeric = numerical_gradient(scalar_of_param, param.value, eps)
        worst = max(worst, relative_error(analytic, numeric))

    if worst > tolerance:
        raise AssertionError(
            f"{type(layer).__name__} gradient check failed: "
            f"relative error {worst:.3e} > tolerance {tolerance:.1e}"
        )
    return worst


def check_loss_gradients(
    loss: Loss,
    pred: np.ndarray,
    target: np.ndarray,
    eps: float = 1e-6,
    tolerance: float = 1e-5,
) -> float:
    """Verify a loss's dL/dpred against central differences."""
    pred = as_tensor(pred, FLOAT64)
    target = as_tensor(target, FLOAT64)
    loss.forward(pred, target)
    analytic = loss.backward()

    def scalar(p: np.ndarray) -> float:
        return float(loss.forward(p, target))

    numeric = numerical_gradient(scalar, pred.copy(), eps)
    worst = relative_error(analytic, numeric)
    if worst > tolerance:
        raise AssertionError(
            f"{type(loss).__name__} gradient check failed: "
            f"relative error {worst:.3e} > tolerance {tolerance:.1e}"
        )
    return worst
