"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The paper trains two networks (a PilotNet-style steering CNN and a small
dense autoencoder) with standard backpropagation.  Since the execution
environment provides no deep-learning framework, this subpackage implements
one: layers with explicit ``forward``/``backward`` passes, losses (including
a differentiable SSIM), optimizers, a ``Sequential`` container with
serialization, data loaders, and a mini-batch trainer.

Data layout conventions
-----------------------
* Convolutional layers operate on ``(N, C, H, W)`` float arrays.
* Dense layers operate on ``(N, D)`` float arrays.
* Precision follows the policy in :mod:`repro.nn.backend`: training (and
  the numerical gradient checks in the test suite) defaults to ``float64``;
  fitted models can be switched to a ``float32`` inference policy with
  ``Sequential.set_policy("float32")``.
"""

from repro.nn import initializers
from repro.nn.backend import DTypePolicy, as_tensor, default_policy, resolve_dtype
from repro.nn.data import ArrayDataset, DataLoader, train_test_split
from repro.nn.gradcheck import check_layer_gradients, check_loss_gradients, numerical_gradient
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool2d,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import HuberLoss, Loss, MAELoss, MSELoss, MSSSIMLoss, SSIMLoss
from repro.nn.model import Sequential, load_model, save_model
from repro.nn.optim import SGD, Adam, ConstantLR, ExponentialDecayLR, Optimizer, RMSProp, StepDecayLR
from repro.nn.summary import describe, layer_table, parameter_count
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory

__all__ = [
    "initializers",
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "check_layer_gradients",
    "check_loss_gradients",
    "numerical_gradient",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "ConvTranspose2d",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "MaxPool2d",
    "Parameter",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "HuberLoss",
    "Loss",
    "MAELoss",
    "MSELoss",
    "MSSSIMLoss",
    "SSIMLoss",
    "Sequential",
    "load_model",
    "save_model",
    "SGD",
    "Adam",
    "ConstantLR",
    "ExponentialDecayLR",
    "Optimizer",
    "RMSProp",
    "StepDecayLR",
    "describe",
    "layer_table",
    "parameter_count",
    "EarlyStopping",
    "Trainer",
    "TrainingHistory",
]
