"""Road-relative vehicle kinematics.

State is expressed relative to the road — lateral offset from the lane
center and heading error against the road tangent — which is exactly the
:class:`repro.datasets.TrackProfile` parameterization the renderers
consume, so simulation states render directly into camera frames.

The update is a small-angle kinematic bicycle model:

.. math::

    \\dot{\\psi} &= a_u\\,u - a_\\kappa\\,\\kappa \\\\
    \\dot{e} &= v\\,\\psi

where :math:`u` is the commanded steering angle, :math:`\\kappa` the local
road curvature, :math:`\\psi` the heading error and :math:`e` the lateral
offset.  The steering gain :math:`a_u` is chosen so that the curvature
feed-forward term of :class:`repro.datasets.RoadGeometry`'s control law
(``steering_gain * curvature``) exactly cancels the road's curvature drift
— i.e. the labels the datasets train on are the correct control inputs for
these dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.road_geometry import RoadGeometry, TrackProfile
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class VehicleState:
    """Road-relative vehicle state.

    Attributes
    ----------
    lane_offset:
        Lateral displacement from the lane center (m); positive = right.
    heading:
        Heading error against the road tangent (rad).
    """

    lane_offset: float
    heading: float

    def to_profile(self, curvature: float) -> TrackProfile:
        """The viewing situation this state produces on a road of the given
        curvature — directly renderable by the dataset renderers."""
        return TrackProfile(
            curvature=float(curvature),
            lane_offset=self.lane_offset,
            heading=self.heading,
        )


class VehicleDynamics:
    """Integrates :class:`VehicleState` under steering commands.

    Parameters
    ----------
    geometry:
        The road geometry whose control-law constants define the steering
        units (so the dataset's labels are correct inputs).
    speed:
        Forward speed coupling heading error into lateral drift.
    dt:
        Integration time step (s).
    """

    def __init__(self, geometry: RoadGeometry, speed: float = 1.0, dt: float = 0.1) -> None:
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.geometry = geometry
        self.speed = float(speed)
        self.dt = float(dt)
        # Curvature drives heading error at rate v*kappa; the steering gain
        # is set so the label's feed-forward term cancels it exactly.
        self._curvature_rate = self.speed
        self._steer_rate = self.speed / geometry.steering_gain

    def step(self, state: VehicleState, steering: float, curvature: float) -> VehicleState:
        """One integration step under a steering command on a road of the
        given curvature."""
        heading = state.heading + self.dt * (
            self._steer_rate * float(steering) - self._curvature_rate * float(curvature)
        )
        lane_offset = state.lane_offset + self.dt * self.speed * state.heading
        return VehicleState(lane_offset=float(lane_offset), heading=float(heading))

    def is_off_road(self, state: VehicleState) -> bool:
        """Whether the vehicle's center has left the drivable width."""
        return abs(state.lane_offset) > self.geometry.road_half_width
