"""Closed-loop driving simulation.

The paper's motivation is *safety*: "machine-learning driven safety-critical
autonomous systems ... must be able to detect situations where its trained
model is not able to make a trustworthy prediction."  This package closes
the loop that motivation implies: the steering CNN actually drives — its
predictions feed vehicle kinematics, which move the camera, which renders
the next frame — so the cost of an untrustworthy prediction becomes
measurable (lane deviation, off-road events), and the benefit of the
novelty detector becomes measurable too (hand-over to a fallback driver
when the alarm fires).

* :mod:`repro.simulation.vehicle` — road-relative kinematics.
* :mod:`repro.simulation.policies` — steering policies: the trained model,
  the geometric oracle ("a human driver"), and degenerate controls.
* :mod:`repro.simulation.simulator` — the render → steer → move loop,
  trajectory recording, and the detector-guarded safe-driving loop.
"""

from repro.simulation.policies import (
    ConstantPolicy,
    DelayedPolicy,
    ModelPolicy,
    OraclePolicy,
    SteeringPolicy,
)
from repro.simulation.simulator import (
    ClosedLoopSimulator,
    SafeDrivingLoop,
    TrajectoryResult,
)
from repro.simulation.vehicle import VehicleDynamics, VehicleState

__all__ = [
    "ConstantPolicy",
    "DelayedPolicy",
    "ModelPolicy",
    "OraclePolicy",
    "SteeringPolicy",
    "ClosedLoopSimulator",
    "SafeDrivingLoop",
    "TrajectoryResult",
    "VehicleDynamics",
    "VehicleState",
]
