"""Steering policies for the closed-loop simulator."""

from __future__ import annotations

import numpy as np

from repro.datasets.road_geometry import RoadGeometry, TrackProfile
from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor


class SteeringPolicy:
    """Maps a camera frame (and, for oracles, the true situation) to a
    steering command."""

    #: Human-readable name used in trajectory reports.
    name: str = "policy"

    def steer(self, frame: np.ndarray, profile: TrackProfile) -> float:
        """Steering command for the current frame.

        ``profile`` is the ground-truth viewing situation; vision policies
        must ignore it (it is passed so oracle/fallback policies can be
        plugged into the same loop).
        """
        raise NotImplementedError


class ModelPolicy(SteeringPolicy):
    """The trained steering CNN driving from pixels alone."""

    name = "model"

    def __init__(self, model) -> None:
        self.model = model

    def steer(self, frame: np.ndarray, profile: TrackProfile) -> float:
        frame = as_tensor(frame)
        if frame.ndim != 2:
            raise ShapeError(f"ModelPolicy expects an (H, W) frame, got {frame.shape}")
        return float(self.model.predict_angles(frame[None])[0])


class OraclePolicy(SteeringPolicy):
    """The geometric lane-keeping law with ground-truth state.

    Stands in for "hand control back to a human driver": it always issues
    the correct command for the *actual* road, regardless of what domain
    the camera sees.
    """

    name = "oracle"

    def __init__(self, geometry: RoadGeometry) -> None:
        self.geometry = geometry

    def steer(self, frame: np.ndarray, profile: TrackProfile) -> float:
        return self.geometry.steering_angle(profile)


class ConstantPolicy(SteeringPolicy):
    """A fixed steering command — the degenerate control baseline."""

    name = "constant"

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def steer(self, frame: np.ndarray, profile: TrackProfile) -> float:
        return self.value


class DelayedPolicy(SteeringPolicy):
    """Wraps a policy with actuation latency.

    Real steering chains (perception → planning → actuation) respond a few
    frames late; this wrapper delays the wrapped policy's commands by
    ``delay`` steps (emitting a configurable initial command meanwhile), so
    closed-loop experiments can measure how much latency control tolerates.
    """

    def __init__(self, inner: SteeringPolicy, delay: int, initial: float = 0.0) -> None:
        from collections import deque

        from repro.exceptions import ConfigurationError

        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.inner = inner
        self.delay = int(delay)
        self.name = f"{inner.name}+delay{delay}"
        self._queue = deque([float(initial)] * self.delay)

    def steer(self, frame: np.ndarray, profile: TrackProfile) -> float:
        self._queue.append(self.inner.steer(frame, profile))
        return self._queue.popleft()
