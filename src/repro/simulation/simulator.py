"""The closed loop: render → steer → move → render.

:class:`ClosedLoopSimulator` drives a :class:`SteeringPolicy` over a
procedural road: each step renders the camera frame for the current
road-relative state, asks the policy for a steering command, and integrates
the vehicle kinematics.  Road curvature evolves as in
:meth:`repro.datasets.RoadGeometry.simulate_drive`, and the scene
decoration stays fixed per run (one stretch of world).

:class:`SafeDrivingLoop` composes the simulator with a fitted
:class:`repro.novelty.StreamMonitor`: the primary (vision) policy drives
until the novelty alarm fires, after which a fallback policy takes over —
the intervention story the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.base import DrivingDataset
from repro.exceptions import ConfigurationError
from repro.simulation.policies import SteeringPolicy
from repro.simulation.vehicle import VehicleDynamics, VehicleState
from repro.utils.seeding import RngLike, derive_rng


@dataclass
class TrajectoryResult:
    """Recorded closed-loop run.

    All per-step arrays have one entry per simulated frame.
    """

    policy_name: str
    lane_offsets: np.ndarray
    headings: np.ndarray
    steering: np.ndarray
    curvatures: np.ndarray
    off_road: np.ndarray
    #: Step at which control switched to the fallback policy (None = never).
    handover_step: Optional[int] = None
    #: Steps at which the novelty alarm was active (safe loop only).
    alarm_steps: List[int] = field(default_factory=list)

    @property
    def steps(self) -> int:
        """Number of simulated steps."""
        return int(self.lane_offsets.size)

    @property
    def mean_abs_offset(self) -> float:
        """Mean absolute lane deviation over the run."""
        return float(np.abs(self.lane_offsets).mean())

    @property
    def max_abs_offset(self) -> float:
        """Worst lane deviation over the run."""
        return float(np.abs(self.lane_offsets).max())

    @property
    def off_road_fraction(self) -> float:
        """Fraction of steps spent off the drivable width."""
        return float(self.off_road.mean())

    def summary_row(self) -> str:
        """One formatted row for experiment tables."""
        handover = "-" if self.handover_step is None else str(self.handover_step)
        return (
            f"{self.policy_name:<22} "
            f"mean|e|={self.mean_abs_offset:6.3f}  "
            f"max|e|={self.max_abs_offset:6.3f}  "
            f"off-road={self.off_road_fraction:6.1%}  "
            f"handover@{handover}"
        )


class ClosedLoopSimulator:
    """Simulates a policy driving on a procedurally rendered road.

    Parameters
    ----------
    dataset:
        The renderer providing frames (and the road geometry/dynamics
        constants).  Switch datasets mid-run via
        :meth:`run`'s ``switch_to``/``switch_at`` to model entering an
        unseen environment.
    speed, dt:
        Vehicle dynamics constants (see
        :class:`repro.simulation.VehicleDynamics`).
    """

    def __init__(self, dataset: DrivingDataset, speed: float = 2.0, dt: float = 0.1) -> None:
        self.dataset = dataset
        self.dynamics = VehicleDynamics(dataset.geometry, speed=speed, dt=dt)

    def run(
        self,
        policy: SteeringPolicy,
        steps: int,
        rng: RngLike = None,
        monitor=None,
        fallback: Optional[SteeringPolicy] = None,
        switch_to: Optional[DrivingDataset] = None,
        switch_at: Optional[int] = None,
        disturb=None,
        disturb_at: Optional[int] = None,
        initial_state: Optional[VehicleState] = None,
    ) -> TrajectoryResult:
        """Run the closed loop for ``steps`` frames.

        Parameters
        ----------
        monitor, fallback:
            When both are given, frames stream through the monitor and
            control hands over to ``fallback`` permanently once the alarm
            fires (the safe-driving configuration).
        switch_to, switch_at:
            Swap the *rendering* dataset at step ``switch_at`` — the camera
            suddenly sees a different world while the road geometry keeps
            evolving (modelling entry into an unseen environment).
        disturb, disturb_at:
            From step ``disturb_at`` onward, pass each rendered frame
            through ``disturb(frame)`` before the monitor and policy see it
            — modelling sensor corruption (a blocked lens, persistent
            noise).  The vehicle still moves on the true road; only the
            *camera* is corrupted.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        if (switch_to is None) != (switch_at is None):
            raise ConfigurationError("switch_to and switch_at must be given together")
        if switch_at is not None and not 0 <= switch_at < steps:
            raise ConfigurationError(f"switch_at must be in [0, {steps}), got {switch_at}")
        if (disturb is None) != (disturb_at is None):
            raise ConfigurationError("disturb and disturb_at must be given together")
        if disturb_at is not None and not 0 <= disturb_at < steps:
            raise ConfigurationError(f"disturb_at must be in [0, {steps}), got {disturb_at}")
        if (monitor is None) != (fallback is None):
            raise ConfigurationError("monitor and fallback must be given together")
        if monitor is not None:
            monitor.reset()

        root = derive_rng(rng, stream="closed-loop")
        scene_seed = int(root.integers(0, 2**62))
        switch_scene_seed = int(root.integers(0, 2**62))
        # Road curvature evolves like a drive; the vehicle state is ours.
        geometry = self.dataset.geometry
        curvature_profiles = geometry.simulate_drive(steps, rng=root, dt=self.dynamics.dt)
        curvatures = np.array([p.curvature for p in curvature_profiles])

        state = initial_state or VehicleState(lane_offset=0.0, heading=0.0)
        active_policy = policy
        handover_step: Optional[int] = None
        alarm_steps: List[int] = []

        # When the monitor's detector and the vision policy share one CNN,
        # the fused monitor path returns the steering angle alongside the
        # verdict — one forward per frame instead of two (the stage
        # runtime's cnn_forward feeds both the steering head and the
        # saliency cascade).
        fused_ok = (
            monitor is not None
            and hasattr(monitor, "observe_with_steering")
            and hasattr(policy, "model")
            and getattr(monitor.detector, "shares_model_with", lambda m: False)(
                policy.model
            )
        )

        offsets = np.empty(steps)
        headings = np.empty(steps)
        commands = np.empty(steps)
        off_road = np.empty(steps, dtype=bool)

        for t in range(steps):
            renderer = self.dataset
            seed = scene_seed
            if switch_at is not None and t >= switch_at:
                renderer = switch_to
                seed = switch_scene_seed
            profile = state.to_profile(curvatures[t])
            sample = renderer._render_scene(profile, np.random.default_rng(seed))
            frame = sample.frame
            if disturb_at is not None and t >= disturb_at:
                frame = disturb(frame)

            fused_angle: Optional[float] = None
            if monitor is not None:
                if fused_ok and active_policy is policy:
                    verdict, fused_angle = monitor.observe_with_steering(frame)
                else:
                    verdict = monitor.observe(frame)
                if verdict.alarm:
                    alarm_steps.append(t)
                    if handover_step is None:
                        handover_step = t
                        active_policy = fallback

            if fused_angle is not None and active_policy is policy:
                command = float(fused_angle)
            else:
                command = active_policy.steer(frame, profile)
            offsets[t] = state.lane_offset
            headings[t] = state.heading
            commands[t] = command
            off_road[t] = self.dynamics.is_off_road(state)
            state = self.dynamics.step(state, command, curvatures[t])

        return TrajectoryResult(
            policy_name=active_policy.name if handover_step is None else f"{policy.name}+{fallback.name}",
            lane_offsets=offsets,
            headings=headings,
            steering=commands,
            curvatures=curvatures,
            off_road=off_road,
            handover_step=handover_step,
            alarm_steps=alarm_steps,
        )


class SafeDrivingLoop:
    """Convenience wrapper: vision policy guarded by a novelty monitor.

    Equivalent to calling :meth:`ClosedLoopSimulator.run` with ``monitor``
    and ``fallback``, packaged for readability at call sites.
    """

    def __init__(
        self,
        simulator: ClosedLoopSimulator,
        policy: SteeringPolicy,
        monitor,
        fallback: SteeringPolicy,
    ) -> None:
        self.simulator = simulator
        self.policy = policy
        self.monitor = monitor
        self.fallback = fallback

    def run(self, steps: int, rng: RngLike = None, **kwargs) -> TrajectoryResult:
        """Run the guarded loop (kwargs forwarded to the simulator)."""
        return self.simulator.run(
            self.policy,
            steps,
            rng=rng,
            monitor=self.monitor,
            fallback=self.fallback,
            **kwargs,
        )
