"""Network architectures used by the paper's framework.

* :class:`PilotNet` — the steering-angle prediction CNN (modeled on
  Bojarski et al.'s end-to-end driving network, as the paper does).
* :class:`DenseAutoencoder` — the one-class classifier: a feedforward
  autoencoder with 64-16-64 hidden units, ReLU activations, and a sigmoid
  output (paper §III-A).
* :class:`ConvAutoencoder` — a convolutional extension beyond the paper,
  for the ablation benchmarks.
"""

from repro.models.autoencoder import ConvAutoencoder, DenseAutoencoder
from repro.models.pilotnet import PilotNet, PilotNetConfig

__all__ = ["PilotNet", "PilotNetConfig", "DenseAutoencoder", "ConvAutoencoder"]
