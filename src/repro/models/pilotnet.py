"""PilotNet-style steering-angle CNN.

The paper's prediction model "is modeled off of the steering angle
prediction convolutional network presented in [Bojarski et al.]": a stack of
strided convolutions followed by fully-connected layers regressing a single
steering angle.  The reference network uses five convolutions
(24/36/48 @ 5x5 stride 2, then 64/64 @ 3x3) and 100-50-10-1 dense heads on
66x200 inputs.

This implementation keeps that shape but makes the stack configurable so the
same architecture runs at the reduced geometries of the CI/bench presets
(where five stride-2 convolutions would collapse the feature map below one
pixel).  :meth:`PilotNetConfig.for_image` picks a sensible stack for a given
input size; :meth:`PilotNetConfig.paper` is the full reference stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.backend.policy import as_tensor
from repro.nn.layers import BatchNorm2d, Conv2d, Dense, Flatten, Layer, LeakyReLU, ReLU
from repro.nn.layers.conv import conv_output_size
from repro.nn.model import Sequential
from repro.utils.seeding import RngLike, derive_rng


@dataclass(frozen=True)
class ConvSpec:
    """One convolution stage: output channels, square kernel, stride."""

    out_channels: int
    kernel: int
    stride: int

    def __post_init__(self) -> None:
        if self.out_channels < 1 or self.kernel < 1 or self.stride < 1:
            raise ConfigurationError(f"invalid conv spec: {self}")


@dataclass(frozen=True)
class PilotNetConfig:
    """Architecture description for :class:`PilotNet`.

    Attributes
    ----------
    input_shape:
        ``(H, W)`` of the single-channel input frames.
    conv_specs:
        The convolutional stack, applied with ReLU after each stage.
    dense_units:
        Fully-connected head widths; a final ``Dense(..., 1)`` regression
        output is always appended.
    """

    input_shape: Tuple[int, int]
    conv_specs: Tuple[ConvSpec, ...] = field(
        default_factory=lambda: (
            ConvSpec(24, 5, 2),
            ConvSpec(36, 5, 2),
            ConvSpec(48, 5, 2),
            ConvSpec(64, 3, 1),
            ConvSpec(64, 3, 1),
        )
    )
    dense_units: Tuple[int, ...] = (100, 50, 10)
    #: Insert BatchNorm2d between each convolution and its ReLU.  Not part
    #: of the reference architecture; exposed for normalization ablations.
    batch_norm: bool = False

    @classmethod
    def paper(cls, input_shape: Tuple[int, int] = (60, 160)) -> "PilotNetConfig":
        """The Bojarski et al. reference stack at the paper's 60x160 frames."""
        return cls(input_shape=tuple(input_shape))

    @classmethod
    def for_image(cls, input_shape: Tuple[int, int]) -> "PilotNetConfig":
        """A stack adapted to the input size.

        Greedily keeps the reference stages whose kernels still fit the
        shrinking feature map, reducing stride when a stride-2 stage would
        shrink a dimension below 3 pixels.  The paper-scale input reproduces
        the full reference stack; small CI inputs get a 2-3 stage stack with
        proportionally narrower dense heads.
        """
        h, w = int(input_shape[0]), int(input_shape[1])
        reference = (
            ConvSpec(24, 5, 2),
            ConvSpec(36, 5, 2),
            ConvSpec(48, 5, 2),
            ConvSpec(64, 3, 1),
            ConvSpec(64, 3, 1),
        )
        specs: List[ConvSpec] = []
        cur_h, cur_w = h, w
        for spec in reference:
            if spec.kernel > min(cur_h, cur_w):
                break
            stride = spec.stride
            if stride > 1:
                next_h = conv_output_size(cur_h, spec.kernel, stride, 0)
                next_w = conv_output_size(cur_w, spec.kernel, stride, 0)
                if min(next_h, next_w) < 3:
                    stride = 1
            specs.append(ConvSpec(spec.out_channels, spec.kernel, stride))
            cur_h = conv_output_size(cur_h, spec.kernel, stride, 0)
            cur_w = conv_output_size(cur_w, spec.kernel, stride, 0)
        if not specs:
            raise ConfigurationError(f"input {input_shape} too small for any conv stage")
        flat = specs[-1].out_channels * cur_h * cur_w
        dense: Tuple[int, ...] = (100, 50, 10) if flat >= 400 else (32, 10)
        return cls(input_shape=(h, w), conv_specs=tuple(specs), dense_units=dense)


class PilotNet(Sequential):
    """Steering-angle regression CNN over ``(N, 1, H, W)`` frames.

    The network is an ordinary :class:`repro.nn.Sequential`, so the
    VisualBackProp implementation can walk its layers; :attr:`conv_indices`
    records where the convolution stages sit.
    """

    def __init__(self, config: PilotNetConfig, rng: RngLike = None) -> None:
        generator = derive_rng(rng, stream="pilotnet")
        layers: List[Layer] = []
        conv_indices: List[int] = []

        in_channels = 1
        cur_h, cur_w = config.input_shape
        for i, spec in enumerate(config.conv_specs):
            if spec.kernel > min(cur_h, cur_w):
                raise ConfigurationError(
                    f"conv stage {i} kernel {spec.kernel} exceeds feature map "
                    f"{(cur_h, cur_w)} for input {config.input_shape}"
                )
            conv_indices.append(len(layers))
            layers.append(
                Conv2d(
                    in_channels,
                    spec.out_channels,
                    spec.kernel,
                    stride=spec.stride,
                    rng=generator,
                    name=f"conv{i}",
                )
            )
            if config.batch_norm:
                layers.append(BatchNorm2d(spec.out_channels, name=f"bn{i}"))
            layers.append(ReLU())
            in_channels = spec.out_channels
            cur_h = conv_output_size(cur_h, spec.kernel, spec.stride, 0)
            cur_w = conv_output_size(cur_w, spec.kernel, spec.stride, 0)

        layers.append(Flatten())
        width = in_channels * cur_h * cur_w
        for j, units in enumerate(config.dense_units):
            layers.append(Dense(width, units, rng=generator, name=f"fc{j}"))
            # LeakyReLU in the head: with the narrow 100-50-10 stack and the
            # small datasets of the reduced-scale presets, plain ReLU units
            # die en masse and the regressor collapses to a constant.  The
            # conv stages keep plain ReLU — VisualBackProp consumes their
            # non-negative feature maps.
            layers.append(LeakyReLU(0.1))
            width = units
        layers.append(Dense(width, 1, rng=generator, name="fc_out"))

        super().__init__(layers)
        self.config = config
        self.conv_indices = conv_indices
        self.feature_shape = (in_channels, cur_h, cur_w)

    @staticmethod
    def angles_from_output(output: np.ndarray) -> np.ndarray:
        """Steering angles from a raw ``(N, 1)`` network output.

        The stage runtime's ``steering_head`` reads angles off the cached
        ``cnn_forward`` output through this, so the monitor/closed-loop
        path shares one forward between steering and saliency.
        """
        return output[:, 0]

    def predict_angles(self, frames: np.ndarray) -> np.ndarray:
        """Steering angles for ``(N, H, W)`` or ``(N, 1, H, W)`` frames."""
        frames = as_tensor(frames, self.dtype)
        if frames.ndim == 3:
            frames = frames[:, None, :, :]
        if frames.ndim != 4 or frames.shape[1] != 1:
            raise ConfigurationError(
                f"predict_angles expects (N, H, W) or (N, 1, H, W), got {frames.shape}"
            )
        return self.angles_from_output(self.predict(frames))


def train_pilotnet(
    model: PilotNet,
    frames: np.ndarray,
    angles: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 1e-3,
    rng: RngLike = None,
):
    """Convenience training loop for the steering task.

    Returns the :class:`repro.nn.TrainingHistory`.  Kept here (rather than
    in the experiment harness) because every experiment that needs a trained
    prediction model uses exactly this recipe.
    """
    from repro.nn.data import ArrayDataset, DataLoader
    from repro.nn.losses import MSELoss
    from repro.nn.optim import Adam
    from repro.nn.trainer import Trainer

    frames = as_tensor(frames, model.dtype)
    if frames.ndim == 3:
        frames = frames[:, None, :, :]
    angles = as_tensor(angles, model.dtype).reshape(-1, 1)
    dataset = ArrayDataset(frames, angles)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng)
    trainer = Trainer(model, MSELoss(), Adam(model.parameters(), lr=lr), gradient_clip=5.0)
    return trainer.fit(loader, epochs=epochs)
