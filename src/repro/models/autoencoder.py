"""One-class autoencoders.

:class:`DenseAutoencoder` is the paper's classifier verbatim (§III-A): a
feedforward autoencoder with three hidden fully-connected layers of 64, 16
and 64 units, ReLU activations, and a sigmoid output layer sized to the
flattened image (9600 for 60x160 frames).  Inputs are grayscale images
normalized to [0, 1].

:class:`ConvAutoencoder` is an extension beyond the paper used by the
ablation benchmarks: a small convolutional encoder/decoder that preserves
spatial structure instead of flattening it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.layers import (
    Conv2d,
    ConvTranspose2d,
    Dense,
    Flatten,
    Layer,
    ReLU,
    Sigmoid,
)
from repro.nn.model import Sequential
from repro.utils.seeding import RngLike, derive_rng


class DenseAutoencoder(Sequential):
    """The paper's 64-16-64 feedforward autoencoder.

    Parameters
    ----------
    image_shape:
        ``(H, W)`` of the images being reconstructed; the network operates
        on the flattened ``H*W`` vector (9600 at the paper's resolution).
    hidden:
        Hidden-layer widths.  Defaults to the paper's ``(64, 16, 64)``; the
        middle entry is the bottleneck.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        hidden: Tuple[int, ...] = (64, 16, 64),
        rng: RngLike = None,
    ) -> None:
        if len(image_shape) != 2 or image_shape[0] < 1 or image_shape[1] < 1:
            raise ConfigurationError(f"image_shape must be (H, W), got {image_shape}")
        if not hidden:
            raise ConfigurationError("hidden layer widths must be non-empty")
        if any(h < 1 for h in hidden):
            raise ConfigurationError(f"hidden widths must be positive, got {hidden}")
        generator = derive_rng(rng, stream="dense_ae")
        input_dim = int(image_shape[0]) * int(image_shape[1])

        layers: List[Layer] = []
        width = input_dim
        for i, units in enumerate(hidden):
            # Sigmoid outputs live in [0, 1]; Xavier keeps the pre-sigmoid
            # logits in the linear regime at init so training starts from
            # mid-gray reconstructions rather than saturated extremes.
            layers.append(Dense(width, units, rng=generator, name=f"enc{i}"))
            layers.append(ReLU())
            width = units
        layers.append(Dense(width, input_dim, weight_init="xavier_uniform", rng=generator, name="dec_out"))
        layers.append(Sigmoid())

        super().__init__(layers)
        self.image_shape = (int(image_shape[0]), int(image_shape[1]))
        self.hidden = tuple(hidden)
        self.input_dim = input_dim

    @property
    def bottleneck(self) -> int:
        """Width of the narrowest hidden layer."""
        return min(self.hidden)

    def _flatten_batch(self, images: np.ndarray) -> np.ndarray:
        images = as_tensor(images, self.dtype)
        h, w = self.image_shape
        if images.ndim == 3 and images.shape[1:] == (h, w):
            return images.reshape(images.shape[0], -1)
        if images.ndim == 2 and images.shape[1] == self.input_dim:
            return images
        raise ShapeError(
            f"expected (N, {h}, {w}) images or (N, {self.input_dim}) vectors, "
            f"got {images.shape}"
        )

    def reconstruct(self, images: np.ndarray) -> np.ndarray:
        """Reconstruct a batch, returning images shaped like the input batch."""
        flat = self._flatten_batch(images)
        out = self.predict(flat)
        images = np.asarray(images)
        if images.ndim == 3:
            return out.reshape(images.shape)
        return out

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Bottleneck codes for a batch (output of the narrowest layer)."""
        flat = self._flatten_batch(images)
        out = flat
        narrow_index = 2 * int(np.argmin(self.hidden)) + 1  # after that ReLU
        for layer in self.layers[: narrow_index + 1]:
            out = layer.forward(out, training=False)
        return out


class ConvAutoencoder(Sequential):
    """Convolutional autoencoder (extension for ablation experiments).

    A two-stage strided conv encoder and mirrored transposed-conv decoder
    with a sigmoid output.  Requires both image dimensions to be divisible
    by 4 so the decoder exactly restores the input shape.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        channels: Tuple[int, int] = (8, 16),
        rng: RngLike = None,
    ) -> None:
        h, w = int(image_shape[0]), int(image_shape[1])
        if h % 4 or w % 4:
            raise ConfigurationError(
                f"ConvAutoencoder needs dimensions divisible by 4, got {image_shape}"
            )
        if len(channels) != 2 or any(c < 1 for c in channels):
            raise ConfigurationError(f"channels must be two positive ints, got {channels}")
        generator = derive_rng(rng, stream="conv_ae")
        c1, c2 = channels
        layers: List[Layer] = [
            Conv2d(1, c1, 4, stride=2, padding=1, rng=generator, name="enc_conv0"),
            ReLU(),
            Conv2d(c1, c2, 4, stride=2, padding=1, rng=generator, name="enc_conv1"),
            ReLU(),
            ConvTranspose2d(c2, c1, 4, stride=2, padding=1, rng=generator, name="dec_conv0"),
            ReLU(),
            ConvTranspose2d(
                c1, 1, 4, stride=2, padding=1,
                weight_init="xavier_uniform", rng=generator, name="dec_conv1",
            ),
            Sigmoid(),
        ]
        super().__init__(layers)
        self.image_shape = (h, w)
        self.channels = (c1, c2)

    def reconstruct(self, images: np.ndarray) -> np.ndarray:
        """Reconstruct ``(N, H, W)`` images (adds/strips the channel axis)."""
        images = as_tensor(images, self.dtype)
        h, w = self.image_shape
        if images.ndim != 3 or images.shape[1:] != (h, w):
            raise ShapeError(f"expected (N, {h}, {w}) images, got {images.shape}")
        return self.predict(images[:, None, :, :])[:, 0, :, :]
