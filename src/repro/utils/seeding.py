"""Deterministic random-number-generator management.

Every stochastic component in this library (weight initializers, data
loaders, dataset renderers, perturbations) accepts a
:class:`numpy.random.Generator` rather than reading global state.  This
module provides helpers to derive independent generators from a single root
seed so that whole experiments are reproducible bit-for-bit while their
subsystems remain statistically independent.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def derive_rng(seed: RngLike = None, *, stream: str = "") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` root seed, or an existing
        ``Generator`` (returned unchanged when ``stream`` is empty).
    stream:
        Optional label mixed into the seed material so that distinct
        subsystems sharing a root seed get independent streams.  With an
        existing ``Generator`` and a non-empty ``stream``, a child generator
        is spawned deterministically from it.
    """
    if isinstance(seed, np.random.Generator):
        if not stream:
            return seed
        # Deterministically derive a child stream from the parent generator
        # without disturbing callers that hold the parent: draw seed material.
        material = seed.integers(0, 2**63 - 1)
        return np.random.default_rng(_mix(int(material), stream))
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(_mix(int(seed), stream))


def spawn_rngs(seed: RngLike, n: int, *, stream: str = "") -> List[np.random.Generator]:
    """Derive ``n`` independent generators from one root seed.

    Used for example to give each epoch of a data loader its own shuffle
    stream so that resuming training mid-way stays deterministic.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = derive_rng(seed, stream=stream)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def _mix(seed: int, stream: str) -> int:
    """Mix an integer seed with a stream label into a new 63-bit seed."""
    if not stream:
        return seed & (2**63 - 1)
    h = np.uint64(seed & (2**63 - 1))
    for ch in stream:
        # FNV-1a style mixing: cheap, stable across platforms and runs.
        h = np.uint64((int(h) ^ ord(ch)) * 1099511628211 % (2**63 - 1))
    return int(h)
