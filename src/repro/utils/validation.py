"""Array validation helpers.

These raise :class:`repro.exceptions.ShapeError` /
:class:`repro.exceptions.ConfigurationError` with messages naming the
offending argument, so failures deep in a pipeline point at the call site
rather than at a numpy broadcasting error three frames later.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def require_ndim(x: np.ndarray, ndim: int, name: str = "array") -> np.ndarray:
    """Require ``x`` to have exactly ``ndim`` dimensions."""
    x = np.asarray(x)
    if x.ndim != ndim:
        raise ShapeError(f"{name} must have {ndim} dimensions, got shape {x.shape}")
    return x


def require_shape(x: np.ndarray, shape: Sequence[int], name: str = "array") -> np.ndarray:
    """Require ``x.shape`` to equal ``shape``; ``-1`` entries match anything."""
    x = np.asarray(x)
    if len(x.shape) != len(shape) or any(
        expected not in (-1, actual) for expected, actual in zip(shape, x.shape)
    ):
        raise ShapeError(f"{name} must have shape {tuple(shape)}, got {x.shape}")
    return x


def require_same_shape(a: np.ndarray, b: np.ndarray, names: str = "arrays") -> None:
    """Require two arrays to have identical shapes."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise ShapeError(f"{names} must have the same shape, got {a.shape} vs {b.shape}")


def require_finite(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Require every element of ``x`` to be finite (no NaN/Inf)."""
    x = np.asarray(x)
    if not np.all(np.isfinite(x)):
        bad = int(np.size(x) - np.count_nonzero(np.isfinite(x)))
        raise ShapeError(f"{name} contains {bad} non-finite values")
    return x


def require_positive(value: float, name: str = "value") -> float:
    """Require a scalar to be strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value
