"""Small wall-clock timing helpers used by the saliency timing experiment."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of a sequence (NaN when empty).

    Matches ``numpy.percentile``'s default (linear) method; shared by
    :class:`Timer` and the telemetry histogram summaries so every latency
    report in the repo quotes the same statistic.  An empty series has no
    percentile — the result is ``nan``, never an exception — and a single
    observation is its own percentile at every ``q``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return math.nan
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.total >= 0.0
    True
    """

    total: float = 0.0
    count: int = 0
    laps: List[float] = field(default_factory=list)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.total += lap
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean seconds per recorded lap (0.0 when nothing recorded)."""
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Fastest recorded lap (0.0 when nothing recorded)."""
        return min(self.laps) if self.laps else 0.0

    @property
    def max(self) -> float:
        """Slowest recorded lap (0.0 when nothing recorded)."""
        return max(self.laps) if self.laps else 0.0

    @property
    def p50(self) -> float:
        """Median lap time (0.0 when nothing recorded)."""
        return percentile(self.laps, 50.0) if self.laps else 0.0

    @property
    def p95(self) -> float:
        """95th-percentile lap time (0.0 when nothing recorded)."""
        return percentile(self.laps, 95.0) if self.laps else 0.0

    @property
    def p99(self) -> float:
        """99th-percentile lap time (0.0 when nothing recorded)."""
        return percentile(self.laps, 99.0) if self.laps else 0.0


def time_call(fn: Callable[..., Any], *args: Any, repeats: int = 1, **kwargs: Any) -> Tuple[Any, Timer]:
    """Call ``fn`` ``repeats`` times, returning its last result and the timer."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timer = Timer()
    result = None
    for _ in range(repeats):
        with timer:
            result = fn(*args, **kwargs)
    return result, timer
