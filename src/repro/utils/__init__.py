"""Shared utilities: seeding, logging, timing, validation, crash-safe IO."""

from repro.utils.fileio import atomic_write, atomic_write_text, fsync_dir, npz_path
from repro.utils.log import disable_console_logging, enable_console_logging, get_logger
from repro.utils.seeding import derive_rng, spawn_rngs
from repro.utils.timer import Timer, percentile, time_call
from repro.utils.validation import (
    require_finite,
    require_in_range,
    require_ndim,
    require_positive,
    require_same_shape,
    require_shape,
)

__all__ = [
    "atomic_write",
    "atomic_write_text",
    "fsync_dir",
    "npz_path",
    "disable_console_logging",
    "enable_console_logging",
    "get_logger",
    "derive_rng",
    "spawn_rngs",
    "Timer",
    "percentile",
    "time_call",
    "require_finite",
    "require_in_range",
    "require_ndim",
    "require_positive",
    "require_same_shape",
    "require_shape",
]
