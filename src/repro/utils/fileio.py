"""Crash-safe file writes.

Every persistent artifact this library writes (training checkpoints,
serving bundle payloads, bundle manifests) goes through
:func:`atomic_write`: the bytes land in a temporary file *in the target's
own directory*, are flushed and ``fsync``-ed, and only then atomically
``os.replace`` the destination (followed by a directory fsync so the
rename itself is durable).  A crash — power loss, OOM kill, a raising
serializer — at any point leaves either the complete old file or the
complete new file, never a truncated hybrid; the stale temp file is
removed on the error path (and is dot-prefixed, so a leaked one from a
hard kill never shadows a real artifact).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union


def npz_path(path: Union[str, Path]) -> Path:
    """``path`` with the ``.npz`` suffix numpy would have appended.

    ``np.savez(filename)`` appends ``.npz`` to suffix-less names, but
    writing through a file object (as :func:`atomic_write` does) skips
    that convention — apply it explicitly so checkpoint paths stay
    byte-compatible with the pre-atomic writers.
    """
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def fsync_dir(directory: Path) -> None:
    """Flush a directory's entries to disk (makes a rename durable).

    Best-effort: platforms/filesystems that refuse ``open(O_RDONLY)`` on
    directories simply skip the sync.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: Union[str, Path], mode: str = "wb") -> Iterator[IO]:
    """Write-then-rename: yield a temp file that atomically becomes ``path``.

    On a clean exit the temp file is flushed, fsync-ed, and renamed over
    ``path`` (parents created as needed).  On an exception the temp file
    is deleted and the previous ``path`` contents — if any — are left
    untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Crash-safe replacement for ``Path.write_text``."""
    with atomic_write(path, mode="w") as handle:
        handle.write(text)
