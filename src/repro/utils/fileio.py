"""Crash-safe file writes.

Every persistent artifact this library writes (training checkpoints,
serving bundle payloads, bundle manifests) goes through
:func:`atomic_write`: the bytes land in a temporary file *in the target's
own directory*, are flushed and ``fsync``-ed, and only then atomically
``os.replace`` the destination (followed by a directory fsync so the
rename itself is durable).  A crash — power loss, OOM kill, a raising
serializer — at any point leaves either the complete old file or the
complete new file, never a truncated hybrid; the stale temp file is
removed on the error path (and is dot-prefixed, so a leaked one from a
hard kill never shadows a real artifact).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

from repro.utils.log import get_logger

_log = get_logger(__name__)

_fsync_failures_lock = threading.Lock()
_dir_fsync_failures = 0
_dir_fsync_warned = False


def dir_fsync_failures() -> int:
    """How many directory fsyncs have been skipped because the platform
    or filesystem refused them (see :func:`fsync_dir`)."""
    with _fsync_failures_lock:
        return _dir_fsync_failures


def npz_path(path: Union[str, Path]) -> Path:
    """``path`` with the ``.npz`` suffix numpy would have appended.

    ``np.savez(filename)`` appends ``.npz`` to suffix-less names, but
    writing through a file object (as :func:`atomic_write` does) skips
    that convention — apply it explicitly so checkpoint paths stay
    byte-compatible with the pre-atomic writers.
    """
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def fsync_dir(directory: Path) -> None:
    """Flush a directory's entries to disk (makes a rename durable).

    Best-effort: platforms/filesystems that refuse to open a directory
    ``O_RDONLY`` — or that reject ``fsync`` on a directory fd outright
    (EINVAL/EBADF on some network and FUSE filesystems) — skip the sync
    instead of raising.  Skips are counted (:func:`dir_fsync_failures`)
    and the first one logs a warning, because on such filesystems a
    crash immediately after a rename can still lose the rename.
    """
    global _dir_fsync_failures, _dir_fsync_warned
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        _note_dir_fsync_failure(directory)
        return
    try:
        os.fsync(fd)
    except OSError:
        _note_dir_fsync_failure(directory)
    finally:
        os.close(fd)


def _note_dir_fsync_failure(directory: Path) -> None:
    global _dir_fsync_failures, _dir_fsync_warned
    with _fsync_failures_lock:
        _dir_fsync_failures += 1
        first = not _dir_fsync_warned
        _dir_fsync_warned = True
    if first:
        _log.warning(
            "directory fsync unsupported on %s; renames are atomic but "
            "their durability depends on the filesystem (further skips "
            "are counted, not logged)",
            directory,
        )


@contextmanager
def atomic_write(path: Union[str, Path], mode: str = "wb") -> Iterator[IO]:
    """Write-then-rename: yield a temp file that atomically becomes ``path``.

    On a clean exit the temp file is flushed, fsync-ed, and renamed over
    ``path`` (parents created as needed).  On an exception the temp file
    is deleted and the previous ``path`` contents — if any — are left
    untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Crash-safe replacement for ``Path.write_text``."""
    with atomic_write(path, mode="w") as handle:
        handle.write(text)
