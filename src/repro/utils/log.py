"""Library logging.

Follows the standard library-package convention: every module logs through
``get_logger(__name__)`` under the ``repro`` namespace, and the root
``repro`` logger carries a ``NullHandler`` so the library is silent unless
the *application* configures logging.  :func:`enable_console_logging` is a
convenience for scripts and notebooks.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("repro.nn.trainer")`` and ``get_logger(__name__)`` inside
    the package are equivalent; names outside the namespace are prefixed.
    """
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO, stream=None) -> logging.Handler:
    """Attach a console handler to the ``repro`` logger (idempotent).

    ``stream`` defaults to stderr (the :class:`logging.StreamHandler`
    default); passing a file-like object redirects the handler there —
    handy for tests capturing output or scripts teeing to a file.  When a
    console handler already exists it is re-leveled, and re-pointed if a
    different ``stream`` is given.  Returns the handler so callers can
    detach or re-level it (or use :func:`disable_console_logging`).
    """
    root = logging.getLogger(_ROOT_NAME)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and getattr(
            handler, "_repro_console", False
        ):
            handler.setLevel(level)
            if stream is not None and handler.stream is not stream:
                handler.setStream(stream)
            root.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def disable_console_logging() -> bool:
    """Detach the handler installed by :func:`enable_console_logging`.

    Returns whether a console handler was actually attached.  The root
    ``repro`` logger's level is reset to ``NOTSET`` so the library goes
    back to being silent-by-default.
    """
    root = logging.getLogger(_ROOT_NAME)
    removed = False
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) and getattr(
            handler, "_repro_console", False
        ):
            root.removeHandler(handler)
            handler.close()
            removed = True
    if removed:
        root.setLevel(logging.NOTSET)
    return removed
