"""Core image operations: grayscale, resize, crop, normalize.

All functions accept either a single image or a leading batch dimension and
preserve ``float64`` precision.  Grayscale images are ``(H, W)`` (or
``(N, H, W)``); color images carry a trailing RGB channel axis.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import FLOAT64, as_tensor

#: ITU-R BT.601 luma coefficients, the standard RGB-to-gray projection.
_LUMA = np.array([0.299, 0.587, 0.114])


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert ``(..., H, W, 3)`` RGB to ``(..., H, W)`` luma grayscale.

    Grayscale inputs (no trailing channel axis of size 3) pass through
    unchanged, so pipelines can be written channel-agnostically.
    """
    image = as_tensor(image)
    if image.ndim >= 3 and image.shape[-1] == 3:
        return image @ _LUMA
    if image.ndim in (2, 3):
        return image
    raise ShapeError(f"cannot interpret shape {image.shape} as an image")


def normalize01(image: np.ndarray) -> np.ndarray:
    """Rescale an image (or batch) linearly into [0, 1].

    A constant image maps to all-zeros.  Batches are normalized *per image*
    so one bright frame cannot compress another's dynamic range.
    """
    image = as_tensor(image)
    if image.ndim == 2:
        lo, hi = image.min(), image.max()
        if hi == lo:
            return np.zeros_like(image)
        return (image - lo) / (hi - lo)
    if image.ndim == 3:
        lo = image.min(axis=(1, 2), keepdims=True)
        hi = image.max(axis=(1, 2), keepdims=True)
        span = np.where(hi > lo, hi - lo, 1.0)
        out = (image - lo) / span
        out[np.broadcast_to(hi == lo, out.shape)] = 0.0
        return out
    raise ShapeError(f"normalize01 expects (H, W) or (N, H, W), got {image.shape}")


def resize_bilinear(image: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Resize grayscale ``(H, W)`` or ``(N, H, W)`` images bilinearly.

    Uses align-corners=False pixel-center semantics (the common default in
    imaging libraries).
    """
    image = as_tensor(image)
    out_h, out_w = int(size[0]), int(size[1])
    if out_h < 1 or out_w < 1:
        raise ShapeError(f"target size must be positive, got {size}")
    squeeze = image.ndim == 2
    if squeeze:
        image = image[None]
    if image.ndim != 3:
        raise ShapeError(f"resize_bilinear expects (H, W) or (N, H, W), got {image.shape}")

    n, h, w = image.shape
    # Map output pixel centers back into input coordinates.
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]

    top = image[:, y0][:, :, x0] * (1 - wx) + image[:, y0][:, :, x1] * wx
    bottom = image[:, y1][:, :, x0] * (1 - wx) + image[:, y1][:, :, x1] * wx
    out = top * (1 - wy) + bottom * wy
    return out[0] if squeeze else out


def center_crop(image: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Crop the central ``(h, w)`` region of ``(H, W)`` / ``(N, H, W)`` images."""
    image = as_tensor(image)
    crop_h, crop_w = int(size[0]), int(size[1])
    h, w = image.shape[-2], image.shape[-1]
    if crop_h < 1 or crop_w < 1 or crop_h > h or crop_w > w:
        raise ShapeError(f"cannot crop {size} from image of size {(h, w)}")
    top = (h - crop_h) // 2
    left = (w - crop_w) // 2
    return image[..., top : top + crop_h, left : left + crop_w]


def preprocess_frame(frame: np.ndarray, size: Tuple[int, int] = (60, 160)) -> np.ndarray:
    """The paper's preprocessing chain: grayscale → resize → normalize to [0, 1].

    ``size`` defaults to the paper's 60x160 working resolution.
    """
    gray = to_grayscale(frame)
    resized = resize_bilinear(gray, size)
    return normalize01(resized)


def gamma_correct(image: np.ndarray, gamma: float) -> np.ndarray:
    """Apply gamma correction ``I' = I**gamma`` to a [0, 1] image.

    ``gamma < 1`` brightens mid-tones, ``gamma > 1`` darkens them — the
    standard camera-response adjustment.
    """
    image = as_tensor(image)
    if image.ndim not in (2, 3):
        raise ShapeError(f"gamma_correct expects (H, W) or (N, H, W), got {image.shape}")
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive, got {gamma}")
    return np.clip(image, 0.0, 1.0) ** gamma


def equalize_histogram(image: np.ndarray, bins: int = 256) -> np.ndarray:
    """Histogram equalization: map intensities through their empirical CDF.

    Spreads the intensity distribution toward uniform, the classic
    contrast-enhancement preprocessing for low-contrast camera frames.
    Batches are equalized per image.
    """
    image = as_tensor(image)
    if image.ndim == 3:
        return np.stack([equalize_histogram(img, bins=bins) for img in image])
    if image.ndim != 2:
        raise ShapeError(f"equalize_histogram expects (H, W) or (N, H, W), got {image.shape}")
    if bins < 2:
        raise ShapeError(f"bins must be >= 2, got {bins}")
    clipped = np.clip(image, 0.0, 1.0)
    hist, edges = np.histogram(clipped, bins=bins, range=(0.0, 1.0))
    cdf = np.cumsum(hist).astype(FLOAT64)
    if cdf[-1] == 0:
        return clipped.copy()
    cdf /= cdf[-1]
    indices = np.minimum((clipped * bins).astype(int), bins - 1)
    return cdf[indices]
