"""Image preprocessing operations.

The paper's preprocessing pipeline (§III-A) converts camera frames to
grayscale, downsamples them to 60x160, and normalizes intensities to
[0, 1] before they reach either the steering CNN or the autoencoder.  This
package provides those operations plus the filtering primitives used by the
datasets and perturbation modules.
"""

from repro.image.filters import gaussian_blur, sobel_magnitude, uniform_blur
from repro.image.ops import (
    center_crop,
    equalize_histogram,
    gamma_correct,
    normalize01,
    preprocess_frame,
    resize_bilinear,
    to_grayscale,
)

__all__ = [
    "gaussian_blur",
    "sobel_magnitude",
    "uniform_blur",
    "center_crop",
    "equalize_histogram",
    "gamma_correct",
    "normalize01",
    "preprocess_frame",
    "resize_bilinear",
    "to_grayscale",
]
