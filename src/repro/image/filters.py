"""Spatial filters used by the dataset renderers and perturbations."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor


def _check_image(image: np.ndarray, name: str) -> np.ndarray:
    image = as_tensor(image)
    if image.ndim not in (2, 3):
        raise ShapeError(f"{name} expects (H, W) or (N, H, W), got {image.shape}")
    return image


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian blur over the trailing two (spatial) axes."""
    image = _check_image(image, "gaussian_blur")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return image.copy()
    sigmas = (0,) * (image.ndim - 2) + (sigma, sigma)
    return ndimage.gaussian_filter(image, sigma=sigmas, mode="nearest")


def uniform_blur(image: np.ndarray, size: int) -> np.ndarray:
    """Box blur over the trailing two axes."""
    image = _check_image(image, "uniform_blur")
    if size < 1:
        raise ConfigurationError(f"size must be >= 1, got {size}")
    sizes = (1,) * (image.ndim - 2) + (size, size)
    return ndimage.uniform_filter(image, size=sizes, mode="nearest")


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude — an edge map used for mask diagnostics."""
    image = _check_image(image, "sobel_magnitude")
    gy = ndimage.sobel(image, axis=-2, mode="nearest")
    gx = ndimage.sobel(image, axis=-1, mode="nearest")
    return np.sqrt(gx**2 + gy**2)
