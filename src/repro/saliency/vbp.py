"""VisualBackProp (Bojarski et al., ICRA 2018).

The paper uses VBP as its preprocessing layer (§III-B): "VBP identifies
sets of pixels of the input image that contribute most to the predictions
made by a trained CNN through combining feature maps from deeper
convolutional layers ... with higher resolution feature maps of shallow
layers.  The outputted mask is computed through scaled and averaged
deconvolutions of each internal convolution layer after a forward pass."

Algorithm, for a CNN whose convolution stages produce post-ReLU feature
maps :math:`a_1, \\dots, a_L` (shallow to deep):

1. Average each feature map over its channels: :math:`m_l` (single-channel).
2. Starting from the deepest map, repeatedly (a) upscale the running mask to
   the previous stage's resolution with a **ones-kernel deconvolution**
   matching that stage's convolution geometry (kernel, stride, padding) and
   (b) multiply pointwise with the previous stage's averaged map.
3. A final deconvolution through the first stage's geometry brings the mask
   to input resolution; it is then min-max normalized to [0, 1].

Because the averaged maps are post-ReLU they are non-negative, so the
pointwise products act as soft intersections: a pixel stays salient only if
*every* layer's receptive fields covering it were active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.layers import Conv2d, ReLU
from repro.nn.layers.conv import conv_transpose2d
from repro.nn.model import Sequential
from repro.saliency.base import SaliencyMethod
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class _ConvStage:
    """A convolution stage discovered in the model."""

    conv: Conv2d
    #: Index (into model.layers) of the activation whose output is this
    #: stage's feature map — the ReLU after the conv when present, else the
    #: conv itself.
    feature_index: int


def find_conv_stages(model: Sequential) -> List[_ConvStage]:
    """Locate convolution stages and their feature-map layer indices.

    A stage is a :class:`Conv2d` followed by its activation — directly, or
    through an intervening :class:`BatchNorm2d` (the conv-norm-nonlinearity
    arrangement).  The activation's output is the stage's feature map; a
    bare convolution uses its own output.
    """
    from repro.nn.layers import BatchNorm2d

    stages: List[_ConvStage] = []
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Conv2d):
            feature_index = i
            probe = i + 1
            if probe < len(model.layers) and isinstance(model.layers[probe], BatchNorm2d):
                probe += 1
            if probe < len(model.layers) and isinstance(model.layers[probe], ReLU):
                feature_index = probe
            stages.append(_ConvStage(conv=layer, feature_index=feature_index))
    if not stages:
        raise ConfigurationError(
            "VisualBackProp requires a model with at least one Conv2d layer"
        )
    return stages


def _fit_to(mask: np.ndarray, target_hw: Tuple[int, int]) -> np.ndarray:
    """Crop or zero-pad a ``(N, 1, H, W)`` mask to the target spatial size.

    Deconvolution can over/under-shoot the previous layer's resolution by a
    few pixels when the forward convolution's integer division truncated;
    this aligns the two (the reference implementation does the same).
    """
    h, w = mask.shape[2], mask.shape[3]
    th, tw = target_hw
    if h > th:
        mask = mask[:, :, :th, :]
    if w > tw:
        mask = mask[:, :, :, :tw]
    if mask.shape[2] < th or mask.shape[3] < tw:
        pad_h = th - mask.shape[2]
        pad_w = tw - mask.shape[3]
        mask = np.pad(mask, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="constant")
    return mask


class VisualBackProp(SaliencyMethod):
    """Value-based saliency via averaged feature maps and deconvolutions.

    Parameters
    ----------
    model:
        A trained :class:`repro.nn.Sequential` (e.g.
        :class:`repro.models.PilotNet`) containing convolution stages.
    scale_intermediate:
        Normalize each intermediate mask to a unit maximum per image before
        the next multiplication.  Keeps magnitudes from vanishing through
        deep stacks ("scaled ... deconvolutions" in the paper's phrasing);
        the final mask is min-max normalized either way.
    """

    def __init__(self, model: Sequential, scale_intermediate: bool = True) -> None:
        self.model = model
        self.scale_intermediate = bool(scale_intermediate)
        self._stages = find_conv_stages(model)
        # Ones-kernel cache for the deconvolution cascade, keyed by
        # (kernel geometry, dtype) so a precision switch just adds new
        # entries.  A compiled ScoringPlan adopts this cache into its
        # workspace (adopt_kernel_cache) so the buffers swap atomically
        # with the plan on hot-swap.
        self._kernel_cache = {}

    @property
    def dtype(self) -> np.dtype:
        """VBP computes in the model's policy dtype end to end."""
        return self.model.dtype

    @property
    def num_stages(self) -> int:
        """Number of convolution stages VBP combines."""
        return len(self._stages)

    def adopt_kernel_cache(self, workspace) -> None:
        """Hand ones-kernel ownership to a plan's :class:`Workspace`.

        After adoption the cascade draws its kernels from
        ``workspace.kernels`` (sharing hit/miss accounting), so the
        buffers live and die with the compiled plan.
        """
        workspace.kernels.update(self._kernel_cache)
        self._workspace = workspace

    def _ones_kernel(self, kh: int, kw: int) -> np.ndarray:
        workspace = getattr(self, "_workspace", None)
        if workspace is not None:
            return workspace.ones_kernel((1, 1, kh, kw), self.dtype)
        key = ((1, 1, kh, kw), np.dtype(self.dtype).str)
        kernel = self._kernel_cache.get(key)
        if kernel is None:
            kernel = np.ones((1, 1, kh, kw), dtype=self.dtype)
            self._kernel_cache[key] = kernel
        return kernel

    def _averaged_maps_from(self, activations) -> List[np.ndarray]:
        """Channel-averaged per-stage maps from cached activations."""
        return [
            activations[stage.feature_index].mean(axis=1, keepdims=True)
            for stage in self._stages
        ]

    def _averaged_maps(self, frames: np.ndarray) -> List[np.ndarray]:
        """Channel-averaged feature map per conv stage, shallow to deep."""
        _, activations = self.model.forward_with_activations(frames, training=False)
        return self._averaged_maps_from(activations)

    def _check_channels(self, frames: np.ndarray) -> None:
        if frames.shape[1] != self._stages[0].conv.in_channels:
            raise ShapeError(
                f"model expects {self._stages[0].conv.in_channels} input channels, "
                f"got {frames.shape[1]}"
            )

    def _compute(self, frames: np.ndarray) -> np.ndarray:
        self._check_channels(frames)
        telem = get_telemetry()
        with telem.span("vbp.forward", frames=int(frames.shape[0])):
            maps = self._averaged_maps(frames)
        with telem.span("vbp.backproject", stages=len(self._stages)):
            return self._backproject(maps, frames.shape[2:])

    def _compute_from_forward(
        self, frames: np.ndarray, output: np.ndarray, activations
    ) -> np.ndarray:
        """The cascade over a forward pass the stage runtime already ran.

        Skips ``vbp.forward`` entirely — the averaged maps come from the
        cached activations — leaving only the ones-kernel deconvolutions.
        """
        self._check_channels(frames)
        telem = get_telemetry()
        maps = self._averaged_maps_from(activations)
        with telem.span("vbp.backproject", stages=len(self._stages)):
            return self._backproject(maps, frames.shape[2:])

    def _backproject(self, maps: List[np.ndarray], input_hw: Tuple[int, int]) -> np.ndarray:
        """The deconvolution cascade over pre-computed averaged maps.

        Split out from :meth:`_compute` (which adds telemetry spans) so the
        overhead micro-benchmark can time the bare computation.
        """
        mask: Optional[np.ndarray] = None
        # Walk deep -> shallow, deconvolving through each stage's geometry.
        for level in range(len(self._stages) - 1, -1, -1):
            current = maps[level] if mask is None else maps[level] * mask
            if self.scale_intermediate:
                peak = current.max(axis=(1, 2, 3), keepdims=True)
                current = current / np.where(peak > 0, peak, 1.0)
            conv = self._stages[level].conv
            kh, kw = conv.kernel_size
            ones = self._ones_kernel(kh, kw)
            upscaled = conv_transpose2d(current, ones, conv.stride, conv.padding)
            if level > 0:
                target = maps[level - 1].shape[2:]
            else:
                target = input_hw
            mask = _fit_to(upscaled, target)

        return mask[:, 0, :, :]

    def vbp_images(self, frames: np.ndarray) -> np.ndarray:
        """Alias for :meth:`saliency` matching the paper's "VBP images" term.

        These are the images fed to the one-class autoencoder in the
        framework of Figure 1.
        """
        return self.saliency(frames)

    def intermediate_masks(self, frames: np.ndarray) -> List[np.ndarray]:
        """The channel-averaged feature map of each conv stage, shallow to
        deep — the raw ingredients the deconvolution cascade combines.

        Each entry has shape ``(N, h_l, w_l)`` at that stage's resolution.
        Useful for debugging a model whose final mask looks wrong: the
        stage whose map first loses the road structure is the culprit.
        """
        frames = as_tensor(frames, self.dtype)
        if frames.ndim == 3:
            frames = frames[:, None, :, :]
        if frames.ndim != 4 or frames.shape[1] != self._stages[0].conv.in_channels:
            raise ShapeError(
                f"intermediate_masks expects (N, H, W) or (N, C, H, W) frames "
                f"matching the model's input, got {frames.shape}"
            )
        return [m[:, 0, :, :] for m in self._averaged_maps(frames)]
