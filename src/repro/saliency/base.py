"""Common interface for saliency methods."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor, resolve_dtype


class SaliencyMethod:
    """Maps input frames to per-pixel saliency masks in [0, 1].

    Subclasses implement :meth:`_compute` on ``(N, 1, H, W)`` batches;
    the public :meth:`saliency` handles shape coercion and normalization.
    Frames are coerced to :attr:`dtype` — float64 unless the subclass ties
    itself to a model running a different policy.
    """

    @property
    def dtype(self) -> np.dtype:
        """The dtype this method computes masks in.

        Methods wrapping a model follow its policy; standalone methods use
        the float64 default.
        """
        model = getattr(self, "model", None)
        if model is not None and hasattr(model, "dtype"):
            return model.dtype
        return resolve_dtype(None)

    def _compute(self, frames: np.ndarray) -> np.ndarray:
        """Raw (unnormalized) masks of shape ``(N, H, W)``."""
        raise NotImplementedError

    def _compute_from_forward(
        self, frames: np.ndarray, output: np.ndarray, activations
    ) -> np.ndarray:
        """Raw masks, given a forward pass already done on ``frames``.

        ``output``/``activations`` are the return of
        ``model.forward_with_activations(frames, training=False)``.
        Subclasses override this to skip their own forward; the default
        recomputes via :meth:`_compute` so any method stays usable from
        the stage runtime.
        """
        return self._compute(frames)

    def saliency_from_forward(
        self, frames: np.ndarray, output: np.ndarray, activations
    ) -> np.ndarray:
        """Masks for ``(N, 1, H, W)`` frames reusing a cached forward pass.

        The stage runtime's entry point: the plan's ``cnn_forward`` stage
        has already run the network on exactly these frames, so methods
        that can consume the cached ``output``/``activations`` (all three
        in this library) skip the duplicate forward.  Shape validation and
        per-image normalization match :meth:`saliency` exactly, so masks
        are bit-identical to the standalone path.
        """
        frames = as_tensor(frames, self.dtype)
        if frames.ndim != 4 or frames.shape[1] != 1:
            raise ShapeError(
                f"saliency_from_forward expects (N, 1, H, W) frames, got {frames.shape}"
            )
        masks = self._compute_from_forward(frames, output, activations)
        if masks.shape != (frames.shape[0], frames.shape[2], frames.shape[3]):
            raise ShapeError(
                f"saliency backend produced shape {masks.shape}, "
                f"expected {(frames.shape[0], frames.shape[2], frames.shape[3])}"
            )
        return _normalize_per_image(masks)

    def saliency(self, frames: np.ndarray) -> np.ndarray:
        """Saliency masks for a batch of frames.

        Parameters
        ----------
        frames:
            ``(H, W)`` single frame, ``(N, H, W)`` batch, or ``(N, 1, H, W)``
            channel-explicit batch.

        Returns
        -------
        Masks matching the input's leading shape, min-max normalized to
        [0, 1] per image (a constant raw mask maps to zeros).
        """
        frames = as_tensor(frames, self.dtype)
        single = frames.ndim == 2
        if single:
            frames = frames[None]
        if frames.ndim == 3:
            frames = frames[:, None, :, :]
        if frames.ndim != 4 or frames.shape[1] != 1:
            raise ShapeError(
                f"saliency expects (H, W), (N, H, W) or (N, 1, H, W), got {frames.shape}"
            )
        masks = self._compute(frames)
        if masks.shape != (frames.shape[0], frames.shape[2], frames.shape[3]):
            raise ShapeError(
                f"saliency backend produced shape {masks.shape}, "
                f"expected {(frames.shape[0], frames.shape[2], frames.shape[3])}"
            )
        masks = _normalize_per_image(masks)
        return masks[0] if single else masks

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        return self.saliency(frames)


def _normalize_per_image(masks: np.ndarray) -> np.ndarray:
    """Min-max normalize each ``(H, W)`` mask in a batch into [0, 1]."""
    lo = masks.min(axis=(1, 2), keepdims=True)
    hi = masks.max(axis=(1, 2), keepdims=True)
    span = np.where(hi > lo, hi - lo, 1.0)
    out = (masks - lo) / span
    out[np.broadcast_to(hi == lo, out.shape)] = 0.0
    return out
