"""Network-saliency visualization methods.

* :class:`VisualBackProp` — the paper's preprocessing layer (§III-B): the
  value-based saliency method of Bojarski et al. that combines
  channel-averaged feature maps across convolution layers via ones-kernel
  deconvolutions.
* :class:`LayerwiseRelevancePropagation` — epsilon-rule LRP, the
  "order of magnitude slower" comparator the paper cites for VBP's speed
  claim.
* :class:`GradientSaliency` — vanilla input-gradient saliency, a second
  baseline.

All methods share the :class:`SaliencyMethod` interface:
``saliency(frames) -> (N, H, W)`` masks normalized to [0, 1].
"""

from repro.saliency.base import SaliencyMethod
from repro.saliency.gradient import GradientSaliency
from repro.saliency.lrp import LayerwiseRelevancePropagation
from repro.saliency.vbp import VisualBackProp

__all__ = [
    "SaliencyMethod",
    "GradientSaliency",
    "LayerwiseRelevancePropagation",
    "VisualBackProp",
]
