"""Layer-wise Relevance Propagation (epsilon rule).

The paper motivates VBP over LRP-style methods on speed: VBP "has been
demonstrated to be order of magnitude faster than other network saliency
visualization methods (such as [LRP]) that produce comparable [results]"
(§III-B).  This module implements epsilon-rule LRP (Bach et al., 2015) for
the layer types PilotNet uses, so the benchmark harness can measure that
speed gap on identical models (see ``benchmarks/test_saliency_timing.py``).

The epsilon rule redistributes the relevance :math:`R_j` of each output
neuron to its inputs proportionally to their contributions
:math:`z_{ij} = x_i w_{ij}`:

.. math:: R_i = \\sum_j \\frac{z_{ij}}{z_j + \\epsilon\\,\\mathrm{sign}(z_j)} R_j

For ReLU/LeakyReLU the relevance passes through unchanged; Flatten only
reshapes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import Conv2d, Dense, Flatten, LeakyReLU, ReLU
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import col2im, im2col
from repro.nn.model import Sequential
from repro.saliency.base import SaliencyMethod


class LayerwiseRelevancePropagation(SaliencyMethod):
    """Epsilon-rule LRP over a Sequential of Conv2d/ReLU/Flatten/Dense.

    Parameters
    ----------
    model:
        The trained prediction network.
    epsilon:
        Stabilizer added to the denominators; larger values absorb more
        relevance and smooth the maps.
    """

    _SUPPORTED = (Conv2d, Dense, ReLU, LeakyReLU, Flatten)

    def __init__(self, model: Sequential, epsilon: float = 1e-6) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        for layer in model.layers:
            if not isinstance(layer, self._SUPPORTED):
                raise ConfigurationError(
                    f"LRP supports {[c.__name__ for c in self._SUPPORTED]} layers, "
                    f"found {type(layer).__name__}"
                )
        self.model = model
        self.epsilon = float(epsilon)

    @staticmethod
    def _stabilize(z: np.ndarray, epsilon: float) -> np.ndarray:
        return z + epsilon * np.where(z >= 0, 1.0, -1.0)

    def _relevance_dense(self, layer: Dense, x: np.ndarray, r: np.ndarray) -> np.ndarray:
        z = x @ layer.weight.value
        if layer.bias is not None:
            z = z + layer.bias.value
        s = r / self._stabilize(z, self.epsilon)
        return x * (s @ layer.weight.value.T)

    def _relevance_conv(self, layer: Conv2d, x: np.ndarray, r: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        cols = im2col(x, layer.kernel_size, layer.stride, layer.padding)
        w_mat = layer.weight.value.reshape(layer.out_channels, -1)
        z = cols @ w_mat.T
        if layer.bias is not None:
            z = z + layer.bias.value
        out_h, out_w = r.shape[2], r.shape[3]
        r_rows = r.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, layer.out_channels)
        s = r_rows / self._stabilize(z, self.epsilon)
        contrib_cols = (s @ w_mat) * cols
        return col2im(contrib_cols, x.shape, layer.kernel_size, layer.stride, layer.padding)

    def _compute(self, frames: np.ndarray) -> np.ndarray:
        # Forward pass, remembering every layer input.
        inputs: List[np.ndarray] = []
        out = frames
        for layer in self.model.layers:
            inputs.append(out)
            out = layer.forward(out, training=False)
        return self._relevance_from(inputs, out)

    def _compute_from_forward(
        self, frames: np.ndarray, output: np.ndarray, activations
    ) -> np.ndarray:
        """LRP over a cached forward: each layer's input is the previous
        layer's activation (the frames for the first layer), so the stage
        runtime's single ``cnn_forward`` pass replaces the one above."""
        inputs = [frames] + list(activations[:-1])
        return self._relevance_from(inputs, output)

    def _relevance_from(self, inputs: List[np.ndarray], output: np.ndarray) -> np.ndarray:
        # Seed relevance with the network output (a steering angle).
        relevance = output
        for layer, layer_input in zip(reversed(self.model.layers), reversed(inputs)):
            relevance = self._propagate(layer, layer_input, relevance)

        if relevance.ndim != 4:
            raise ShapeError(
                f"LRP produced relevance of shape {relevance.shape}, expected 4-d"
            )
        # Positive relevance supports the prediction; magnitude makes the
        # mask comparable to VBP's non-negative output.
        return np.abs(relevance).sum(axis=1)

    def _propagate(self, layer: Layer, x: np.ndarray, r: np.ndarray) -> np.ndarray:
        if isinstance(layer, Dense):
            return self._relevance_dense(layer, x, r)
        if isinstance(layer, Conv2d):
            return self._relevance_conv(layer, x, r)
        if isinstance(layer, Flatten):
            return r.reshape(x.shape)
        if isinstance(layer, (ReLU, LeakyReLU)):
            return r
        raise ConfigurationError(f"unsupported layer in LRP: {type(layer).__name__}")
