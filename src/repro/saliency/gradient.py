"""Vanilla input-gradient saliency.

The simplest saliency baseline: the absolute gradient of the network output
with respect to each input pixel, obtained with one ordinary backward pass.
Included as a second comparator alongside LRP for the saliency-quality and
timing benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Sequential
from repro.saliency.base import SaliencyMethod


class GradientSaliency(SaliencyMethod):
    """``|d output / d input|`` saliency via the model's backward pass."""

    def __init__(self, model: Sequential) -> None:
        self.model = model

    def _compute(self, frames: np.ndarray) -> np.ndarray:
        out = self.model.forward(frames, training=False)
        return self._backward_saliency(out)

    def _compute_from_forward(
        self, frames: np.ndarray, output: np.ndarray, activations
    ) -> np.ndarray:
        """Backward pass over a forward the stage runtime just ran.

        The layers' backward caches are populated by the most recent
        forward; the stage runtime guarantees no other forward has run on
        this model since its ``cnn_forward`` stage, so the backward seeds
        directly off the cached ``output``.
        """
        return self._backward_saliency(output)

    def _backward_saliency(self, out: np.ndarray) -> np.ndarray:
        # Seed with ones: for the scalar steering output this is simply
        # d(output)/d(input) per sample.
        grad_in = self.model.backward(np.ones_like(out))
        # Parameter gradients accumulated as a side effect are irrelevant
        # here; clear them so interleaved training isn't polluted.
        self.model.zero_grad()
        return np.abs(grad_in).sum(axis=1)
