"""Vanilla input-gradient saliency.

The simplest saliency baseline: the absolute gradient of the network output
with respect to each input pixel, obtained with one ordinary backward pass.
Included as a second comparator alongside LRP for the saliency-quality and
timing benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Sequential
from repro.saliency.base import SaliencyMethod


class GradientSaliency(SaliencyMethod):
    """``|d output / d input|`` saliency via the model's backward pass."""

    def __init__(self, model: Sequential) -> None:
        self.model = model

    def _compute(self, frames: np.ndarray) -> np.ndarray:
        out = self.model.forward(frames, training=False)
        # Seed with ones: for the scalar steering output this is simply
        # d(output)/d(input) per sample.
        grad_in = self.model.backward(np.ones_like(out))
        # Parameter gradients accumulated as a side effect are irrelevant
        # here; clear them so interleaved training isn't polluted.
        self.model.zero_grad()
        return np.abs(grad_in).sum(axis=1)
