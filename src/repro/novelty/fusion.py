"""Score fusion across heterogeneous detectors.

The experiments expose *complementary* strengths: the VBP+SSIM pipeline
separates unseen driving domains almost perfectly but is blind to additive
sensor noise (its saliency masks are noise-robust), while the raw-image MSE
baseline detects noise trivially but separates domains worse.  A deployed
system wants both.

:class:`ScoreFusionDetector` combines detectors with *different score
scales* (an SSIM loss in [0, 2], an MSE in [0, 1], ...) by standardizing
each member's score against its own training distribution (a z-score) and
averaging.  This differs from :class:`repro.novelty.EnsembleDetector`,
which averages raw scores and therefore requires members that share one
convention — fusion is for heterogeneous members, ensembling for
same-recipe members.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn.backend.policy import as_tensor
from repro.novelty.detector import NoveltyDetector
from repro.novelty.ensemble import _OneClassView


class ScoreFusionDetector:
    """Z-score fusion of heterogeneous loss-oriented detectors.

    Parameters
    ----------
    members:
        Detector instances (fitted or not) whose scores all orient
        higher-is-novel — every pipeline/baseline in this library does.
    weights:
        Optional per-member weights (normalized internally); default equal.
    percentile:
        Threshold percentile for the fused decision rule.
    """

    def __init__(
        self,
        members: Sequence,
        weights: Optional[Sequence[float]] = None,
        percentile: float = 99.0,
    ) -> None:
        members = list(members)
        if len(members) < 2:
            raise ConfigurationError(
                f"fusion needs at least 2 members, got {len(members)}"
            )
        if weights is None:
            weights = [1.0] * len(members)
        weights = as_tensor(list(weights))
        if weights.shape != (len(members),):
            raise ConfigurationError(
                f"need one weight per member ({len(members)}), got {weights.shape}"
            )
        if np.any(weights < 0) or weights.sum() == 0:
            raise ConfigurationError("weights must be non-negative and not all zero")
        self.members = members
        self.weights = weights / weights.sum()
        self.detector = NoveltyDetector(percentile=percentile, higher_is_novel=True)
        self.one_class = _OneClassView(detector=self.detector)
        self._means: Optional[np.ndarray] = None
        self._stds: Optional[np.ndarray] = None
        self._plan = None

    @property
    def plan(self):
        """Compiled scoring plan (``member_scores → standardize →
        verdict``) — fusion runs on the same stage runtime as the
        pipelines and ensembles."""
        if self._plan is None:
            from repro.pipeline import compile_plan

            self._plan = compile_plan(self)
        return self._plan

    @property
    def is_fitted(self) -> bool:
        """Whether standardization statistics and threshold are fitted."""
        return self._means is not None and self.detector.is_fitted

    def fit(self, frames: np.ndarray) -> "ScoreFusionDetector":
        """Fit members (if needed), standardization stats, and threshold."""
        for member in self.members:
            if not getattr(member, "is_fitted", False):
                member.fit(frames)
        raw = np.stack([member.score(frames) for member in self.members])
        self._means = raw.mean(axis=1)
        stds = raw.std(axis=1)
        # A member with constant training scores carries no signal; a unit
        # divisor keeps it harmless instead of exploding the z-scores.
        self._stds = np.where(stds > 1e-12, stds, 1.0)
        self.detector.fit(self.score(frames))
        return self

    def _fused(self, frames: np.ndarray):
        """One plan run through ``member_scores → standardize``."""
        if self._means is None:
            raise NotFittedError("ScoreFusionDetector used before fit()")
        return self.plan.run(frames, stages=("member_scores", "standardize"))

    def score(self, frames: np.ndarray) -> np.ndarray:
        """Weighted mean of member z-scores (higher = more novel)."""
        return self._fused(frames).scores

    def similarity(self, frames: np.ndarray) -> np.ndarray:
        """Negated fused score (for orientation-uniform reporting)."""
        return self._fused(frames).similarity

    def member_zscores(self, frames: np.ndarray) -> np.ndarray:
        """Per-member standardized scores, shape ``(n_members, n_frames)``.

        Useful for attributing an alarm to the member that raised it.
        """
        return self._fused(frames).extras["member_zscores"]

    def predict_novel(self, frames: np.ndarray) -> np.ndarray:
        """Boolean decisions under the fused threshold."""
        if not self.detector.is_fitted:
            raise NotFittedError("ScoreFusionDetector used before fit()")
        return self.plan.run(
            frames, stages=("member_scores", "standardize", "verdict")
        ).is_novel
