"""Ensembles of novelty detectors.

A single autoencoder's reconstruction quality depends on its random
initialization and batch order; averaging the novelty scores of several
independently seeded members reduces that variance — the standard
deep-ensemble recipe applied to the paper's one-class stage.  An ensemble
exposes the same interface as a single pipeline (``score`` /
``similarity`` / ``predict_novel`` and the nested threshold detector), so
it plugs into :func:`repro.novelty.evaluate_detector` and
:class:`repro.novelty.StreamMonitor` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.novelty.detector import NoveltyDetector


@dataclass
class _OneClassView:
    """Adapter giving the ensemble the ``.one_class.detector`` path the
    evaluation helpers expect from single pipelines."""

    detector: NoveltyDetector


class EnsembleDetector:
    """Score-averaging ensemble of pipeline-like detectors.

    Parameters
    ----------
    members:
        Detector instances sharing a score convention (all loss-oriented —
        which every pipeline in this library is).  They may be unfitted;
        :meth:`fit` fits each member and then the ensemble threshold.
    percentile:
        Threshold percentile for the ensemble's own decision rule.
    """

    def __init__(self, members: Sequence, percentile: float = 99.0) -> None:
        members = list(members)
        if len(members) < 2:
            raise ConfigurationError(
                f"an ensemble needs at least 2 members, got {len(members)}"
            )
        self.members = members
        self.detector = NoveltyDetector(percentile=percentile, higher_is_novel=True)
        self.one_class = _OneClassView(detector=self.detector)
        self._plan = None

    @property
    def plan(self):
        """Compiled scoring plan (``member_scores → aggregate → verdict``)
        — the ensemble runs on the same stage runtime as the pipelines."""
        if self._plan is None:
            from repro.pipeline import compile_plan

            self._plan = compile_plan(self)
        return self._plan

    @classmethod
    def build(
        cls,
        factory: Callable[[int], object],
        n_members: int,
        percentile: float = 99.0,
    ) -> "EnsembleDetector":
        """Construct members via ``factory(seed)`` for seeds ``0..n-1``."""
        if n_members < 2:
            raise ConfigurationError(f"n_members must be >= 2, got {n_members}")
        return cls([factory(seed) for seed in range(n_members)], percentile=percentile)

    @property
    def is_fitted(self) -> bool:
        """Whether the ensemble threshold has been fitted."""
        return self.detector.is_fitted

    def fit(self, frames: np.ndarray) -> "EnsembleDetector":
        """Fit every member, then the ensemble threshold on mean scores."""
        for member in self.members:
            if not getattr(member, "is_fitted", False):
                member.fit(frames)
        self.detector.fit(self.score(frames))
        return self

    def member_scores(self, frames: np.ndarray) -> np.ndarray:
        """Per-member score matrix of shape ``(n_members, n_frames)``."""
        return self.plan.run(frames, stages=("member_scores",)).member_scores

    def score(self, frames: np.ndarray) -> np.ndarray:
        """Mean member score (higher = more novel)."""
        return self.plan.run(frames, stages=("member_scores", "aggregate")).scores

    def score_std(self, frames: np.ndarray) -> np.ndarray:
        """Member disagreement per frame — itself a useful uncertainty cue."""
        return self.member_scores(frames).std(axis=0)

    def similarity(self, frames: np.ndarray) -> np.ndarray:
        """Mean member similarity (the paper's reporting convention)."""
        return np.stack(
            [member.similarity(frames) for member in self.members]
        ).mean(axis=0)

    def predict_novel(self, frames: np.ndarray) -> np.ndarray:
        """Boolean decisions under the ensemble's fitted threshold."""
        if not self.detector.is_fitted:
            raise NotFittedError("EnsembleDetector used before fit()")
        return self.plan.run(
            frames, stages=("member_scores", "aggregate", "verdict")
        ).is_novel
