"""Percentile-threshold novelty decision rule.

Both the paper and its baseline (Richter & Roy) use the same rule: fit the
empirical CDF of reconstruction scores on the training set and classify a
test image as novel when its score falls outside the 99th percentile
(§III-C).  For loss-like scores (MSE, ``1 - SSIM``) "outside" means above
the 99th percentile; for similarity scores (SSIM) it means below the 1st.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.metrics.cdf import EmpiricalCDF
from repro.telemetry import get_telemetry


def _as_scores(values: np.ndarray, caller: str) -> np.ndarray:
    """Coerce to a float array, rejecting empty inputs loudly.

    An empty score array almost always means an upstream bug (a batch that
    rendered zero frames, a filter that dropped everything); comparing it
    against the threshold would silently return an empty verdict array and
    let the mistake propagate.
    """
    scores = as_tensor(values)
    if scores.size == 0:
        raise ShapeError(f"{caller} received an empty scores array")
    return scores


class NoveltyDetector:
    """Thresholds scalar novelty scores against a training distribution.

    Parameters
    ----------
    percentile:
        Coverage of the target class, in percent (paper: 99.0).  The
        threshold sits at this percentile of the training scores.
    higher_is_novel:
        ``True`` for loss-oriented scores (higher = worse reconstruction),
        ``False`` for similarity-oriented scores such as raw SSIM.
    """

    def __init__(self, percentile: float = 99.0, higher_is_novel: bool = True) -> None:
        if not 50.0 <= percentile < 100.0:
            raise ConfigurationError(
                f"percentile must be in [50, 100), got {percentile}"
            )
        self.percentile = float(percentile)
        self.higher_is_novel = bool(higher_is_novel)
        self._cdf: Optional[EmpiricalCDF] = None
        self._threshold: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._threshold is not None

    @property
    def threshold(self) -> float:
        """The fitted decision threshold."""
        if self._threshold is None:
            raise NotFittedError("NoveltyDetector.threshold read before fit()")
        return self._threshold

    @property
    def training_cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the training scores."""
        if self._cdf is None:
            raise NotFittedError("NoveltyDetector.training_cdf read before fit()")
        return self._cdf

    def fit(self, train_scores: np.ndarray) -> "NoveltyDetector":
        """Fit the threshold from target-class training scores."""
        self._cdf = EmpiricalCDF(train_scores)
        if self.higher_is_novel:
            self._threshold = self._cdf.quantile(self.percentile / 100.0)
        else:
            self._threshold = self._cdf.quantile(1.0 - self.percentile / 100.0)
        telem = get_telemetry()
        if telem.enabled:
            telem.event(
                "detector.fit",
                threshold=float(self._threshold),
                percentile=self.percentile,
                n_train=int(np.asarray(train_scores).size),
            )
        return self

    def predict(self, scores: np.ndarray) -> np.ndarray:
        """Boolean novelty decisions for an array of scores."""
        if self._threshold is None:
            raise NotFittedError("NoveltyDetector.predict() called before fit()")
        scores = _as_scores(scores, "NoveltyDetector.predict()")
        get_telemetry().counter("detector.predictions").inc(scores.size)
        if self.higher_is_novel:
            return scores > self._threshold
        return scores < self._threshold

    def novelty_margin(self, scores: np.ndarray) -> np.ndarray:
        """Signed distance past the threshold (positive = novel side).

        Useful for ranking how anomalous flagged inputs are.
        """
        if self._threshold is None:
            raise NotFittedError("NoveltyDetector.novelty_margin() called before fit()")
        scores = _as_scores(scores, "NoveltyDetector.novelty_margin()")
        if self.higher_is_novel:
            return scores - self._threshold
        return self._threshold - scores
