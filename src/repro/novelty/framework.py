"""The paper's two-layer novelty-detection framework (Figure 1).

:class:`OneClassAutoencoder` packages the second layer — the paper's dense
64-16-64 autoencoder, a reconstruction loss (SSIM or MSE), and the
percentile threshold rule — behind a scikit-learn-ish ``fit`` / ``score`` /
``predict_novel`` interface.

:class:`SaliencyNoveltyPipeline` composes the full framework: a trained
steering CNN's VisualBackProp masks are the autoencoder's inputs at both
training and test time.  With ``loss="ssim"`` this is exactly the paper's
proposed method; the baselines module derives the comparison systems from
the same pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.models.autoencoder import ConvAutoencoder, DenseAutoencoder
from repro.nn.backend.policy import as_tensor, resolve_dtype
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Flatten
from repro.nn.losses import Loss, MSELoss, MSSSIMLoss, SSIMLoss
from repro.nn.model import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer, TrainingHistory
from repro.novelty.detector import NoveltyDetector
from repro.saliency.base import SaliencyMethod
from repro.saliency.gradient import GradientSaliency
from repro.saliency.lrp import LayerwiseRelevancePropagation
from repro.saliency.vbp import VisualBackProp
from repro.telemetry import get_telemetry
from repro.utils.seeding import RngLike, derive_rng
from repro.utils.validation import require_finite


@dataclass(frozen=True)
class AutoencoderConfig:
    """Training configuration for the one-class autoencoder.

    Defaults follow the paper: 64-16-64 hidden layers, mini-batches of 32,
    a 99th-percentile threshold, and an 11x11 SSIM window.
    """

    hidden: Tuple[int, ...] = (64, 16, 64)
    epochs: int = 40
    batch_size: int = 32
    learning_rate: float = 1e-3
    percentile: float = 99.0
    ssim_window: int = 11

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )


class OneClassAutoencoder:
    """Autoencoder-based one-class classifier with a threshold rule.

    Parameters
    ----------
    image_shape:
        ``(H, W)`` of the (grayscale, [0, 1]) input images.
    loss:
        ``"ssim"`` (the paper's choice), ``"mse"`` (the baseline's), or
        ``"msssim"`` (multi-scale SSIM, an extension used by the loss
        ablation).  Scores returned by :meth:`score` are loss-oriented in
        every case (``1 - (MS-)SSIM`` or MSE), so *higher always means
        more novel*.
    config:
        Training hyperparameters.
    architecture:
        ``"dense"`` (the paper's 64-16-64 feedforward network, default) or
        ``"conv"`` — a convolutional encoder/decoder used by the
        architecture-ablation experiments.  The conv variant requires both
        image dimensions to be divisible by 4.
    rng:
        Seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        loss: str = "ssim",
        config: AutoencoderConfig = None,
        architecture: str = "dense",
        rng: RngLike = None,
    ) -> None:
        if loss not in ("ssim", "mse", "msssim"):
            raise ConfigurationError(
                f"loss must be 'ssim', 'mse' or 'msssim', got {loss!r}"
            )
        if architecture not in ("dense", "conv"):
            raise ConfigurationError(
                f"architecture must be 'dense' or 'conv', got {architecture!r}"
            )
        self.image_shape = (int(image_shape[0]), int(image_shape[1]))
        self.loss_name = loss
        self.architecture = architecture
        self.config = config or AutoencoderConfig()
        self._rng = derive_rng(rng, stream="one_class_ae")
        if architecture == "dense":
            self.autoencoder: Sequential = DenseAutoencoder(
                self.image_shape, hidden=self.config.hidden, rng=self._rng
            )
        else:
            # Append a Flatten so both architectures emit (N, H*W) vectors
            # and the loss/scoring paths below stay identical.
            conv = ConvAutoencoder(self.image_shape, rng=self._rng)
            self.autoencoder = Sequential(list(conv.layers) + [Flatten()])
        self.detector = NoveltyDetector(
            percentile=self.config.percentile, higher_is_novel=True
        )
        self._loss = self._build_loss()
        self.history: Optional[TrainingHistory] = None

    def _build_loss(self) -> Loss:
        if self.loss_name == "mse":
            return MSELoss()
        window = min(self.config.ssim_window, min(self.image_shape))
        if window % 2 == 0:
            window -= 1
        if window < 3:
            raise ConfigurationError(
                f"image {self.image_shape} too small for SSIM windows"
            )
        if self.loss_name == "ssim":
            return SSIMLoss(self.image_shape, window_size=window)
        # Multi-scale: use as many 2x levels as the window still fits into.
        scales = 1
        h, w = self.image_shape
        while scales < 3 and min(h, w) // 2 >= window:
            h, w = h // 2, w // 2
            scales += 1
        return MSSSIMLoss(self.image_shape, scales=scales, window_size=window)

    @property
    def dtype(self) -> np.dtype:
        """The autoencoder's policy dtype (float64 unless re-policied)."""
        return self.autoencoder.dtype

    def set_inference_dtype(self, dtype) -> "OneClassAutoencoder":
        """Recast the fitted autoencoder for inference at a policy dtype.

        Intended for a *fitted* model: training always runs at float64 (the
        gradcheck-grade default); switching to float32 halves the scoring
        path's memory traffic while the detector keeps its float64
        threshold.
        """
        self.autoencoder.set_policy(dtype)
        return self

    def _flatten(self, images: np.ndarray) -> np.ndarray:
        images = as_tensor(images, self.dtype)
        h, w = self.image_shape
        if images.ndim != 3 or images.shape[1:] != (h, w):
            raise ShapeError(f"expected (N, {h}, {w}) images, got {images.shape}")
        # A NaN frame would silently poison window statistics and training;
        # fail loudly at the boundary instead.
        require_finite(images, "one-class input images")
        return images.reshape(images.shape[0], -1)

    def _model_input(self, images: np.ndarray) -> np.ndarray:
        """Images in the form the autoencoder consumes.

        The dense network takes flattened vectors; the conv network takes
        ``(N, 1, H, W)`` batches.  Both emit flat ``(N, H*W)`` vectors, so
        everything downstream of the forward pass is architecture-agnostic.
        """
        flat = self._flatten(images)
        if self.architecture == "dense":
            return flat
        h, w = self.image_shape
        return flat.reshape(flat.shape[0], 1, h, w)

    def fit(self, images: np.ndarray) -> "OneClassAutoencoder":
        """Train the autoencoder on target-class images, then fit the
        threshold on the training scores."""
        flat = self._flatten(images)
        loader = DataLoader(
            ArrayDataset(self._model_input(images), flat),
            batch_size=self.config.batch_size,
            shuffle=True,
            rng=self._rng,
        )
        trainer = Trainer(
            self.autoencoder,
            self._loss,
            Adam(self.autoencoder.parameters(), lr=self.config.learning_rate),
            gradient_clip=5.0,
        )
        self.history = trainer.fit(loader, epochs=self.config.epochs)
        self.detector.fit(self.score(images))
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.detector.is_fitted

    def reconstruct(self, images: np.ndarray) -> np.ndarray:
        """Reconstructed images, shaped like the input batch."""
        recon = self.autoencoder.predict(self._model_input(images))
        return recon.reshape(np.asarray(images).shape)

    def score(self, images: np.ndarray) -> np.ndarray:
        """Per-image novelty score (reconstruction loss; higher = more novel)."""
        with get_telemetry().span("one_class.score", frames=int(np.asarray(images).shape[0])):
            recon = self.autoencoder.predict(self._model_input(images))
            return self._loss.per_sample(recon, self._flatten(images))

    def similarity(self, images: np.ndarray) -> np.ndarray:
        """Per-image similarity in the paper's reporting convention.

        SSIM in [-1, 1] when trained with SSIM loss (Figure 5's right
        panel); negated MSE otherwise.
        """
        scores = self.score(images)
        if self.loss_name in ("ssim", "msssim"):
            return 1.0 - scores
        return -scores

    def predict_novel(self, images: np.ndarray) -> np.ndarray:
        """Boolean novelty decisions under the fitted threshold."""
        if not self.detector.is_fitted:
            raise NotFittedError("OneClassAutoencoder used before fit()")
        return self.detector.predict(self.score(images))


class SaliencyNoveltyPipeline:
    """The paper's full framework: prediction CNN → VBP → one-class AE.

    A thin facade over a compiled :class:`~repro.pipeline.ScoringPlan`:
    every scoring entry point (``score`` / ``score_batch`` / ``similarity``
    / ``predict_novel`` / ``reconstruct`` / ``score_with_steering``)
    executes a named stage subsequence of one shared plan, so the CNN
    forward, saliency cascade, autoencoder pass, and verdict each run at
    most once per call and intermediates are cached in the run's
    :class:`~repro.pipeline.StageContext`.

    Parameters
    ----------
    prediction_model:
        A *trained* steering network (:class:`repro.models.PilotNet` or any
        conv :class:`repro.nn.Sequential`).  The pipeline never modifies it.
    image_shape:
        ``(H, W)`` of input frames (and hence VBP masks).
    loss:
        Reconstruction loss for the one-class stage; ``"ssim"`` is the
        proposed method.
    saliency:
        Preprocessing saliency method: ``"vbp"`` (the paper's choice), or
        ``"lrp"`` / ``"gradient"`` for the saliency-method ablation.
    architecture:
        Autoencoder architecture, forwarded to
        :class:`OneClassAutoencoder` (``"dense"`` is the paper's).
    """

    _SALIENCY_METHODS = {
        "vbp": VisualBackProp,
        "lrp": LayerwiseRelevancePropagation,
        "gradient": GradientSaliency,
    }

    def __init__(
        self,
        prediction_model: Sequential,
        image_shape: Tuple[int, int],
        loss: str = "ssim",
        config: AutoencoderConfig = None,
        saliency: str = "vbp",
        architecture: str = "dense",
        rng: RngLike = None,
    ) -> None:
        if saliency not in self._SALIENCY_METHODS:
            known = ", ".join(sorted(self._SALIENCY_METHODS))
            raise ConfigurationError(
                f"saliency must be one of {known}, got {saliency!r}"
            )
        self.saliency_name = saliency
        self.saliency_method: SaliencyMethod = self._SALIENCY_METHODS[saliency](
            prediction_model
        )
        self.one_class = OneClassAutoencoder(
            image_shape, loss=loss, config=config, architecture=architecture, rng=rng
        )
        self.image_shape = self.one_class.image_shape
        self._plan = None

    @property
    def plan(self):
        """The compiled :class:`~repro.pipeline.ScoringPlan` (lazy).

        Compiled once per pipeline and reused for every call; the plan's
        stages hold references to the live model/autoencoder objects, so
        :meth:`set_inference_dtype` needs no recompile (workspace buffers
        are dtype-keyed).
        """
        if self._plan is None:
            from repro.pipeline import compile_plan

            self._plan = compile_plan(self)
        return self._plan

    @property
    def vbp(self) -> SaliencyMethod:
        """The preprocessing saliency method (named for the default choice)."""
        return self.saliency_method

    def shares_model_with(self, model) -> bool:
        """Whether this pipeline's saliency stage runs on ``model``.

        When true, the fused ``score_with_steering`` path can serve a
        steering policy and the novelty monitor from one CNN forward.
        """
        return getattr(self.saliency_method, "model", None) is model

    @property
    def dtype(self) -> np.dtype:
        """The dtype the scoring path runs at (the one-class stage's)."""
        return self.one_class.dtype

    def set_inference_dtype(self, dtype) -> "SaliencyNoveltyPipeline":
        """Switch the whole scoring path to a policy dtype.

        Recasts the prediction model (and with it the saliency cascade) and
        the one-class autoencoder; frames are then coerced once at the
        pipeline boundary and stay in that dtype through VBP, the
        autoencoder and the SSIM scoring loss.  The novelty threshold is
        untouched — scores are upcast exactly for the verdict comparison.
        Use on a *fitted* pipeline; refitting at float32 is refused by the
        gradcheck guard rather than silently training at low precision.
        """
        resolved = resolve_dtype(dtype)
        model = getattr(self.saliency_method, "model", None)
        if model is not None and hasattr(model, "set_policy"):
            model.set_policy(resolved)
        self.one_class.set_inference_dtype(resolved)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether the one-class stage has been fitted."""
        return self.one_class.is_fitted

    def _coerce_frames(self, frames: np.ndarray) -> np.ndarray:
        """Coerce and validate a frame batch to the plan's ``(N, H, W)``.

        Accepts ``(N, H, W, 1)`` channel-last batches (common for camera
        feeds exported from image pipelines) by squeezing the trailing
        channel dimension.
        """
        frames = as_tensor(frames, self.dtype)
        h, w = self.image_shape
        if frames.ndim == 4 and frames.shape[1:] == (h, w, 1):
            frames = frames[:, :, :, 0]
        if frames.ndim != 3 or frames.shape[1:] != (h, w):
            raise ShapeError(f"expected (N, {h}, {w}) frames, got {frames.shape}")
        return frames

    def run_plan(self, frames: np.ndarray, stages=None):
        """Execute plan stages over coerced frames; returns the
        :class:`~repro.pipeline.StageContext` with every intermediate.

        ``stages=None`` runs the scoring prefix plus the verdict when the
        detector is fitted — one forward, one saliency cascade, one
        autoencoder pass, with masks/reconstruction/scores all cached in
        the returned context (what :func:`repro.novelty.explain_frame`
        consumes).
        """
        from repro.pipeline import SCORE_STAGES

        if stages is None:
            stages = SCORE_STAGES + (("verdict",) if self.is_fitted else ())
        return self.plan.run(self._coerce_frames(frames), stages=stages)

    def preprocess(self, frames: np.ndarray) -> np.ndarray:
        """VBP masks ("VBP images") for a batch of frames."""
        from repro.pipeline import PREPROCESS_STAGES

        return self.run_plan(frames, stages=PREPROCESS_STAGES).masks

    def fit(self, frames: np.ndarray) -> "SaliencyNoveltyPipeline":
        """Fit the one-class stage on the VBP images of training frames."""
        self.one_class.fit(self.preprocess(frames))
        return self

    def score(self, frames: np.ndarray) -> np.ndarray:
        """Novelty scores (reconstruction loss of the VBP image)."""
        from repro.pipeline import SCORE_STAGES

        with get_telemetry().span(
            "pipeline.score",
            frames=int(np.asarray(frames).shape[0]),
            saliency=self.saliency_name,
        ):
            return self.run_plan(frames, stages=SCORE_STAGES).scores

    def score_batch(self, frames: np.ndarray) -> np.ndarray:
        """Vectorized scoring fast path over a whole ``(N, H, W)`` stack.

        Scores are bit-identical to :meth:`score`; the difference is the
        contract: one plan invocation — one CNN forward, one saliency
        cascade, one autoencoder pass — for the entire stack, under a
        single ``pipeline.score_batch`` telemetry span (containing the
        per-stage spans) with no per-frame instrumentation.  This is the
        substrate the serving micro-batcher and
        :meth:`StreamMonitor.observe_batch
        <repro.novelty.StreamMonitor.observe_batch>` build on — batched
        numpy matmuls are where the throughput is.
        """
        from repro.pipeline import SCORE_STAGES

        frames = as_tensor(frames, self.dtype)
        if frames.ndim != 3:
            raise ShapeError(
                f"score_batch expects an (N, H, W) stack, got {frames.shape}"
            )
        with get_telemetry().span(
            "pipeline.score_batch",
            frames=int(frames.shape[0]),
            saliency=self.saliency_name,
        ):
            return self.run_plan(frames, stages=SCORE_STAGES).scores

    def score_with_steering(
        self, frames: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(scores, steering_angles)`` from one shared CNN forward.

        The fused monitor/closed-loop path: the plan's ``steering_head``
        and ``saliency_cascade`` stages both consume the cached
        ``cnn_forward`` activations, so guarding a steering model costs
        one forward per frame instead of two.  Scores are identical to
        :meth:`score_batch`; angles to
        :meth:`~repro.models.PilotNet.predict_angles`.
        """
        from repro.pipeline import FUSED_STAGES

        with get_telemetry().span(
            "pipeline.score_with_steering",
            frames=int(np.asarray(frames).shape[0]),
            saliency=self.saliency_name,
        ):
            ctx = self.run_plan(frames, stages=FUSED_STAGES)
            return ctx.scores, ctx.angles

    def similarity(self, frames: np.ndarray) -> np.ndarray:
        """Similarity scores in the paper's convention (see
        :meth:`OneClassAutoencoder.similarity`)."""
        from repro.pipeline import SCORE_STAGES

        return self.run_plan(frames, stages=SCORE_STAGES).similarity

    def predict_novel(self, frames: np.ndarray) -> np.ndarray:
        """Boolean novelty decisions for a batch of frames."""
        from repro.pipeline import SCORE_STAGES

        if not self.one_class.detector.is_fitted:
            raise NotFittedError("OneClassAutoencoder used before fit()")
        return self.run_plan(frames, stages=SCORE_STAGES + ("verdict",)).is_novel

    def reconstruct(
        self, frames: np.ndarray, masks: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(vbp_images, reconstructions)`` for inspection (Figure 6).

        ``masks`` accepts saliency masks already computed by a plan run
        (e.g. the stage cache of a frame just scored), skipping the CNN
        forward and saliency cascade entirely — the explain/demo path
        previously recomputed both on frames it had just scored.
        """
        from repro.pipeline import PREPROCESS_STAGES

        if masks is None:
            ctx = self.run_plan(
                frames, stages=PREPROCESS_STAGES + ("reconstruct",)
            )
            return ctx.masks, ctx.recon
        masks = as_tensor(masks, self.dtype)
        ctx = self.plan.run(masks, stages=("reconstruct",))
        return masks, ctx.recon


def save_pipeline_state(pipeline: "SaliencyNoveltyPipeline", path) -> None:
    """Persist a fitted pipeline's one-class stage to one ``.npz`` file.

    Saved: the autoencoder weights, the detector's training-score sample
    (from which threshold/CDF are refit exactly), and the configuration
    needed to rebuild the stage.  The *prediction model* is saved
    separately with :func:`repro.nn.save_model` — it usually already has a
    home in the deployment — and is supplied again at load time.
    """
    from pathlib import Path

    from repro.exceptions import SerializationError

    if not pipeline.is_fitted:
        raise NotFittedError("save_pipeline_state requires a fitted pipeline")
    one_class = pipeline.one_class
    state = {f"ae/{k}": v for k, v in one_class.autoencoder.state_dict().items()}
    state["meta/image_shape"] = np.array(pipeline.image_shape)
    state["meta/loss"] = np.array(one_class.loss_name)
    state["meta/architecture"] = np.array(one_class.architecture)
    state["meta/saliency"] = np.array(pipeline.saliency_name)
    state["meta/hidden"] = np.array(one_class.config.hidden)
    state["meta/percentile"] = np.array(one_class.config.percentile)
    state["meta/ssim_window"] = np.array(one_class.config.ssim_window)
    state["detector/train_scores"] = one_class.detector.training_cdf.samples

    from repro.utils.fileio import atomic_write, npz_path

    path = npz_path(path)
    try:
        # Atomic (temp + fsync + rename): a crash mid-save cannot truncate
        # an existing pipeline state file.
        with atomic_write(path) as handle:
            np.savez(handle, **state)
    except OSError as exc:
        raise SerializationError(f"failed to save pipeline to {path}: {exc}") from exc


def load_pipeline_state(path, prediction_model: Sequential) -> "SaliencyNoveltyPipeline":
    """Rebuild a fitted pipeline saved by :func:`save_pipeline_state`.

    ``prediction_model`` must be the same (or identically trained) steering
    network the pipeline was built around — saliency masks, and therefore
    scores, depend on it.
    """
    from pathlib import Path

    from repro.exceptions import SerializationError

    path = Path(path)
    if not path.exists():
        raise SerializationError(f"pipeline file {path} does not exist")
    with np.load(path) as data:
        required = {"meta/image_shape", "meta/loss", "meta/hidden",
                    "detector/train_scores"}
        if not required <= set(data.files):
            raise SerializationError(f"{path} is not a saved pipeline state")
        image_shape = tuple(int(v) for v in data["meta/image_shape"])
        loss = str(data["meta/loss"])
        architecture = str(data["meta/architecture"]) if "meta/architecture" in data.files else "dense"
        saliency = str(data["meta/saliency"]) if "meta/saliency" in data.files else "vbp"
        hidden = tuple(int(v) for v in data["meta/hidden"])
        percentile = float(data["meta/percentile"])
        ssim_window = int(data["meta/ssim_window"])
        ae_state = {
            key[len("ae/"):]: data[key]
            for key in data.files
            if key.startswith("ae/")
        }
        train_scores = data["detector/train_scores"]

    config = AutoencoderConfig(
        hidden=hidden, percentile=percentile, ssim_window=ssim_window
    )
    pipeline = SaliencyNoveltyPipeline(
        prediction_model,
        image_shape,
        loss=loss,
        config=config,
        saliency=saliency,
        architecture=architecture,
    )
    pipeline.one_class.autoencoder.load_state_dict(ae_state)
    pipeline.one_class.detector.fit(train_scores)
    return pipeline
