"""End-to-end detector evaluation.

Produces the quantitative content of the paper's histogram figures: score
distributions for the target and novel classes, their separation statistics
(overlap coefficient, AUROC, mean gap), and operating-point rates under the
fitted 99th-percentile threshold — including the paper's headline numbers
("all of DSI testing samples were classified as novel", "average SSIM value
of about 0.7 ... while DSI images had almost 0 similarity").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.metrics.histograms import HistogramComparison, compare_distributions


@dataclass(frozen=True)
class EvaluationResult:
    """Evaluation of one detector on one target/novel frame split.

    Scores are loss-oriented (higher = more novel); ``similarity_*`` fields
    hold the paper's reporting convention (SSIM, or negated MSE).
    """

    name: str
    target_scores: np.ndarray
    novel_scores: np.ndarray
    target_similarity: np.ndarray
    novel_similarity: np.ndarray
    comparison: HistogramComparison
    detection_rate: float
    false_positive_rate: float
    threshold: float

    @property
    def auroc(self) -> float:
        """AUROC of separating novel from target (1.0 = perfect)."""
        return self.comparison.auroc

    @property
    def overlap(self) -> float:
        """Histogram overlap coefficient between the two score samples."""
        return self.comparison.overlap

    def summary_row(self) -> str:
        """One formatted table row for the benchmark harness output."""
        return (
            f"{self.name:<28} "
            f"sim(target)={np.mean(self.target_similarity):+7.3f}  "
            f"sim(novel)={np.mean(self.novel_similarity):+7.3f}  "
            f"AUROC={self.auroc:6.3f}  "
            f"overlap={self.overlap:5.3f}  "
            f"detect={self.detection_rate:6.1%}  "
            f"FPR={self.false_positive_rate:6.1%}"
        )


def evaluate_scores(
    name: str,
    target_scores: np.ndarray,
    novel_scores: np.ndarray,
    predicted_target_novel: np.ndarray,
    predicted_novel_novel: np.ndarray,
    threshold: float,
    similarity_transform=None,
) -> EvaluationResult:
    """Assemble an :class:`EvaluationResult` from raw score arrays.

    ``similarity_transform`` maps loss scores to the reporting convention
    (defaults to negation).
    """
    target_scores = as_tensor(target_scores)
    novel_scores = as_tensor(novel_scores)
    if target_scores.size == 0 or novel_scores.size == 0:
        raise ShapeError("evaluation requires non-empty score arrays")
    transform = similarity_transform or (lambda s: -s)
    return EvaluationResult(
        name=name,
        target_scores=target_scores,
        novel_scores=novel_scores,
        target_similarity=transform(target_scores),
        novel_similarity=transform(novel_scores),
        comparison=compare_distributions(target_scores, novel_scores, higher_is_novel=True),
        detection_rate=float(np.mean(predicted_novel_novel)),
        false_positive_rate=float(np.mean(predicted_target_novel)),
        threshold=float(threshold),
    )


def evaluate_detector(detector, target_frames: np.ndarray, novel_frames: np.ndarray, name: str = None) -> EvaluationResult:
    """Evaluate a fitted detector on held-out target and novel frames.

    ``detector`` is any object with the pipeline interface (``score``,
    ``similarity``, ``predict_novel``, and a fitted ``one_class.detector``)
    — i.e. :class:`SaliencyNoveltyPipeline`, :class:`VbpMseBaseline`, or
    :class:`RichterRoyBaseline`.
    """
    if not getattr(detector, "is_fitted", False):
        raise NotFittedError("evaluate_detector requires a fitted detector")
    target_scores = detector.score(target_frames)
    novel_scores = detector.score(novel_frames)
    target_sim = detector.similarity(target_frames)
    novel_sim = detector.similarity(novel_frames)
    result_name = name or type(detector).__name__
    return EvaluationResult(
        name=result_name,
        target_scores=target_scores,
        novel_scores=novel_scores,
        target_similarity=target_sim,
        novel_similarity=novel_sim,
        comparison=compare_distributions(target_scores, novel_scores, higher_is_novel=True),
        detection_rate=float(np.mean(detector.predict_novel(novel_frames))),
        false_positive_rate=float(np.mean(detector.predict_novel(target_frames))),
        threshold=detector.one_class.detector.threshold,
    )
