"""Gradual-drift detection on novelty-score streams.

:class:`repro.novelty.StreamMonitor` answers "did the world change *now*?"
— its per-frame threshold only fires once individual frames are clearly
novel.  A vehicle driving into dusk degrades *gradually*: each frame scores
a little worse than the last, none crossing the 99th percentile until the
scene is already dark.  The classical tool for that regime is sequential
change detection on the score stream itself:

* :class:`EwmaTracker` — an exponentially weighted moving average of the
  scores, the smooth trend an operator would plot;
* :class:`CusumDetector` — a one-sided CUSUM on standardized scores, which
  accumulates small persistent exceedances and fires when their sum passes
  a decision threshold.  Detects small mean shifts far sooner than any
  per-frame rule with the same false-alarm rate.

Both calibrate from the same training scores the threshold detector uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, StateRestoreError
from repro.nn.backend.policy import as_tensor


@dataclass(frozen=True)
class DriftVerdict:
    """State of the drift detector after one observation.

    Attributes
    ----------
    index:
        Position in the stream.
    score:
        The raw novelty score observed.
    statistic:
        Current CUSUM statistic (0 = fully in control).
    drifted:
        Whether the decision threshold has been crossed (latches until
        :meth:`CusumDetector.reset`).
    """

    index: int
    score: float
    statistic: float
    drifted: bool


class EwmaTracker:
    """Exponentially weighted moving average of a score stream."""

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: Optional[float] = None

    @property
    def value(self) -> float:
        """Current smoothed value (raises before the first update)."""
        if self._value is None:
            raise NotFittedError("EwmaTracker.value read before any update")
        return self._value

    def update(self, score: float) -> float:
        """Fold one observation in; returns the new smoothed value."""
        score = float(score)
        if self._value is None:
            self._value = score
        else:
            self._value = self.alpha * score + (1.0 - self.alpha) * self._value
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the smoothed value."""
        return {"alpha": self.alpha, "value": self._value}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        alpha = state.get("alpha")
        if alpha != self.alpha:
            raise StateRestoreError(
                f"EWMA state was journaled with alpha={alpha!r} but this "
                f"tracker is configured with alpha={self.alpha}"
            )
        value = state.get("value")
        self._value = None if value is None else float(value)


class CusumDetector:
    """One-sided CUSUM for upward mean shifts in novelty scores.

    On standardized scores :math:`z_t = (s_t - \\mu)/\\sigma` the statistic

    .. math:: g_t = \\max(0,\\; g_{t-1} + z_t - k)

    accumulates exceedances beyond the *allowance* ``k`` (half the smallest
    mean shift worth detecting, in σ units) and signals drift when
    :math:`g_t > h` (the *decision threshold*).  Larger ``h`` trades
    detection delay for fewer false alarms; the classic default (k = 0.5,
    h = 5) detects a 1σ mean shift in roughly 10 observations.

    Parameters
    ----------
    allowance:
        ``k`` above, in standard deviations.
    decision_threshold:
        ``h`` above, in standard deviations.
    """

    def __init__(self, allowance: float = 0.5, decision_threshold: float = 5.0) -> None:
        if allowance < 0:
            raise ConfigurationError(f"allowance must be >= 0, got {allowance}")
        if decision_threshold <= 0:
            raise ConfigurationError(
                f"decision_threshold must be positive, got {decision_threshold}"
            )
        self.allowance = float(allowance)
        self.decision_threshold = float(decision_threshold)
        self._mean: Optional[float] = None
        self._std: Optional[float] = None
        self._statistic = 0.0
        self._index = 0
        self._drift_index: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether reference statistics have been set."""
        return self._mean is not None

    @property
    def drifted(self) -> bool:
        """Whether drift has been signalled (latched)."""
        return self._drift_index is not None

    @property
    def drift_index(self) -> Optional[int]:
        """Stream index at which drift was first signalled."""
        return self._drift_index

    def fit(self, train_scores: np.ndarray) -> "CusumDetector":
        """Calibrate the in-control mean/std from training scores."""
        scores = as_tensor(train_scores).ravel()
        if scores.size < 2:
            raise ConfigurationError("fit requires at least 2 training scores")
        self._mean = float(scores.mean())
        std = float(scores.std())
        if std <= 0:
            raise ConfigurationError("training scores have zero variance")
        self._std = std
        self.reset()
        return self

    def reset(self) -> None:
        """Clear the statistic and the drift latch (keeps calibration)."""
        self._statistic = 0.0
        self._index = 0
        self._drift_index = None

    def update(self, score: float) -> DriftVerdict:
        """Fold one score in and return the updated drift state."""
        if self._mean is None or self._std is None:
            raise NotFittedError("CusumDetector.update() called before fit()")
        z = (float(score) - self._mean) / self._std
        self._statistic = max(0.0, self._statistic + z - self.allowance)
        if self._statistic > self.decision_threshold and self._drift_index is None:
            self._drift_index = self._index
        verdict = DriftVerdict(
            index=self._index,
            score=float(score),
            statistic=self._statistic,
            drifted=self.drifted,
        )
        self._index += 1
        return verdict

    def update_batch(self, scores: np.ndarray) -> List[DriftVerdict]:
        """Fold a sequence of scores in order."""
        return [self.update(s) for s in as_tensor(scores).ravel()]

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot: calibration, running statistic, drift latch.

        The latch (:attr:`drift_index`) is the part that matters across a
        crash — drift signalled before the crash must still read as
        drifted after recovery, or a restart would silently un-latch a
        rollout gate.
        """
        return {
            "allowance": self.allowance,
            "decision_threshold": self.decision_threshold,
            "mean": self._mean,
            "std": self._std,
            "statistic": self._statistic,
            "index": self._index,
            "drift_index": self._drift_index,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (calibration included)."""
        for key in ("allowance", "decision_threshold"):
            ours = getattr(self, key)
            theirs = state.get(key)
            if theirs != ours:
                raise StateRestoreError(
                    f"CUSUM state was journaled with {key}={theirs!r} but "
                    f"this detector is configured with {key}={ours}"
                )
        self._mean = None if state["mean"] is None else float(state["mean"])
        self._std = None if state["std"] is None else float(state["std"])
        self._statistic = float(state["statistic"])
        self._index = int(state["index"])
        drift = state.get("drift_index")
        self._drift_index = None if drift is None else int(drift)
