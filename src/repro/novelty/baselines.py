"""Comparison systems from the paper's evaluation.

* :class:`RichterRoyBaseline` — the prior work (Richter & Roy, RSS 2017):
  a stand-alone autoencoder trained with pixel-wise MSE directly on the
  raw camera images, thresholded at the 99th percentile.  This is the
  left panel of the paper's Figure 5.
* :class:`VbpMseBaseline` — the ablation in Figure 5's middle panel: VBP
  preprocessing (so the autoencoder sees saliency masks) but still MSE
  loss.  Isolates how much of the win comes from VBP vs from SSIM.

Both expose the same interface as
:class:`repro.novelty.SaliencyNoveltyPipeline` so the evaluation harness
treats all three systems uniformly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.model import Sequential
from repro.novelty.framework import AutoencoderConfig, OneClassAutoencoder, SaliencyNoveltyPipeline
from repro.utils.seeding import RngLike


class RichterRoyBaseline:
    """Stand-alone MSE autoencoder on raw images (no saliency stage)."""

    def __init__(
        self,
        image_shape: Tuple[int, int],
        config: AutoencoderConfig = None,
        rng: RngLike = None,
    ) -> None:
        self.one_class = OneClassAutoencoder(
            image_shape, loss="mse", config=config, rng=rng
        )
        self.image_shape = self.one_class.image_shape
        self._plan = None

    @property
    def plan(self):
        """Compiled scoring plan (``reconstruct → similarity → verdict``
        over raw frames — no saliency stage, by design)."""
        if self._plan is None:
            from repro.pipeline import compile_plan

            self._plan = compile_plan(self)
        return self._plan

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.one_class.is_fitted

    def preprocess(self, frames: np.ndarray) -> np.ndarray:
        """Identity — the baseline consumes raw frames."""
        frames = as_tensor(frames)
        h, w = self.image_shape
        if frames.ndim != 3 or frames.shape[1:] != (h, w):
            raise ShapeError(f"expected (N, {h}, {w}) frames, got {frames.shape}")
        return frames

    def fit(self, frames: np.ndarray) -> "RichterRoyBaseline":
        """Train the autoencoder and threshold on raw frames."""
        self.one_class.fit(self.preprocess(frames))
        return self

    def score(self, frames: np.ndarray) -> np.ndarray:
        """Per-frame MSE reconstruction loss (higher = more novel)."""
        return self.plan.run(
            self.preprocess(frames), stages=("reconstruct", "similarity")
        ).scores

    def score_batch(self, frames: np.ndarray) -> np.ndarray:
        """Vectorized stack scoring, mirroring
        :meth:`SaliencyNoveltyPipeline.score_batch` so the stream monitor
        and serving engine treat all detector systems uniformly."""
        frames = as_tensor(frames)
        if frames.ndim != 3:
            raise ShapeError(
                f"score_batch expects an (N, H, W) stack, got {frames.shape}"
            )
        return self.score(frames)

    def similarity(self, frames: np.ndarray) -> np.ndarray:
        """Negated MSE, for orientation-uniform reporting."""
        return self.plan.run(
            self.preprocess(frames), stages=("reconstruct", "similarity")
        ).similarity

    def predict_novel(self, frames: np.ndarray) -> np.ndarray:
        """Boolean novelty decisions under the 99th-percentile rule."""
        from repro.exceptions import NotFittedError

        if not self.one_class.detector.is_fitted:
            raise NotFittedError("OneClassAutoencoder used before fit()")
        return self.plan.run(
            self.preprocess(frames),
            stages=("reconstruct", "similarity", "verdict"),
        ).is_novel

    def reconstruct(self, frames: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(inputs, reconstructions)`` for Figure 6 comparisons."""
        inputs = self.preprocess(frames)
        ctx = self.plan.run(inputs, stages=("reconstruct",))
        return inputs, ctx.recon


class VbpMseBaseline(SaliencyNoveltyPipeline):
    """VBP preprocessing with MSE reconstruction loss (ablation).

    Identical to the proposed pipeline except for the loss, so any
    performance difference against :class:`SaliencyNoveltyPipeline` is
    attributable to SSIM, and any difference against
    :class:`RichterRoyBaseline` to the VBP stage.
    """

    def __init__(
        self,
        prediction_model: Sequential,
        image_shape: Tuple[int, int],
        config: AutoencoderConfig = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(
            prediction_model, image_shape, loss="mse", config=config, rng=rng
        )
