"""Threshold calibration for correlated frame streams.

The paper (following Richter & Roy) fits the decision threshold at the
99th percentile of *i.i.d.* training-frame scores.  Deployed streams are
not i.i.d.: a drive shows the same scene for many consecutive frames, so a
single mildly-atypical scene — 1% of frames in the i.i.d. sense — becomes
a *persistent* condition that trips any persistence alarm.  (The extension
experiments in this repo hit exactly this: roughly 1 in 7 random scenes
false-alarmed a monitor whose threshold was i.i.d.-calibrated.)

:func:`calibrate_on_drives` refits the threshold on scores collected from
simulated *drives* instead: the calibration sample then contains each
scene's systematic offset, so the chosen percentile bounds the fraction of
*scene-frames* (not abstract i.i.d. frames) that exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DrivingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.seeding import RngLike, derive_rng


@dataclass(frozen=True)
class DriveCalibration:
    """Outcome of a drive-based threshold calibration.

    Attributes
    ----------
    old_threshold, new_threshold:
        Decision thresholds before and after recalibration.
    n_drives, frames_per_drive:
        Size of the calibration sample.
    drive_max_scores:
        Per-drive maximum score — the statistic that governs whether a
        persistence alarm can fire on that drive.
    """

    old_threshold: float
    new_threshold: float
    n_drives: int
    frames_per_drive: int
    drive_max_scores: np.ndarray


def calibrate_on_drives(
    detector,
    dataset: DrivingDataset,
    n_drives: int = 10,
    frames_per_drive: int = 20,
    percentile: float = None,
    rng: RngLike = None,
) -> DriveCalibration:
    """Refit a fitted detector's threshold on simulated-drive scores.

    Parameters
    ----------
    detector:
        A fitted pipeline (``score`` + nested ``one_class.detector``).
        Its threshold is updated *in place*.
    dataset:
        The target-domain renderer used to simulate calibration drives.
    n_drives, frames_per_drive:
        Calibration sample size.  More drives = more scene diversity in
        the sample; the frame count mainly smooths per-drive noise.
    percentile:
        Threshold percentile over the pooled drive scores; defaults to the
        detector's configured percentile.

    Returns
    -------
    A :class:`DriveCalibration` summary (the detector itself is updated).
    """
    if n_drives < 2:
        raise ConfigurationError(f"n_drives must be >= 2, got {n_drives}")
    if frames_per_drive < 1:
        raise ConfigurationError(
            f"frames_per_drive must be >= 1, got {frames_per_drive}"
        )
    inner = detector.one_class.detector
    if not inner.is_fitted:
        raise NotFittedError("calibrate_on_drives requires a fitted detector")
    old_threshold = inner.threshold

    root = derive_rng(rng, stream="drive-calibration")
    all_scores = []
    drive_max = np.empty(n_drives)
    for i in range(n_drives):
        drive = dataset.render_drive(frames_per_drive, rng=int(root.integers(0, 2**62)))
        scores = detector.score(drive.frames)
        all_scores.append(scores)
        drive_max[i] = scores.max()

    pooled = np.concatenate(all_scores)
    if percentile is not None:
        if not 50.0 <= percentile < 100.0:
            raise ConfigurationError(
                f"percentile must be in [50, 100), got {percentile}"
            )
        inner.percentile = float(percentile)
    inner.fit(pooled)  # refits the CDF and threshold at the percentile
    return DriveCalibration(
        old_threshold=float(old_threshold),
        new_threshold=float(inner.threshold),
        n_drives=n_drives,
        frames_per_drive=frames_per_drive,
        drive_max_scores=drive_max,
    )
