"""Novelty detection — the paper's primary contribution.

The two-layer framework of Figure 1: a trained prediction CNN provides
VisualBackProp saliency masks ("VBP images"); a one-class autoencoder
learns to reconstruct those masks; reconstruction (dis)similarity under a
99th-percentile threshold decides novelty.

* :class:`OneClassAutoencoder` — autoencoder + loss + threshold detector.
* :class:`SaliencyNoveltyPipeline` — the full framework (CNN → VBP → AE
  with SSIM loss), i.e. the paper's proposed method.
* :class:`RichterRoyBaseline` — the prior work it compares against: a
  stand-alone autoencoder with MSE loss on raw images.
* :class:`VbpMseBaseline` — the ablation in Figure 5's middle panel: VBP
  preprocessing but MSE loss.
* :func:`evaluate_detector` — shared evaluation machinery producing the
  statistics behind the paper's histogram figures.
"""

from repro.novelty.baselines import RichterRoyBaseline, VbpMseBaseline
from repro.novelty.calibration import DriveCalibration, calibrate_on_drives
from repro.novelty.detector import NoveltyDetector
from repro.novelty.drift import CusumDetector, DriftVerdict, EwmaTracker
from repro.novelty.ensemble import EnsembleDetector
from repro.novelty.explain import FrameExplanation, explain_frame
from repro.novelty.fusion import ScoreFusionDetector
from repro.novelty.evaluation import EvaluationResult, evaluate_detector, evaluate_scores
from repro.novelty.framework import (
    AutoencoderConfig,
    OneClassAutoencoder,
    SaliencyNoveltyPipeline,
    load_pipeline_state,
    save_pipeline_state,
)
from repro.novelty.monitor import FrameVerdict, StreamMonitor

__all__ = [
    "DriveCalibration",
    "calibrate_on_drives",
    "EnsembleDetector",
    "CusumDetector",
    "DriftVerdict",
    "EwmaTracker",
    "FrameExplanation",
    "explain_frame",
    "ScoreFusionDetector",
    "FrameVerdict",
    "StreamMonitor",
    "RichterRoyBaseline",
    "VbpMseBaseline",
    "NoveltyDetector",
    "EvaluationResult",
    "evaluate_detector",
    "evaluate_scores",
    "AutoencoderConfig",
    "OneClassAutoencoder",
    "SaliencyNoveltyPipeline",
    "load_pipeline_state",
    "save_pipeline_state",
]
