"""Online novelty monitoring for frame streams.

The paper motivates VBP's speed with "real-world systems where real-time
decision making is required" (§III-B).  This module supplies the missing
runtime piece: a :class:`StreamMonitor` that scores frames as they arrive
and raises an alarm when novelty persists — single novel frames are often
transient (a glare spike, one corrupted frame) while a *run* of novel
frames means the vehicle has genuinely left its training distribution and
should hand control back to a human or a safety fallback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn.backend.policy import as_tensor
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class FrameVerdict:
    """Per-frame monitoring outcome.

    Attributes
    ----------
    index:
        Position of the frame in the stream.
    score:
        Loss-oriented novelty score (higher = more novel).
    is_novel:
        The detector's single-frame decision.
    alarm:
        Whether the persistence alarm was active after this frame —
        i.e. at least ``min_consecutive`` of the last ``window`` frames
        were novel.
    """

    index: int
    score: float
    is_novel: bool
    alarm: bool


class StreamMonitor:
    """Runs a fitted detector over a frame stream with a persistence alarm.

    Parameters
    ----------
    detector:
        Any fitted pipeline object exposing ``score`` and the nested
        ``one_class.detector`` threshold rule
        (:class:`~repro.novelty.SaliencyNoveltyPipeline`,
        :class:`~repro.novelty.RichterRoyBaseline`, ...).
    window:
        Length of the sliding decision window, in frames.
    min_consecutive:
        Number of novel frames inside the window needed to raise the alarm.
        With ``window == min_consecutive`` the alarm requires strictly
        consecutive novel frames.
    """

    def __init__(self, detector, window: int = 5, min_consecutive: int = 3) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 1 <= min_consecutive <= window:
            raise ConfigurationError(
                f"min_consecutive must be in [1, window={window}], got {min_consecutive}"
            )
        if not getattr(detector, "is_fitted", False):
            raise NotFittedError("StreamMonitor requires a fitted detector")
        self.detector = detector
        self.window = int(window)
        self.min_consecutive = int(min_consecutive)
        self._recent: Deque[bool] = deque(maxlen=self.window)
        self._index = 0
        self._alarm_frames: List[int] = []
        self._transitions: List[Tuple[int, Optional[int]]] = []

    @property
    def alarm_active(self) -> bool:
        """Whether the persistence alarm is currently raised."""
        return sum(self._recent) >= self.min_consecutive

    @property
    def alarm_frames(self) -> List[int]:
        """Stream indices at which the alarm was active."""
        return list(self._alarm_frames)

    @property
    def frames_seen(self) -> int:
        """Number of frames processed so far."""
        return self._index

    def alarm_transitions(self) -> List[Tuple[int, Optional[int]]]:
        """``(raised_at, cleared_at)`` index pairs for each alarm episode.

        ``raised_at`` is the frame at which the alarm turned on;
        ``cleared_at`` is the first subsequent frame at which it was off
        again, or ``None`` while the episode is still active.  Benchmarks
        previously reconstructed these runs by hand from
        :attr:`alarm_frames`; the telemetry alarm counters use them too.
        """
        return list(self._transitions)

    def reset(self) -> None:
        """Clear the sliding window and alarm history (new drive)."""
        self._recent.clear()
        self._index = 0
        self._alarm_frames = []
        self._transitions = []

    def observe(self, frame: np.ndarray) -> FrameVerdict:
        """Score one frame and update the alarm state."""
        return self.observe_batch(frame[None])[0]

    def observe_batch(self, frames: np.ndarray) -> List[FrameVerdict]:
        """Score a batch of stream frames in order.

        Batching exists for efficiency (the detector vectorizes over
        frames); verdicts are produced exactly as if frames had been
        observed one at a time — every frame gets a verdict, including the
        first ``window - 1`` frames while the sliding window is still
        filling (the alarm can already raise there once
        ``min_consecutive`` novel frames have accumulated).

        When telemetry is enabled, frames are scored one at a time instead
        so each gets its own ``monitor.frame`` span — the per-frame latency
        a deployment would see — at the cost of the batch vectorization.
        """
        frames = as_tensor(frames, getattr(self.detector, "dtype", None))
        if frames.shape[0] == 0:
            return []
        telem = get_telemetry()
        if telem.enabled and frames.shape[0] > 1:
            verdicts = []
            for frame in frames:
                verdicts.extend(self.observe_batch(frame[None]))
            return verdicts

        if telem.enabled:
            with telem.span("monitor.frame", index=self._index):
                scores = self.detector.score(frames)
                decisions = self.detector.one_class.detector.predict(scores)
            margins = self.detector.one_class.detector.novelty_margin(scores)
        else:
            # The vectorized fast path: one VBP + autoencoder pass for the
            # whole stack (falls back to score() for detectors that predate
            # the batch entry point).
            score_stack = getattr(self.detector, "score_batch", self.detector.score)
            scores = score_stack(frames)
            decisions = self.detector.one_class.detector.predict(scores)
            margins = None
        verdicts = []
        for position, (score, is_novel) in enumerate(zip(scores, decisions)):
            was_active = self.alarm_active
            self._recent.append(bool(is_novel))
            alarm = self.alarm_active
            if alarm:
                self._alarm_frames.append(self._index)
            if alarm and not was_active:
                self._transitions.append((self._index, None))
            elif was_active and not alarm:
                raised_at, _ = self._transitions[-1]
                self._transitions[-1] = (raised_at, self._index)
            if telem.enabled:
                telem.counter("monitor.frames").inc()
                telem.histogram("monitor.score").observe(float(score))
                telem.gauge("monitor.threshold_margin").set(float(margins[position]))
                if is_novel:
                    telem.counter("monitor.novel_frames").inc()
                if alarm and not was_active:
                    telem.counter("monitor.alarms_raised").inc()
                    telem.event("monitor.alarm_raised", frame=self._index)
                elif was_active and not alarm:
                    telem.counter("monitor.alarms_cleared").inc()
                    telem.event("monitor.alarm_cleared", frame=self._index)
            verdicts.append(
                FrameVerdict(
                    index=self._index,
                    score=float(score),
                    is_novel=bool(is_novel),
                    alarm=alarm,
                )
            )
            self._index += 1
        return verdicts
