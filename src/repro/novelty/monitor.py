"""Online novelty monitoring for frame streams.

The paper motivates VBP's speed with "real-world systems where real-time
decision making is required" (§III-B).  This module supplies the missing
runtime piece: a :class:`StreamMonitor` that scores frames as they arrive
and raises an alarm when novelty persists — single novel frames are often
transient (a glare spike, one corrupted frame) while a *run* of novel
frames means the vehicle has genuinely left its training distribution and
should hand control back to a human or a safety fallback.

The monitor is itself a safety component, so it degrades instead of
breaking: frames are sanitized before scoring
(:class:`~repro.reliability.FrameSanitizer` — NaN/Inf pixels, wrong
shape/dtype, stuck-camera detection) and scores are validated before the
threshold comparison (a NaN score would otherwise read as "not novel",
since NaN comparisons are ``False``).  An unscorable frame still gets a
:class:`FrameVerdict`, with ``state`` naming the fault and ``is_novel``
substituted by the ``fail_safe`` policy, so the persistence alarm stays
sound under sensor faults.  See ``docs/reliability.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    StageError,
    StateRestoreError,
)
from repro.nn.backend.policy import as_tensor
from repro.reliability.sanitize import FrameSanitizer
from repro.telemetry import get_telemetry

#: Fail-safe policies for unscorable frames.
FAIL_SAFE_POLICIES = ("novel", "hold")


@dataclass(frozen=True)
class FrameVerdict:
    """Per-frame monitoring outcome.

    Attributes
    ----------
    index:
        Position of the frame in the stream.
    score:
        Loss-oriented novelty score (higher = more novel); NaN when the
        frame could not be scored.
    is_novel:
        The detector's single-frame decision — or, for a degraded frame,
        the fail-safe policy's substituted verdict.
    alarm:
        Whether the persistence alarm was active after this frame —
        i.e. at least ``min_consecutive`` of the last ``window`` frames
        were novel.
    state:
        ``"ok"`` for a cleanly scored frame, otherwise the degraded
        state (one of :data:`repro.reliability.DEGRADED_STATES`:
        ``bad_dtype`` / ``bad_shape`` / ``non_finite_frame`` /
        ``stuck_camera`` / ``non_finite_score``), or ``"stage:<name>"``
        when a specific stage of the detector's compiled scoring plan
        failed (the stage runtime names the faulting stage, so a VBP
        numerical blow-up is distinguishable from an autoencoder one).
    """

    index: int
    score: float
    is_novel: bool
    alarm: bool
    state: str = "ok"

    @property
    def degraded(self) -> bool:
        """Whether this verdict came from the degraded path."""
        return self.state != "ok"


class StreamMonitor:
    """Runs a fitted detector over a frame stream with a persistence alarm.

    Parameters
    ----------
    detector:
        Any fitted pipeline object exposing ``score`` and the nested
        ``one_class.detector`` threshold rule
        (:class:`~repro.novelty.SaliencyNoveltyPipeline`,
        :class:`~repro.novelty.RichterRoyBaseline`, ...).
    window:
        Length of the sliding decision window, in frames.
    min_consecutive:
        Number of novel frames inside the window needed to raise the alarm.
        With ``window == min_consecutive`` the alarm requires strictly
        consecutive novel frames.
    fail_safe:
        Verdict substituted for an unscorable frame: ``"novel"`` (treat it
        as novel — conservative, the default: a sensor fault is itself a
        reason to distrust the perception stack) or ``"hold"`` (repeat the
        last cleanly scored verdict — optimistic, avoids alarming on brief
        sensor glitches; holds "not novel" until a first clean frame).
    stuck_threshold:
        Consecutive byte-identical frames at which the feed is declared
        stuck (``None`` disables stuck-camera detection).
    sanitizer:
        A pre-built :class:`~repro.reliability.FrameSanitizer` to use
        instead of the default one (which checks against the detector's
        ``image_shape`` when it exposes one).
    """

    def __init__(
        self,
        detector,
        window: int = 5,
        min_consecutive: int = 3,
        fail_safe: str = "novel",
        stuck_threshold: Optional[int] = None,
        sanitizer: Optional[FrameSanitizer] = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 1 <= min_consecutive <= window:
            raise ConfigurationError(
                f"min_consecutive must be in [1, window={window}], got {min_consecutive}"
            )
        if fail_safe not in FAIL_SAFE_POLICIES:
            raise ConfigurationError(
                f"fail_safe must be one of {', '.join(FAIL_SAFE_POLICIES)}, "
                f"got {fail_safe!r}"
            )
        if not getattr(detector, "is_fitted", False):
            raise NotFittedError("StreamMonitor requires a fitted detector")
        self.detector = detector
        self.window = int(window)
        self.min_consecutive = int(min_consecutive)
        self.fail_safe = fail_safe
        if sanitizer is None:
            expected = getattr(detector, "image_shape", None)
            sanitizer = FrameSanitizer(
                image_shape=expected, stuck_threshold=stuck_threshold
            )
        self.sanitizer = sanitizer
        self._recent: Deque[bool] = deque(maxlen=self.window)
        self._index = 0
        self._alarm_frames: List[int] = []
        self._transitions: List[Tuple[int, Optional[int]]] = []
        self._degraded_frames: List[int] = []
        self._degraded_counts: Dict[str, int] = {}
        self._last_good_novel = False
        self._journal_sink: Optional[Callable[[], None]] = None
        self._journal_every = 1

    @property
    def alarm_active(self) -> bool:
        """Whether the persistence alarm is currently raised."""
        return sum(self._recent) >= self.min_consecutive

    @property
    def alarm_frames(self) -> List[int]:
        """Stream indices at which the alarm was active."""
        return list(self._alarm_frames)

    @property
    def frames_seen(self) -> int:
        """Number of frames processed so far."""
        return self._index

    @property
    def degraded_frames(self) -> List[int]:
        """Stream indices that took the degraded (unscorable) path."""
        return list(self._degraded_frames)

    def degraded_counts(self) -> Dict[str, int]:
        """Degraded-frame tallies by state (empty when the stream is clean)."""
        return dict(self._degraded_counts)

    def alarm_transitions(self) -> List[Tuple[int, Optional[int]]]:
        """``(raised_at, cleared_at)`` index pairs for each alarm episode.

        ``raised_at`` is the frame at which the alarm turned on;
        ``cleared_at`` is the first subsequent frame at which it was off
        again, or ``None`` while the episode is still active.  Benchmarks
        previously reconstructed these runs by hand from
        :attr:`alarm_frames`; the telemetry alarm counters use them too.
        """
        return list(self._transitions)

    def health(self) -> Dict[str, object]:
        """Liveness/health document for the ``/healthz`` endpoint.

        ``healthy`` is ``False`` while the persistence alarm is active —
        a scraper watching the monitor should see the alarm as the
        component's health, not just a counter.
        """
        return {
            "healthy": not self.alarm_active,
            "alarm_active": self.alarm_active,
            "frames_seen": self.frames_seen,
            "degraded_frames": len(self._degraded_frames),
            "alarms_raised": len(self._transitions),
        }

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of all mutable stream state.

        Covers everything :meth:`observe` mutates — the sliding decision
        window, the alarm/transition history, degraded counters, the
        fail-safe "hold" latch, and the sanitizer's stuck-camera run —
        plus the configuration the window semantics depend on, so
        :meth:`load_state_dict` can refuse a snapshot taken by a
        differently-configured monitor.
        """
        return {
            "window": self.window,
            "min_consecutive": self.min_consecutive,
            "fail_safe": self.fail_safe,
            "index": self._index,
            "recent": [bool(v) for v in self._recent],
            "alarm_frames": list(self._alarm_frames),
            "transitions": [list(pair) for pair in self._transitions],
            "degraded_frames": list(self._degraded_frames),
            "degraded_counts": dict(self._degraded_counts),
            "last_good_novel": self._last_good_novel,
            "sanitizer": self.sanitizer.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (e.g. after a crash).

        Raises :class:`~repro.exceptions.StateRestoreError` when the
        snapshot was taken under a different window geometry or
        fail-safe policy — silently restoring it would resurrect a
        monitor with different alarm semantics than the one that died.
        """
        for key in ("window", "min_consecutive", "fail_safe"):
            ours = getattr(self, key)
            theirs = state.get(key)
            if theirs != ours:
                raise StateRestoreError(
                    f"monitor state was journaled with {key}={theirs!r} but "
                    f"this monitor is configured with {key}={ours!r}"
                )
        self._index = int(state["index"])
        self._recent = deque(
            (bool(v) for v in state["recent"]), maxlen=self.window
        )
        self._alarm_frames = [int(i) for i in state["alarm_frames"]]
        self._transitions = [
            (int(raised), None if cleared is None else int(cleared))
            for raised, cleared in state["transitions"]
        ]
        self._degraded_frames = [int(i) for i in state["degraded_frames"]]
        self._degraded_counts = {
            str(k): int(v) for k, v in state["degraded_counts"].items()
        }
        self._last_good_novel = bool(state["last_good_novel"])
        self.sanitizer.load_state_dict(state["sanitizer"])

    def attach_journal(self, sink: Callable[[], None], every: int = 1) -> None:
        """Journal this monitor's state every ``every`` ingested frames.

        ``sink`` is a zero-argument callable (typically
        ``StateJournal.sink("monitor")``) invoked *after* each
        ``every``-th verdict is folded in, so the journaled state always
        reflects a frame boundary.  Pass ``None`` to detach.
        """
        if sink is not None and every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self._journal_sink = sink
        self._journal_every = int(every)

    def reset(self) -> None:
        """Clear the sliding window, alarm and fault history (new drive)."""
        self._recent.clear()
        self._index = 0
        self._alarm_frames = []
        self._transitions = []
        self._degraded_frames = []
        self._degraded_counts = {}
        self._last_good_novel = False
        self.sanitizer.reset()

    def observe(self, frame: np.ndarray) -> FrameVerdict:
        """Score one frame and update the alarm state.

        Malformed frames and non-finite scores do not raise — they produce
        a degraded :class:`FrameVerdict` under the fail-safe policy.
        """
        return self.observe_batch(np.asarray(frame)[None])[0]

    def _score_valid(
        self, stack: np.ndarray, base_index: int, positions: List[int], telem
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scores and margins for the sanitized sub-stack.

        When telemetry is enabled, frames are scored one at a time so each
        gets its own ``monitor.frame`` span — the per-frame latency a
        deployment would see — at the cost of the batch vectorization.
        """
        if telem.enabled and len(positions) > 1:
            scores = np.empty(len(positions))
            for k, position in enumerate(positions):
                with telem.span("monitor.frame", index=base_index + position):
                    scores[k] = self.detector.score(stack[k : k + 1])[0]
        elif telem.enabled:
            with telem.span("monitor.frame", index=base_index + positions[0]):
                scores = np.asarray(self.detector.score(stack), dtype=float)
        else:
            # The vectorized fast path: one VBP + autoencoder pass for the
            # whole stack (falls back to score() for detectors that predate
            # the batch entry point).
            score_stack = getattr(self.detector, "score_batch", self.detector.score)
            scores = np.asarray(score_stack(stack), dtype=float)
        margins = self.detector.one_class.detector.novelty_margin(scores)
        return scores, np.asarray(margins, dtype=float)

    def observe_batch(self, frames: np.ndarray) -> List[FrameVerdict]:
        """Score a batch of stream frames in order.

        Batching exists for efficiency (the detector vectorizes over
        frames); verdicts are produced exactly as if frames had been
        observed one at a time — every frame gets a verdict, including the
        first ``window - 1`` frames while the sliding window is still
        filling (the alarm can already raise there once
        ``min_consecutive`` novel frames have accumulated).

        Each frame is sanitized first; frames the detector cannot score
        (and frames whose score comes back non-finite) take the degraded
        path instead of raising — their ``is_novel`` is the fail-safe
        policy's verdict and their ``state`` names the fault.
        """
        arr = np.asarray(frames)
        if arr.ndim >= 1 and arr.shape[0] == 0:
            return []
        n = arr.shape[0] if arr.ndim >= 1 else 1
        if arr.ndim < 1:
            arr = arr.reshape(1)
        telem = get_telemetry()

        # Sanitize in stream order (the stuck-camera check is stateful).
        states: List[Optional[str]] = [self.sanitizer.check(arr[i]) for i in range(n)]
        positions = [i for i in range(n) if states[i] is None]

        scores_full = np.full(n, np.nan)
        margins_full = np.full(n, np.nan)
        decisions_full = np.zeros(n, dtype=bool)
        if positions:
            stack = as_tensor(
                np.stack([arr[i] for i in positions]),
                getattr(self.detector, "dtype", None),
            )
            try:
                scores, margins = self._score_valid(
                    stack, self._index, positions, telem
                )
            except StageError as exc:
                # A single stage of the compiled plan blew up.  The monitor
                # is a safety component: degrade the affected frames under
                # the fail-safe policy, naming the faulting stage, instead
                # of letting the exception take the whole stream down.
                stage_state = f"stage:{exc.stage or 'unknown'}"
                for position in positions:
                    states[position] = stage_state
            else:
                threshold_rule = self.detector.one_class.detector
                finite = np.isfinite(scores)
                decisions = np.zeros(len(positions), dtype=bool)
                if np.any(finite):
                    decisions[finite] = threshold_rule.predict(scores[finite])
                for k, position in enumerate(positions):
                    if not finite[k]:
                        # A NaN score would compare False against any
                        # threshold and silently read as "not novel" —
                        # route it to the degraded path instead.
                        states[position] = "non_finite_score"
                    scores_full[position] = scores[k]
                    margins_full[position] = margins[k]
                    decisions_full[position] = decisions[k]

        return [
            self._ingest_verdict(
                states[i] or "ok",
                scores_full[i],
                margins_full[i],
                decisions_full[i],
                telem,
            )
            for i in range(n)
        ]

    def _ingest_verdict(
        self, state: str, score: float, margin: float, decision: bool, telem
    ) -> FrameVerdict:
        """Fold one frame's outcome into the window/alarm/fault state."""
        if state == "ok":
            is_novel = bool(decision)
            self._last_good_novel = is_novel
        elif self.fail_safe == "novel":
            is_novel = True
        else:  # "hold": repeat the last cleanly scored verdict
            is_novel = self._last_good_novel
        was_active = self.alarm_active
        self._recent.append(is_novel)
        alarm = self.alarm_active
        if alarm:
            self._alarm_frames.append(self._index)
        if alarm and not was_active:
            self._transitions.append((self._index, None))
        elif was_active and not alarm:
            raised_at, _ = self._transitions[-1]
            self._transitions[-1] = (raised_at, self._index)
        if state != "ok":
            self._degraded_frames.append(self._index)
            self._degraded_counts[state] = self._degraded_counts.get(state, 0) + 1
        if telem.enabled:
            telem.counter("monitor.frames").inc()
            if state == "ok":
                telem.histogram("monitor.score").observe(float(score))
                # The live score distribution a /metrics scraper watches
                # for threshold drift (same series the serving engine
                # feeds when scoring goes through it).
                telem.window_histogram("monitor.score_window").observe(float(score))
                telem.gauge("monitor.threshold_margin").set(float(margin))
            else:
                telem.counter("monitor.degraded_frames").inc()
                telem.event(
                    "monitor.degraded", frame=self._index, state=state,
                    fail_safe=self.fail_safe,
                )
            if is_novel:
                telem.counter("monitor.novel_frames").inc()
            if alarm and not was_active:
                telem.counter("monitor.alarms_raised").inc()
                telem.event("monitor.alarm_raised", frame=self._index)
            elif was_active and not alarm:
                telem.counter("monitor.alarms_cleared").inc()
                telem.event("monitor.alarm_cleared", frame=self._index)
        verdict = FrameVerdict(
            index=self._index,
            score=float(score),
            is_novel=is_novel,
            alarm=alarm,
            state=state,
        )
        self._index += 1
        if self._journal_sink is not None and self._index % self._journal_every == 0:
            self._journal_sink()
        return verdict

    def observe_with_steering(
        self, frame: np.ndarray
    ) -> Tuple[FrameVerdict, Optional[float]]:
        """Score one frame and predict its steering angle in one pass.

        When the detector exposes the fused ``score_with_steering`` entry
        point (its compiled plan shares one CNN forward between the
        steering head and the saliency cascade), the closed-loop simulator
        gets both the novelty verdict and the steering command for the
        price of a single forward.  Detectors without the fused path fall
        back to :meth:`observe` with ``None`` for the angle, as do frames
        that take any degraded path (the caller must then steer via its
        own policy — commanding an angle computed from a faulty frame
        would defeat the sanitizer).
        """
        fused = getattr(self.detector, "score_with_steering", None)
        if fused is None:
            return self.observe(frame), None
        arr = np.asarray(frame)
        telem = get_telemetry()
        state = self.sanitizer.check(arr)
        score = float("nan")
        margin = float("nan")
        decision = False
        angle: Optional[float] = None
        if state is None:
            stack = as_tensor(arr[None], getattr(self.detector, "dtype", None))
            try:
                if telem.enabled:
                    with telem.span("monitor.frame", index=self._index):
                        scores, angles = fused(stack)
                else:
                    scores, angles = fused(stack)
            except StageError as exc:
                state = f"stage:{exc.stage or 'unknown'}"
            else:
                score = float(scores[0])
                if np.isfinite(score):
                    state = "ok"
                    angle = float(angles[0])
                    rule = self.detector.one_class.detector
                    decision = bool(rule.predict(scores)[0])
                    margin = float(rule.novelty_margin(scores)[0])
                else:
                    state = "non_finite_score"
        return self._ingest_verdict(state or "ok", score, margin, decision, telem), angle
