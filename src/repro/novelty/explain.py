"""Explanations for individual novelty decisions.

The paper's purpose is *trust*: when the detector flags a frame, an
operator will ask "why?".  For the SSIM-autoencoder pipeline the answer is
spatially localized by construction — the per-window SSIM map between the
VBP image and its reconstruction shows exactly *where* the autoencoder
failed to recognize the saliency structure.  :func:`explain_frame`
assembles those artifacts into one :class:`FrameExplanation`, renderable
as text or exportable as images via :mod:`repro.viz`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.metrics.ssim import ssim_map


@dataclass(frozen=True)
class FrameExplanation:
    """Everything behind one novelty decision.

    Attributes
    ----------
    frame:
        The input camera frame.
    vbp_image:
        Its saliency mask — what the prediction model looked at.
    reconstruction:
        The one-class autoencoder's reconstruction of that mask.
    ssim_map:
        Per-pixel structural similarity between mask and reconstruction
        (low = the autoencoder did not recognize this structure).
    score, threshold, is_novel:
        The scalar decision ingredients.
    worst_regions:
        Centers ``(row, col)`` of the least-similar windows, most anomalous
        first — where an operator should look.
    """

    frame: np.ndarray
    vbp_image: np.ndarray
    reconstruction: np.ndarray
    ssim_map: np.ndarray
    score: float
    threshold: float
    is_novel: bool
    worst_regions: List[Tuple[int, int]]

    @property
    def margin(self) -> float:
        """How far past (positive) or inside (negative) the threshold."""
        return self.score - self.threshold

    def render(self) -> str:
        """Short operator-facing text summary."""
        verdict = "NOVEL" if self.is_novel else "in-distribution"
        regions = ", ".join(f"({r}, {c})" for r, c in self.worst_regions)
        return (
            f"verdict: {verdict}  score={self.score:.4f}  "
            f"threshold={self.threshold:.4f}  margin={self.margin:+.4f}\n"
            f"least-recognized regions (row, col): {regions}\n"
            f"mean map SSIM: {float(self.ssim_map.mean()):.3f}"
        )


def _local_minima_centers(
    smap: np.ndarray, k: int, suppression: int
) -> List[Tuple[int, int]]:
    """Greedy non-maximum-suppressed selection of the k lowest map values."""
    working = smap.copy()
    centers: List[Tuple[int, int]] = []
    h, w = working.shape
    for _ in range(k):
        index = int(np.argmin(working))
        row, col = divmod(index, w)
        centers.append((row, col))
        r0, r1 = max(row - suppression, 0), min(row + suppression + 1, h)
        c0, c1 = max(col - suppression, 0), min(col + suppression + 1, w)
        working[r0:r1, c0:c1] = np.inf
        if not np.isfinite(working).any():
            break
    return centers


def explain_frame(
    pipeline,
    frame: np.ndarray,
    top_k: int = 3,
) -> FrameExplanation:
    """Explain the pipeline's decision for one camera frame.

    Parameters
    ----------
    pipeline:
        A fitted :class:`repro.novelty.SaliencyNoveltyPipeline` (or
        compatible object exposing ``preprocess``, ``one_class``).
    frame:
        One ``(H, W)`` grayscale frame in [0, 1].
    top_k:
        Number of least-similar regions to report.
    """
    if not getattr(pipeline, "is_fitted", False):
        raise NotFittedError("explain_frame requires a fitted pipeline")
    frame = as_tensor(frame)
    if frame.ndim != 2:
        raise ShapeError(f"explain_frame expects one (H, W) frame, got {frame.shape}")

    if hasattr(pipeline, "run_plan"):
        # One plan run caches mask, reconstruction, and score together —
        # one CNN forward, one saliency cascade, one autoencoder pass —
        # where the explain path previously recomputed each from scratch.
        ctx = pipeline.run_plan(frame[None])
        vbp_image = ctx.masks[0]
        reconstruction = ctx.recon[0]
        score = float(ctx.scores[0])
    else:  # duck-typed pipelines without a compiled plan
        vbp_image = pipeline.preprocess(frame[None])[0]
        reconstruction = pipeline.one_class.reconstruct(vbp_image[None])[0]
        score = float(pipeline.one_class.score(vbp_image[None])[0])
    loss = pipeline.one_class._loss
    window = getattr(loss, "window_size", 7)
    window = min(window, min(frame.shape))
    if window % 2 == 0:
        window -= 1
    smap = ssim_map(vbp_image, reconstruction, window_size=max(window, 3))
    detector = pipeline.one_class.detector
    return FrameExplanation(
        frame=frame,
        vbp_image=vbp_image,
        reconstruction=reconstruction,
        ssim_map=smap,
        score=score,
        threshold=detector.threshold,
        is_novel=bool(detector.predict(np.array([score]))[0]),
        worst_regions=_local_minima_centers(smap, top_k, suppression=max(window, 3)),
    )
