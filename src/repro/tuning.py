"""Hyperparameter search over the one-class stage.

The paper fixes its autoencoder hyperparameters by hand; a user adapting
the pipeline to their own data will want to search them.  This module
provides a small, dependency-free grid search over
:class:`repro.novelty.AutoencoderConfig` fields (plus the loss choice),
evaluating each candidate end-to-end with
:func:`repro.novelty.evaluate_detector` and returning a sorted leaderboard.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.novelty.evaluation import evaluate_detector
from repro.novelty.framework import AutoencoderConfig, SaliencyNoveltyPipeline
from repro.utils.timer import Timer

#: AutoencoderConfig fields the grid may vary (plus the special "loss" key).
_TUNABLE = {"hidden", "epochs", "batch_size", "learning_rate", "percentile", "ssim_window"}


@dataclass(frozen=True)
class TrialResult:
    """One evaluated grid point."""

    params: Dict[str, object]
    auroc: float
    detection_rate: float
    false_positive_rate: float
    overlap: float
    seconds: float

    def summary_row(self) -> str:
        """One leaderboard line."""
        parts = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return (
            f"AUROC={self.auroc:6.3f}  detect={self.detection_rate:6.1%}  "
            f"FPR={self.false_positive_rate:5.1%}  overlap={self.overlap:5.3f}  "
            f"[{self.seconds:5.1f}s]  {parts}"
        )


def grid_search(
    prediction_model,
    image_shape,
    train_frames: np.ndarray,
    test_frames: np.ndarray,
    novel_frames: np.ndarray,
    grid: Dict[str, Sequence],
    base_config: AutoencoderConfig = None,
    rng: int = 0,
) -> List[TrialResult]:
    """Evaluate every combination in ``grid`` and rank by AUROC.

    Parameters
    ----------
    prediction_model:
        The trained steering CNN shared by all candidates (so the search
        varies only the one-class stage).
    grid:
        Mapping of parameter name to candidate values.  Keys may be any
        :class:`AutoencoderConfig` field in {hidden, epochs, batch_size,
        learning_rate, percentile, ssim_window} plus ``"loss"``
        ("ssim"/"mse"/"msssim").
    base_config:
        Defaults for parameters not in the grid.

    Returns
    -------
    Trials sorted best-first by (AUROC, detection rate).
    """
    if not grid:
        raise ConfigurationError("grid must contain at least one parameter")
    unknown = set(grid) - _TUNABLE - {"loss"}
    if unknown:
        raise ConfigurationError(
            f"unknown grid parameters {sorted(unknown)}; "
            f"tunable: {sorted(_TUNABLE)} plus 'loss'"
        )
    for key, values in grid.items():
        if not values:
            raise ConfigurationError(f"grid parameter {key!r} has no candidate values")

    base = base_config or AutoencoderConfig()
    names = list(grid)
    trials: List[TrialResult] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        loss = params.pop("loss", "ssim")
        config = replace(base, **params) if params else base

        timer = Timer()
        with timer:
            pipeline = SaliencyNoveltyPipeline(
                prediction_model, image_shape, loss=loss, config=config, rng=rng
            )
            pipeline.fit(train_frames)
            result = evaluate_detector(pipeline, test_frames, novel_frames)
        trials.append(
            TrialResult(
                params={**dict(zip(names, combo))},
                auroc=result.auroc,
                detection_rate=result.detection_rate,
                false_positive_rate=result.false_positive_rate,
                overlap=result.overlap,
                seconds=timer.total,
            )
        )
    trials.sort(key=lambda t: (t.auroc, t.detection_rate), reverse=True)
    return trials


def render_leaderboard(trials: Sequence[TrialResult], top: int = None) -> str:
    """Format trials (already sorted) as a text leaderboard."""
    chosen = trials if top is None else trials[:top]
    lines = [f"{'rank':>4}  result"]
    for rank, trial in enumerate(chosen, start=1):
        lines.append(f"{rank:>4}  {trial.summary_row()}")
    return "\n".join(lines)
