"""Procedural rendering primitives shared by both dataset renderers.

Everything here is vectorized over whole images: value-noise textures,
cloud fields, rectangle sprites, and the row-wise ground-plane fill that
paints roads from :class:`repro.datasets.road_geometry.RoadGeometry`
outputs.  Images are float64 grayscale in [0, 1].
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.image.ops import resize_bilinear
from repro.nn.backend.policy import FLOAT64
from repro.utils.seeding import RngLike, derive_rng


def value_noise(
    shape: Tuple[int, int],
    cells: Tuple[int, int],
    rng: RngLike = None,
    octaves: int = 1,
) -> np.ndarray:
    """Smooth value noise in [0, 1]: random coarse grids upsampled bilinearly.

    ``cells`` controls the base frequency; additional ``octaves`` add
    halved-amplitude, doubled-frequency detail (classic fractal noise).
    """
    h, w = int(shape[0]), int(shape[1])
    ch, cw = int(cells[0]), int(cells[1])
    if ch < 2 or cw < 2:
        raise ConfigurationError(f"cells must be >= 2, got {cells}")
    if octaves < 1:
        raise ConfigurationError(f"octaves must be >= 1, got {octaves}")
    generator = derive_rng(rng)
    out = np.zeros((h, w), dtype=FLOAT64)
    amplitude, total = 1.0, 0.0
    for octave in range(octaves):
        grid_h = min(ch * 2**octave, h)
        grid_w = min(cw * 2**octave, w)
        coarse = generator.random((grid_h, grid_w))
        out += amplitude * resize_bilinear(coarse, (h, w))
        total += amplitude
        amplitude *= 0.5
    return out / total


def cloud_field(
    shape: Tuple[int, int], rng: RngLike = None, coverage: float = 0.45
) -> np.ndarray:
    """A soft cloud-brightness field in [0, 1] (0 = clear sky).

    Thresholded smooth noise with soft shoulders — the classic "irrelevant
    feature" the paper says should not influence steering.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ConfigurationError(f"coverage must be in [0, 1], got {coverage}")
    noise = value_noise(shape, cells=(3, 5), rng=rng, octaves=3)
    threshold = np.quantile(noise, 1.0 - coverage) if coverage > 0 else noise.max() + 1.0
    soft = (noise - threshold) / 0.15
    return np.clip(soft, 0.0, 1.0)


def draw_rectangle(
    image: np.ndarray,
    top: int,
    left: int,
    height: int,
    width: int,
    value: float,
    blend: float = 1.0,
) -> None:
    """Paint an axis-aligned rectangle in place, clipped to the image.

    ``blend`` mixes the rectangle value with the existing content
    (1.0 = opaque).
    """
    if height < 1 or width < 1:
        return
    h, w = image.shape
    r0, r1 = max(top, 0), min(top + height, h)
    c0, c1 = max(left, 0), min(left + width, w)
    if r0 >= r1 or c0 >= c1:
        return
    region = image[r0:r1, c0:c1]
    image[r0:r1, c0:c1] = (1.0 - blend) * region + blend * value


def ground_fill(
    shape: Tuple[int, int],
    rows: np.ndarray,
    left_cols: np.ndarray,
    right_cols: np.ndarray,
) -> np.ndarray:
    """Boolean mask of the region between two per-row column boundaries.

    Used to paint the road surface and to produce ground-truth road masks
    for the saliency-alignment experiments.
    """
    h, w = int(shape[0]), int(shape[1])
    mask = np.zeros((h, w), dtype=bool)
    cols = np.arange(w)[None, :]
    rows = np.asarray(rows, dtype=int)
    inside = (cols >= left_cols[:, None]) & (cols <= right_cols[:, None])
    valid = (rows >= 0) & (rows < h)
    mask[rows[valid]] = inside[valid]
    return mask


def band_mask(
    shape: Tuple[int, int],
    rows: np.ndarray,
    center_cols: np.ndarray,
    half_width_px: np.ndarray,
    dash: Tuple[np.ndarray, float, float] = None,
) -> np.ndarray:
    """Boolean mask of a (possibly dashed) band following per-row centers.

    Parameters
    ----------
    center_cols, half_width_px:
        Per-row band center column and half width in pixels.
    dash:
        Optional ``(distances, period, duty)`` — rows whose ground distance
        falls in the "off" phase of the dash cycle are excluded, producing
        dashed lane markings.
    """
    h, w = int(shape[0]), int(shape[1])
    mask = np.zeros((h, w), dtype=bool)
    cols = np.arange(w)[None, :]
    rows = np.asarray(rows, dtype=int)
    near = np.abs(cols - center_cols[:, None]) <= half_width_px[:, None]
    if dash is not None:
        distances, period, duty = dash
        if period <= 0 or not 0.0 < duty <= 1.0:
            raise ConfigurationError(f"invalid dash spec: period={period}, duty={duty}")
        on = (np.mod(distances, period) / period) < duty
        near &= on[:, None]
    valid = (rows >= 0) & (rows < h)
    mask[rows[valid]] = near[valid]
    return mask


def vignette(shape: Tuple[int, int], strength: float = 0.15) -> np.ndarray:
    """Multiplicative vignette field (1 at center, darker at corners)."""
    if not 0.0 <= strength < 1.0:
        raise ConfigurationError(f"strength must be in [0, 1), got {strength}")
    h, w = int(shape[0]), int(shape[1])
    ys = np.linspace(-1.0, 1.0, h)[:, None]
    xs = np.linspace(-1.0, 1.0, w)[None, :]
    radius2 = ys**2 + xs**2
    return 1.0 - strength * radius2 / 2.0
