"""Loader for real driving data in the Udacity dataset layout.

The reproduction itself runs on synthetic data (no network access to fetch
the 45k-image Udacity set), but a user who *has* the dataset — or any
directory of frames plus a steering log — can run every pipeline in this
repo on it through this module.

Expected layout (matching Udacity's ``CH2`` export and common dashcam
dumps):

* a CSV driving log with a header row containing at least a frame-filename
  column and a steering-angle column (names configurable; Udacity uses
  ``frame_id``/``filename`` and ``steering_angle``/``angle``);
* an image directory with the referenced frames.  Supported formats are
  binary PGM (``.pgm``) and numpy arrays (``.npy`` holding ``(H, W)`` or
  ``(H, W, 3)`` data) — both dependency-free to read.  PNG/JPEG decoding
  needs an imaging library this environment does not provide; convert with
  any standard tool first.

Frames pass through the paper's preprocessing
(:func:`repro.image.preprocess_frame`): grayscale → resize → [0, 1].
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.image.ops import preprocess_frame
from repro.nn.backend.policy import FLOAT64, as_tensor
from repro.viz import load_pgm

#: Column-name candidates accepted without explicit configuration.
_FRAME_COLUMNS = ("filename", "frame_id", "frame", "image", "center")
_ANGLE_COLUMNS = ("steering_angle", "angle", "steering")


@dataclass(frozen=True)
class DrivingLogEntry:
    """One row of a driving log: a frame path and its steering label."""

    frame_path: Path
    steering_angle: float


def _resolve_column(header: Sequence[str], candidates: Sequence[str], kind: str, explicit: Optional[str]) -> str:
    if explicit is not None:
        if explicit not in header:
            raise ConfigurationError(
                f"{kind} column {explicit!r} not in CSV header {list(header)}"
            )
        return explicit
    for candidate in candidates:
        if candidate in header:
            return candidate
    raise ConfigurationError(
        f"could not find a {kind} column in CSV header {list(header)}; "
        f"pass one explicitly (candidates tried: {list(candidates)})"
    )


def read_driving_log(
    csv_path: Union[str, Path],
    frames_dir: Union[str, Path, None] = None,
    frame_column: Optional[str] = None,
    angle_column: Optional[str] = None,
) -> List[DrivingLogEntry]:
    """Parse a driving-log CSV into frame-path / angle entries.

    Relative frame paths are resolved against ``frames_dir`` (defaulting to
    the CSV's own directory).  Rows whose frame file does not exist raise
    immediately with the offending path — silent sample loss would bias any
    experiment run on the result.
    """
    csv_path = Path(csv_path)
    if not csv_path.exists():
        raise ConfigurationError(f"driving log {csv_path} does not exist")
    base = Path(frames_dir) if frames_dir is not None else csv_path.parent

    entries: List[DrivingLogEntry] = []
    with open(csv_path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ConfigurationError(f"driving log {csv_path} has no header row")
        frame_col = _resolve_column(reader.fieldnames, _FRAME_COLUMNS, "frame", frame_column)
        angle_col = _resolve_column(reader.fieldnames, _ANGLE_COLUMNS, "angle", angle_column)
        for line_number, row in enumerate(reader, start=2):
            raw_path = (row[frame_col] or "").strip()
            raw_angle = (row[angle_col] or "").strip()
            if not raw_path:
                raise ConfigurationError(f"{csv_path}:{line_number}: empty frame path")
            try:
                angle = float(raw_angle)
            except ValueError:
                raise ConfigurationError(
                    f"{csv_path}:{line_number}: invalid steering angle {raw_angle!r}"
                ) from None
            frame_path = Path(raw_path)
            if not frame_path.is_absolute():
                frame_path = base / frame_path
            if not frame_path.exists():
                raise ConfigurationError(
                    f"{csv_path}:{line_number}: frame {frame_path} does not exist"
                )
            entries.append(DrivingLogEntry(frame_path=frame_path, steering_angle=angle))
    if not entries:
        raise ConfigurationError(f"driving log {csv_path} contains no data rows")
    return entries


def load_frame(path: Union[str, Path]) -> np.ndarray:
    """Load one raw frame (``.pgm`` or ``.npy``) as a float array."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".pgm":
        return load_pgm(path)
    if suffix == ".npy":
        data = np.load(path)
        if data.ndim not in (2, 3):
            raise ShapeError(f"{path}: expected (H, W) or (H, W, 3) data, got {data.shape}")
        return as_tensor(data)
    raise ConfigurationError(
        f"unsupported frame format {suffix!r} for {path}; supported: .pgm, .npy"
    )


def load_dataset(
    csv_path: Union[str, Path],
    frames_dir: Union[str, Path, None] = None,
    size: Tuple[int, int] = (60, 160),
    limit: Optional[int] = None,
    frame_column: Optional[str] = None,
    angle_column: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Load and preprocess a real driving dataset.

    Returns ``(frames, angles)`` where ``frames`` is ``(N, H, W)`` grayscale
    in [0, 1] at the requested ``size`` (the paper's 60x160 by default) and
    ``angles`` is ``(N,)``.  ``limit`` caps the number of rows loaded (the
    full Udacity set is 45k frames).

    The output plugs directly into the pipelines::

        frames, angles = load_dataset("driving_log.csv", size=(60, 160))
        model = PilotNet(PilotNetConfig.for_image((60, 160)))
        train_pilotnet(model, frames, angles, ...)
    """
    entries = read_driving_log(
        csv_path, frames_dir, frame_column=frame_column, angle_column=angle_column
    )
    if limit is not None:
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        entries = entries[:limit]

    frames = np.empty((len(entries),) + tuple(size), dtype=FLOAT64)
    angles = np.empty(len(entries), dtype=FLOAT64)
    for i, entry in enumerate(entries):
        frames[i] = preprocess_frame(load_frame(entry.frame_path), size=size)
        angles[i] = entry.steering_angle
    return frames, angles
