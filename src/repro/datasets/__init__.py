"""Synthetic driving datasets and input perturbations.

The paper evaluates on two datasets this environment cannot provide — the
public Udacity driving set (``DSU``, real Mountain View footage) and the
authors' in-house indoor model-car track (``DSI``).  This package renders
procedural surrogates with the properties the experiments actually exercise:

* :class:`SyntheticUdacity` — outdoor scenes: perspective roads with lane
  markings, textured terrain, sky/cloud clutter, and brightness variation
  (the "irrelevant features" the paper argues raw-image autoencoders trip
  over);
* :class:`SyntheticIndoor` — indoor scenes: a tape-marked track on a clean
  floor with walls and furniture, visually disjoint from the outdoor set.

Each rendered sample carries the frame, the ground-truth steering angle
(derived from the road curvature), and a ground-truth road-region mask that
lets the benchmarks *quantify* the paper's qualitative saliency figures.

:mod:`repro.datasets.perturbations` implements the paper's image
modifications (Gaussian noise, brightness, and the rotation/translation/
occlusion/blur family its introduction cites as adversarial threats), and
:mod:`repro.datasets.adversarial` implements FGSM on the numpy network.
"""

from repro.datasets.augmentation import augment_with_flips, horizontal_flip, random_flip_epoch
from repro.datasets.base import DrivingDataset, DrivingSample, RenderedBatch
from repro.datasets.perturbations import (
    add_gaussian_noise,
    adjust_brightness,
    adjust_contrast,
    apply_blur,
    calibrate_brightness_to_mse,
    calibrate_noise_to_mse,
    occlude,
    rotate,
    salt_and_pepper,
    translate,
)
from repro.datasets.road_geometry import CameraModel, RoadGeometry, TrackProfile
from repro.datasets.weather import add_fog, add_rain, add_shadow
from repro.datasets.store import load_batch, save_batch
from repro.datasets.synthetic_indoor import SyntheticIndoor
from repro.datasets.synthetic_udacity import SyntheticUdacity

__all__ = [
    "augment_with_flips",
    "horizontal_flip",
    "random_flip_epoch",
    "DrivingDataset",
    "DrivingSample",
    "RenderedBatch",
    "add_gaussian_noise",
    "adjust_brightness",
    "adjust_contrast",
    "salt_and_pepper",
    "apply_blur",
    "calibrate_brightness_to_mse",
    "calibrate_noise_to_mse",
    "occlude",
    "rotate",
    "translate",
    "CameraModel",
    "RoadGeometry",
    "TrackProfile",
    "add_fog",
    "add_rain",
    "add_shadow",
    "SyntheticIndoor",
    "SyntheticUdacity",
    "load_batch",
    "save_batch",
]
