"""Synthetic indoor racing scenes — the in-house (DSI) surrogate.

Emulates the authors' model-car environment: a track laid out with bright
tape on an indoor floor, with walls and furniture as backdrop.  Relative to
the outdoor surrogate, scenes are darker, far less textured, and follow a
different geometry (narrower track, sharper curvature) — a visually
disjoint driving domain, which is exactly the role DSI plays in the paper's
dataset-comparison experiment (one dataset is the target class, the other
is novel).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DrivingDataset, DrivingSample
from repro.datasets.rendering import band_mask, draw_rectangle, ground_fill, value_noise
from repro.datasets.road_geometry import CameraModel, RoadGeometry
from repro.nn.backend.policy import FLOAT64


class SyntheticIndoor(DrivingDataset):
    """Indoor tape-marked track scenes with clean, dark surroundings."""

    name = "DSI"

    def _build_geometry(self) -> RoadGeometry:
        # A model car: narrow track, tighter turns, stronger steering gain.
        return RoadGeometry(
            self.camera,
            road_half_width=1.0,
            max_curvature=0.09,
            max_offset=0.3,
            max_heading=0.1,
            steering_gain=9.0,
        )

    def _render_scene(self, profile, rng: np.random.Generator) -> DrivingSample:
        h, w = self.image_shape
        camera = self.camera

        frame = np.zeros((h, w), dtype=FLOAT64)
        horizon = int(np.floor(camera.horizon_row))

        # --- wall above the horizon with a baseboard stripe --------------
        wall_value = rng.uniform(0.28, 0.4)
        frame[: horizon + 1] = wall_value
        baseboard_rows = max(h // 30, 1)
        draw_rectangle(frame, horizon - baseboard_rows + 1, 0, baseboard_rows, w,
                       value=wall_value * 0.6)

        # --- furniture silhouettes against the wall ----------------------
        for _ in range(rng.integers(0, 3)):
            fw = int(rng.integers(max(w // 12, 2), max(w // 5, 3)))
            fh = int(rng.integers(max(h // 12, 2), max(horizon // 2, 3)))
            col = int(rng.integers(0, max(w - fw, 1)))
            draw_rectangle(frame, horizon - fh + 1, col, fh, fw,
                           value=float(rng.uniform(0.12, 0.3)))

        # --- floor: nearly uniform with faint texture --------------------
        rows = camera.rows_below_horizon()
        floor_value = rng.uniform(0.42, 0.5)
        floor_texture = 0.02 * value_noise((h, w), cells=(3, 5), rng=rng)
        frame[rows[0]:] = floor_value + floor_texture[rows[0]:]

        # --- track: slightly darker lane between bright tape lines -------
        distances, left, right = self.geometry.road_extent(profile, rows)
        track = ground_fill((h, w), rows, left, right)
        frame[track] = floor_value - 0.06

        tape_half = np.maximum(camera.focal_u * 0.06 / distances, 0.5)
        tape = band_mask((h, w), rows, left, tape_half) | band_mask(
            (h, w), rows, right, tape_half
        )
        below_horizon = np.zeros((h, w), dtype=bool)
        below_horizon[rows[0]:] = True
        markings = tape & below_horizon
        frame[markings] = rng.uniform(0.88, 0.96)

        # Mild global lighting variation; indoor lighting is stable, so the
        # range is much narrower than the outdoor surrogate's.
        frame *= rng.uniform(0.9, 1.05)
        frame = np.clip(frame, 0.0, 1.0)

        return DrivingSample(
            frame=frame,
            steering_angle=self.geometry.steering_angle(profile),
            road_mask=track,
            marking_mask=markings,
        )
