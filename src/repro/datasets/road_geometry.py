"""Road geometry: curvature profiles, steering labels, camera projection.

The steering-angle regression task needs a ground truth that is a *function
of visible road structure* — that is what lets a trained network's saliency
concentrate on the road (Figure 2 of the paper).  We model the road ahead of
the camera as a constant-curvature arc on a flat ground plane:

* lateral centerline offset at forward distance ``d``:
  ``c(d) = offset + tan(heading) * d + 0.5 * curvature * d**2``
  (the standard clothoid small-angle approximation);
* the steering label is the Ackermann angle for that curvature plus a
  proportional correction for the car's lane offset and heading error —
  exactly the control law a lane-keeping driver executes.

:class:`CameraModel` is a pinhole camera over a flat ground plane: forward
distance ``d`` maps to image row ``horizon + focal_v / d`` and lateral
offset ``x`` maps to column ``cx + focal_u * x / d``.  The renderers invert
this per pixel row, which vectorizes scene drawing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.backend.policy import as_tensor
from repro.utils.seeding import RngLike, derive_rng


@dataclass(frozen=True)
class CameraModel:
    """Pinhole camera over a flat ground plane.

    Attributes
    ----------
    image_shape:
        ``(H, W)`` of rendered frames.
    horizon_frac:
        Vertical position of the horizon as a fraction of image height.
    focal_v, focal_u:
        Vertical/horizontal projection constants (in pixel·meters): a ground
        point at forward distance ``d`` and lateral offset ``x`` projects to
        ``row = horizon + focal_v / d``, ``col = cx + focal_u * x / d``.
    min_distance:
        Closest ground distance rendered (the bottom image row).
    """

    image_shape: Tuple[int, int]
    horizon_frac: float = 0.35
    focal_v: float = 18.0
    focal_u: float = 24.0
    min_distance: float = 1.5

    def __post_init__(self) -> None:
        h, w = self.image_shape
        if h < 4 or w < 4:
            raise ConfigurationError(f"image too small: {self.image_shape}")
        if not 0.05 <= self.horizon_frac <= 0.9:
            raise ConfigurationError(f"horizon_frac out of range: {self.horizon_frac}")
        if self.focal_v <= 0 or self.focal_u <= 0 or self.min_distance <= 0:
            raise ConfigurationError("camera constants must be positive")

    @property
    def horizon_row(self) -> float:
        """Image row of the horizon line."""
        return self.image_shape[0] * self.horizon_frac

    @property
    def center_col(self) -> float:
        """Principal-point column."""
        return (self.image_shape[1] - 1) / 2.0

    def rows_below_horizon(self) -> np.ndarray:
        """Integer rows strictly below the horizon (the drawable ground)."""
        h = self.image_shape[0]
        first = int(np.floor(self.horizon_row)) + 1
        return np.arange(max(first, 0), h)

    def row_to_distance(self, rows: np.ndarray) -> np.ndarray:
        """Ground distance seen at each image row (rows below horizon).

        Distances are clipped below at ``min_distance`` so the bottom rows
        stay finite and well-conditioned.
        """
        rows = as_tensor(rows)
        delta = np.maximum(rows - self.horizon_row, 1e-6)
        return np.maximum(self.focal_v / delta, self.min_distance)

    def ground_to_column(self, x: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Image column of lateral ground offset ``x`` at distance ``d``."""
        return self.center_col + self.focal_u * np.asarray(x) / np.asarray(d)

    def column_to_lateral(self, cols: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Lateral ground offset imaged at column ``cols``, distance ``d``."""
        return (as_tensor(cols) - self.center_col) * np.asarray(d) / self.focal_u


@dataclass(frozen=True)
class TrackProfile:
    """One viewing situation on a track.

    Attributes
    ----------
    curvature:
        Road curvature (1/m); positive bends right in image coordinates.
    lane_offset:
        Car's lateral displacement from the lane center (m).
    heading:
        Car's heading error relative to the road tangent (rad).
    """

    curvature: float
    lane_offset: float
    heading: float


class RoadGeometry:
    """Samples viewing situations and computes labels and road shape.

    Parameters
    ----------
    camera:
        Projection model shared with the renderer.
    road_half_width:
        Half the drivable width (m).
    max_curvature, max_offset, max_heading:
        Sampling ranges for :meth:`sample_profile`.
    steering_gain, offset_gain, heading_gain:
        Control-law constants mapping geometry to the steering label.
    """

    def __init__(
        self,
        camera: CameraModel,
        road_half_width: float = 1.8,
        max_curvature: float = 0.05,
        max_offset: float = 0.5,
        max_heading: float = 0.08,
        steering_gain: float = 12.0,
        offset_gain: float = 0.35,
        heading_gain: float = 1.2,
    ) -> None:
        if road_half_width <= 0:
            raise ConfigurationError(f"road_half_width must be positive, got {road_half_width}")
        if max_curvature < 0 or max_offset < 0 or max_heading < 0:
            raise ConfigurationError("sampling ranges must be non-negative")
        self.camera = camera
        self.road_half_width = float(road_half_width)
        self.max_curvature = float(max_curvature)
        self.max_offset = float(max_offset)
        self.max_heading = float(max_heading)
        self.steering_gain = float(steering_gain)
        self.offset_gain = float(offset_gain)
        self.heading_gain = float(heading_gain)

    def sample_profile(self, rng: RngLike = None) -> TrackProfile:
        """Draw a random viewing situation (uniform over the ranges)."""
        generator = derive_rng(rng)
        return TrackProfile(
            curvature=float(generator.uniform(-self.max_curvature, self.max_curvature)),
            lane_offset=float(generator.uniform(-self.max_offset, self.max_offset)),
            heading=float(generator.uniform(-self.max_heading, self.max_heading)),
        )

    def centerline(self, profile: TrackProfile, distances: np.ndarray) -> np.ndarray:
        """Lateral centerline offset (camera frame) at each forward distance."""
        d = as_tensor(distances)
        return (
            -profile.lane_offset
            + np.tan(-profile.heading) * d
            + 0.5 * profile.curvature * d**2
        )

    def steering_angle(self, profile: TrackProfile) -> float:
        """Lane-keeping steering label for a viewing situation.

        Combines the curvature feed-forward term with proportional
        corrections steering the car back toward the lane center.
        """
        return float(
            self.steering_gain * profile.curvature
            - self.offset_gain * profile.lane_offset
            - self.heading_gain * profile.heading
        )

    def simulate_drive(
        self,
        n_frames: int,
        rng: RngLike = None,
        dt: float = 0.1,
        curvature_tau: float = 3.0,
        control_tau: float = 1.5,
    ) -> "list[TrackProfile]":
        """Evolve a viewing situation over time — a temporally coherent drive.

        Road curvature follows an Ornstein-Uhlenbeck process (curves begin,
        persist, and relax back to straight), while the car's lane offset
        and heading error follow their own mean-reverting processes — a
        driver continuously correcting toward the lane center.  Consecutive
        profiles are therefore strongly correlated, unlike
        :meth:`sample_profile`'s i.i.d. draws.

        Parameters
        ----------
        n_frames:
            Number of time steps to simulate.
        dt:
            Time step in seconds.
        curvature_tau, control_tau:
            Mean-reversion time constants for the road curvature and the
            car-state (offset/heading) processes.
        """
        if n_frames < 1:
            raise ConfigurationError(f"n_frames must be >= 1, got {n_frames}")
        if dt <= 0 or curvature_tau <= 0 or control_tau <= 0:
            raise ConfigurationError("dt and time constants must be positive")
        generator = derive_rng(rng, stream="drive")
        profile = self.sample_profile(generator)
        profiles = [profile]
        # Noise scales chosen so the stationary std sits well inside the
        # sampling ranges (OU stationary std = sigma * sqrt(tau / 2)).
        curvature_sigma = self.max_curvature * np.sqrt(2.0 / curvature_tau) * 0.5
        offset_sigma = self.max_offset * np.sqrt(2.0 / control_tau) * 0.5
        heading_sigma = self.max_heading * np.sqrt(2.0 / control_tau) * 0.5
        for _ in range(n_frames - 1):
            curvature = self._ou_step(
                profile.curvature, curvature_tau, curvature_sigma, dt, generator
            )
            offset = self._ou_step(
                profile.lane_offset, control_tau, offset_sigma, dt, generator
            )
            heading = self._ou_step(
                profile.heading, control_tau, heading_sigma, dt, generator
            )
            profile = TrackProfile(
                curvature=float(np.clip(curvature, -self.max_curvature, self.max_curvature)),
                lane_offset=float(np.clip(offset, -self.max_offset, self.max_offset)),
                heading=float(np.clip(heading, -self.max_heading, self.max_heading)),
            )
            profiles.append(profile)
        return profiles

    @staticmethod
    def _ou_step(
        value: float, tau: float, sigma: float, dt: float, rng: np.random.Generator
    ) -> float:
        """One Euler-Maruyama step of a zero-mean Ornstein-Uhlenbeck process."""
        return value - (value / tau) * dt + sigma * np.sqrt(dt) * rng.normal()

    def road_extent(
        self, profile: TrackProfile, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-row road geometry in image coordinates.

        Returns ``(distances, left_cols, right_cols)`` — for each image row
        below the horizon, the ground distance it sees and the columns of
        the road's left/right edges.
        """
        distances = self.camera.row_to_distance(rows)
        center = self.centerline(profile, distances)
        left = self.camera.ground_to_column(center - self.road_half_width, distances)
        right = self.camera.ground_to_column(center + self.road_half_width, distances)
        return distances, left, right
