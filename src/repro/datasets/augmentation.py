"""Training-data augmentation for the steering task.

The synthetic road geometry is left/right symmetric: mirroring a frame
horizontally produces a valid scene whose correct steering command is the
negation of the original (curvature, lane offset and heading all flip
sign).  Horizontal-flip augmentation therefore doubles the effective
dataset for free and, more importantly, removes any left/right bias from
the curvature distribution the renderer happened to sample — the standard
trick used when training real lane-keeping networks (including the PilotNet
lineage this repo reproduces).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor
from repro.utils.seeding import RngLike, derive_rng


def horizontal_flip(frames: np.ndarray, angles: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mirror frames left-right and negate the steering labels."""
    frames = as_tensor(frames)
    angles = as_tensor(angles)
    if frames.ndim != 3:
        raise ShapeError(f"horizontal_flip expects (N, H, W) frames, got {frames.shape}")
    if angles.shape != (frames.shape[0],):
        raise ShapeError(
            f"angles must be ({frames.shape[0]},), got {angles.shape}"
        )
    return frames[:, :, ::-1].copy(), -angles


def augment_with_flips(
    frames: np.ndarray, angles: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the originals with their mirrored copies (2N samples)."""
    flipped_frames, flipped_angles = horizontal_flip(frames, angles)
    return (
        np.concatenate([frames, flipped_frames]),
        np.concatenate([as_tensor(angles), flipped_angles]),
    )


def random_flip_epoch(
    frames: np.ndarray, angles: np.ndarray, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Flip a random half of the batch in place of full doubling.

    Keeps the dataset size constant (useful when memory, not samples, is
    the constraint) while still balancing the left/right statistics in
    expectation.
    """
    frames = as_tensor(frames)
    angles = as_tensor(angles)
    if frames.ndim != 3:
        raise ShapeError(f"random_flip_epoch expects (N, H, W) frames, got {frames.shape}")
    generator = derive_rng(rng, stream="flip")
    mask = generator.random(frames.shape[0]) < 0.5
    out_frames = frames.copy()
    out_angles = angles.copy()
    out_frames[mask] = frames[mask][:, :, ::-1]
    out_angles[mask] = -angles[mask]
    return out_frames, out_angles
