"""Persistence for rendered batches.

Rendering is deterministic, so batches are *re-creatable* — but paper-scale
batches take minutes to render, and sharing the exact arrays used in an
experiment beats sharing a recipe.  These helpers store a
:class:`repro.datasets.RenderedBatch` as a compressed ``.npz`` with a
format marker, and load it back with validation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.base import RenderedBatch
from repro.exceptions import SerializationError
from repro.nn.backend.policy import as_tensor

#: Format marker written into every batch file.
_FORMAT = "repro.rendered_batch.v1"


def save_batch(batch: RenderedBatch, path: Union[str, Path]) -> Path:
    """Write a rendered batch to a compressed ``.npz`` file."""
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            format=np.array(_FORMAT),
            frames=batch.frames,
            angles=batch.angles,
            road_masks=batch.road_masks,
            marking_masks=batch.marking_masks,
        )
    except OSError as exc:
        raise SerializationError(f"failed to save batch to {path}: {exc}") from exc
    return path


def load_batch(path: Union[str, Path]) -> RenderedBatch:
    """Load a batch written by :func:`save_batch` (format-checked)."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"batch file {path} does not exist")
    try:
        with np.load(path) as data:
            if "format" not in data.files or str(data["format"]) != _FORMAT:
                raise SerializationError(
                    f"{path} is not a rendered-batch file (missing format marker)"
                )
            batch = RenderedBatch(
                frames=as_tensor(data["frames"]),
                angles=as_tensor(data["angles"]),
                road_masks=np.asarray(data["road_masks"], dtype=bool),
                marking_masks=np.asarray(data["marking_masks"], dtype=bool),
            )
    except (OSError, ValueError, KeyError) as exc:
        raise SerializationError(f"failed to read batch {path}: {exc}") from exc
    n = batch.frames.shape[0]
    if not (
        batch.angles.shape == (n,)
        and batch.road_masks.shape == batch.frames.shape
        and batch.marking_masks.shape == batch.frames.shape
    ):
        raise SerializationError(f"{path} contains inconsistent array shapes")
    return batch
