"""Synthetic outdoor driving scenes — the Udacity (DSU) surrogate.

Emulates the statistics the paper attributes to real-world driving footage:
a perspective road with painted lane markings (the task-relevant structure),
surrounded by abundant task-*irrelevant* variation — textured terrain,
skies with clouds, roadside structures, and global brightness changes ("the
shape of clouds or the color of shop signs should not affect the steering
prediction").  That irrelevant variation is precisely what defeats the
raw-image MSE autoencoder baseline in the paper's Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DrivingDataset, DrivingSample
from repro.datasets.rendering import (
    band_mask,
    cloud_field,
    draw_rectangle,
    ground_fill,
    value_noise,
    vignette,
)
from repro.datasets.road_geometry import CameraModel, RoadGeometry
from repro.nn.backend.policy import FLOAT64


class SyntheticUdacity(DrivingDataset):
    """Outdoor road scenes with heavy background clutter.

    Scene recipe per sample (all randomized under the per-sample seed):
    sky gradient + cloud field above the horizon; fractal-noise terrain
    below it; an asphalt road whose centerline follows the sampled
    :class:`TrackProfile`, with solid edge lines and a dashed center line;
    0-3 distant building/sign rectangles; global brightness in
    [0.7, 1.15] and a mild vignette.
    """

    name = "DSU"

    def _build_geometry(self) -> RoadGeometry:
        return RoadGeometry(
            self.camera,
            road_half_width=1.8,
            max_curvature=0.05,
            max_offset=0.5,
            max_heading=0.08,
        )

    def _render_scene(self, profile, rng: np.random.Generator) -> DrivingSample:
        h, w = self.image_shape
        camera = self.camera

        frame = np.zeros((h, w), dtype=FLOAT64)
        horizon = int(np.floor(camera.horizon_row))

        # --- sky: vertical gradient plus clouds -------------------------
        sky_rows = max(horizon + 1, 1)
        base_sky = rng.uniform(0.55, 0.8)
        gradient = np.linspace(base_sky, base_sky - 0.15, sky_rows)[:, None]
        frame[:sky_rows] = gradient
        clouds = cloud_field((sky_rows, w), rng=rng, coverage=rng.uniform(0.2, 0.6))
        frame[:sky_rows] += 0.25 * clouds
        frame[:sky_rows] = np.clip(frame[:sky_rows], 0.0, 1.0)

        # --- terrain: fractal noise below the horizon --------------------
        rows = camera.rows_below_horizon()
        terrain = 0.25 + 0.3 * value_noise((h, w), cells=(4, 8), rng=rng, octaves=3)
        frame[rows[0]:] = terrain[rows[0]:]

        # --- road surface and markings -----------------------------------
        distances, left, right = self.geometry.road_extent(profile, rows)
        road = ground_fill((h, w), rows, left, right)
        asphalt = rng.uniform(0.38, 0.48)
        road_texture = 0.05 * value_noise((h, w), cells=(6, 12), rng=rng)
        frame[road] = asphalt + road_texture[road]

        # Line widths shrink with distance like every other ground feature.
        line_half = np.maximum(camera.focal_u * 0.08 / distances, 0.5)
        center_cols = (left + right) / 2.0
        edges = band_mask((h, w), rows, left, line_half) | band_mask(
            (h, w), rows, right, line_half
        )
        dashes = band_mask(
            (h, w), rows, center_cols, line_half, dash=(distances, 4.0, 0.5)
        )
        lane_paint = rng.uniform(0.85, 0.95)
        markings = (edges | dashes) & road
        frame[markings] = lane_paint

        # --- roadside structures (buildings / signs) ---------------------
        for _ in range(rng.integers(0, 4)):
            bw = int(rng.integers(max(w // 16, 2), max(w // 6, 3)))
            bh = int(rng.integers(max(h // 10, 2), max(horizon, 3)))
            side = rng.choice([-1, 1])
            col = int(camera.center_col + side * rng.integers(w // 4, w // 2 + 1))
            draw_rectangle(
                frame, horizon - bh + 1, col - bw // 2, bh, bw,
                value=float(rng.uniform(0.2, 0.75)),
            )

        # --- global photometric variation --------------------------------
        frame *= vignette((h, w), strength=0.12)
        frame *= rng.uniform(0.7, 1.15)
        frame = np.clip(frame, 0.0, 1.0)

        return DrivingSample(
            frame=frame,
            steering_angle=self.geometry.steering_angle(profile),
            road_mask=road,
            marking_mask=markings,
        )
