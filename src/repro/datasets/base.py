"""Dataset abstractions shared by the synthetic renderers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.datasets.road_geometry import CameraModel, RoadGeometry
from repro.exceptions import ConfigurationError
from repro.nn.backend.policy import FLOAT64
from repro.utils.seeding import RngLike, derive_rng


@dataclass(frozen=True)
class DrivingSample:
    """One rendered driving frame with its labels.

    Attributes
    ----------
    frame:
        Grayscale image in [0, 1], shape ``(H, W)``.
    steering_angle:
        Ground-truth steering label (the regression target).
    road_mask:
        Boolean ``(H, W)`` mask of the drivable road region — ground truth
        the real datasets lack, used to quantify saliency alignment.
    marking_mask:
        Boolean ``(H, W)`` mask of the painted lane markings / track tape —
        the "edge of the road" features the paper's Figure 2 says VBP
        should extract.
    """

    frame: np.ndarray
    steering_angle: float
    road_mask: np.ndarray
    marking_mask: np.ndarray


@dataclass(frozen=True)
class RenderedBatch:
    """A batch of rendered samples as stacked arrays."""

    frames: np.ndarray
    angles: np.ndarray
    road_masks: np.ndarray
    marking_masks: np.ndarray

    def __len__(self) -> int:
        return int(self.frames.shape[0])


class DrivingDataset:
    """Base class for procedural driving-scene renderers.

    Subclasses implement :meth:`_render_one`; the base class provides batch
    rendering with deterministic per-sample seeds, so
    ``dataset.render_batch(n, rng=42)`` is bit-reproducible and sample ``i``
    does not depend on how many other samples were drawn.
    """

    #: Human-readable dataset name ("DSU" / "DSI" in the paper's notation).
    name: str = "driving"

    def __init__(self, image_shape: Tuple[int, int], camera: CameraModel = None) -> None:
        h, w = int(image_shape[0]), int(image_shape[1])
        if h < 8 or w < 8:
            raise ConfigurationError(f"image_shape too small: {image_shape}")
        self.image_shape = (h, w)
        self.camera = camera or CameraModel(image_shape=(h, w))
        self.geometry = self._build_geometry()

    def _build_geometry(self) -> RoadGeometry:
        """Road geometry parameters; subclasses override to retune."""
        return RoadGeometry(self.camera)

    def _render_scene(
        self, profile, rng: np.random.Generator
    ) -> DrivingSample:
        """Render a frame for a given viewing situation (subclass hook)."""
        raise NotImplementedError

    def _render_one(self, rng: np.random.Generator) -> DrivingSample:
        """Render a frame with an i.i.d.-sampled viewing situation."""
        profile = self.geometry.sample_profile(rng)
        return self._render_scene(profile, rng)

    def sample(self, rng: RngLike = None) -> DrivingSample:
        """Render a single sample."""
        return self._render_one(derive_rng(rng))

    def render_drive(self, n_frames: int, rng: RngLike = None, dt: float = 0.1) -> RenderedBatch:
        """Render a temporally coherent drive of ``n_frames``.

        The viewing situation evolves smoothly (see
        :meth:`repro.datasets.RoadGeometry.simulate_drive`) while the scene
        decoration — clutter, textures, lighting — is drawn from a single
        per-drive seed, so consecutive frames depict the same stretch of
        world from a moving car rather than independent scenes.
        """
        if n_frames < 1:
            raise ConfigurationError(f"n_frames must be >= 1, got {n_frames}")
        root = derive_rng(rng, stream=f"{self.name}-drive")
        scene_seed = int(root.integers(0, 2**62))
        profiles = self.geometry.simulate_drive(n_frames, rng=root, dt=dt)

        frames = np.empty((n_frames,) + self.image_shape, dtype=FLOAT64)
        angles = np.empty(n_frames, dtype=FLOAT64)
        masks = np.empty((n_frames,) + self.image_shape, dtype=bool)
        markings = np.empty((n_frames,) + self.image_shape, dtype=bool)
        for i, profile in enumerate(profiles):
            # The same scene seed each frame keeps decoration static; only
            # the road geometry (and hence the label) changes.
            sample = self._render_scene(profile, np.random.default_rng(scene_seed))
            frames[i] = sample.frame
            angles[i] = sample.steering_angle
            masks[i] = sample.road_mask
            markings[i] = sample.marking_mask
        return RenderedBatch(
            frames=frames, angles=angles, road_masks=masks, marking_masks=markings
        )

    def render_batch(self, n: int, rng: RngLike = None) -> RenderedBatch:
        """Render ``n`` samples into stacked arrays."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        root = derive_rng(rng, stream=self.name)
        seeds = root.integers(0, 2**62, size=n)
        frames = np.empty((n,) + self.image_shape, dtype=FLOAT64)
        angles = np.empty(n, dtype=FLOAT64)
        masks = np.empty((n,) + self.image_shape, dtype=bool)
        markings = np.empty((n,) + self.image_shape, dtype=bool)
        for i, seed in enumerate(seeds):
            sample = self._render_one(np.random.default_rng(int(seed)))
            frames[i] = sample.frame
            angles[i] = sample.steering_angle
            masks[i] = sample.road_mask
            markings[i] = sample.marking_mask
        return RenderedBatch(
            frames=frames, angles=angles, road_masks=masks, marking_masks=markings
        )
