"""Adversarial example generation on the numpy network.

The paper's introduction motivates novelty detection partly by adversarial
fragility: "simple adversarial attacks such as the addition of noise can
drastically change the prediction of the model".  This module implements
the Fast Gradient Sign Method (Goodfellow et al.) against the steering
regressor, so the examples and benchmarks can test whether the detector
flags adversarially perturbed frames.

For a regression model, FGSM *maximizes* the prediction error by stepping
along the sign of the loss gradient with respect to the input.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.nn.losses import MSELoss
from repro.nn.model import Sequential


def fgsm_attack(
    model: Sequential,
    frames: np.ndarray,
    targets: np.ndarray,
    epsilon: float = 0.05,
    clip: bool = True,
) -> np.ndarray:
    """FGSM perturbation of driving frames against a steering regressor.

    Parameters
    ----------
    model:
        The trained prediction network (input ``(N, 1, H, W)``).
    frames:
        Clean frames, ``(N, H, W)`` or ``(N, 1, H, W)``, values in [0, 1].
    targets:
        True steering angles, shape ``(N,)`` or ``(N, 1)``.
    epsilon:
        L-infinity perturbation budget.

    Returns
    -------
    Perturbed frames with the same shape as the input.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    frames = as_tensor(frames)
    squeeze = frames.ndim == 3
    batch = frames[:, None, :, :] if squeeze else frames
    if batch.ndim != 4:
        raise ShapeError(f"frames must be (N, H, W) or (N, 1, H, W), got {frames.shape}")
    targets = as_tensor(targets).reshape(batch.shape[0], 1)

    loss = MSELoss()
    pred = model.forward(batch, training=False)
    loss.forward(pred, targets)
    grad_input = model.backward(loss.backward())
    model.zero_grad()  # parameter grads from this pass are not wanted

    adversarial = batch + epsilon * np.sign(grad_input)
    if clip:
        adversarial = np.clip(adversarial, 0.0, 1.0)
    return adversarial[:, 0, :, :] if squeeze else adversarial


def prediction_shift(model: Sequential, clean: np.ndarray, perturbed: np.ndarray) -> np.ndarray:
    """Absolute change in predicted steering angle caused by a perturbation.

    A quick measure of attack effectiveness used in the adversarial
    example script.
    """
    clean = as_tensor(clean)
    perturbed = as_tensor(perturbed)
    if clean.shape != perturbed.shape:
        raise ShapeError(
            f"clean and perturbed must align, got {clean.shape} vs {perturbed.shape}"
        )
    if clean.ndim == 3:
        clean = clean[:, None, :, :]
        perturbed = perturbed[:, None, :, :]
    before = model.predict(clean)[:, 0]
    after = model.predict(perturbed)[:, 0]
    return np.abs(after - before)
