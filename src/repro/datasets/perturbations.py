"""Image perturbations from the paper's experiments and threat model.

* :func:`add_gaussian_noise` and :func:`adjust_brightness` are the two
  modifications of Figure 3, with :func:`calibrate_noise_to_mse` /
  :func:`calibrate_brightness_to_mse` reproducing the figure's setup of
  engineering both to the *same* pixel-wise MSE (so only SSIM can tell them
  apart).
* :func:`rotate`, :func:`translate`, :func:`occlude` and :func:`apply_blur`
  cover the simple transformations the introduction cites as sufficient to
  fool CNNs (Engstrom et al.; DeepTest).

All functions are pure (they never modify their input) and operate on
``(H, W)`` images or ``(N, H, W)`` batches in [0, 1].
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.exceptions import ConfigurationError, ShapeError
from repro.image.filters import gaussian_blur
from repro.nn.backend.policy import as_tensor
from repro.utils.seeding import RngLike, derive_rng


def _check(image: np.ndarray, name: str) -> np.ndarray:
    image = as_tensor(image)
    if image.ndim not in (2, 3):
        raise ShapeError(f"{name} expects (H, W) or (N, H, W), got {image.shape}")
    return image


def add_gaussian_noise(
    image: np.ndarray, sigma: float, rng: RngLike = None, clip: bool = True
) -> np.ndarray:
    """Additive zero-mean Gaussian pixel noise with std ``sigma``."""
    image = _check(image, "add_gaussian_noise")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    noisy = image + derive_rng(rng).normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0.0, 1.0) if clip else noisy


def adjust_brightness(image: np.ndarray, delta: float, clip: bool = True) -> np.ndarray:
    """Uniform additive brightness shift by ``delta``."""
    image = _check(image, "adjust_brightness")
    out = image + delta
    return np.clip(out, 0.0, 1.0) if clip else out


def calibrate_noise_to_mse(
    image: np.ndarray, target_mse: float, rng: RngLike = None, tolerance: float = 0.02
) -> np.ndarray:
    """Gaussian-noised copy of ``image`` whose MSE from the original is
    ``target_mse`` (within ``tolerance``, relative).

    Without clipping, noise of std :math:`\\sigma` yields MSE
    :math:`\\sigma^2`; clipping to [0, 1] reduces it, so a short secant
    iteration adjusts :math:`\\sigma` until the clipped MSE matches.
    Reproduces the construction behind the paper's Figure 3.
    """
    image = _check(image, "calibrate_noise_to_mse")
    if target_mse <= 0:
        raise ConfigurationError(f"target_mse must be positive, got {target_mse}")
    generator = derive_rng(rng)
    noise_unit = generator.normal(0.0, 1.0, size=image.shape)

    sigma = np.sqrt(target_mse)
    for _ in range(40):
        noisy = np.clip(image + sigma * noise_unit, 0.0, 1.0)
        achieved = float(np.mean((noisy - image) ** 2))
        if abs(achieved - target_mse) <= tolerance * target_mse:
            return noisy
        # Clipping only shrinks the error, so scale sigma up proportionally.
        sigma *= np.sqrt(target_mse / max(achieved, 1e-12))
    raise ConfigurationError(
        f"could not calibrate noise to MSE {target_mse} "
        f"(achieved {achieved:.5f}); image may be too saturated"
    )


def calibrate_brightness_to_mse(
    image: np.ndarray, target_mse: float, tolerance: float = 0.02
) -> np.ndarray:
    """Brightness-shifted copy of ``image`` with the given MSE from it.

    Without clipping the MSE of a shift :math:`\\delta` is exactly
    :math:`\\delta^2`; clipping is handled by the same secant iteration as
    the noise calibration.
    """
    image = _check(image, "calibrate_brightness_to_mse")
    if target_mse <= 0:
        raise ConfigurationError(f"target_mse must be positive, got {target_mse}")
    delta = np.sqrt(target_mse)
    for _ in range(40):
        shifted = np.clip(image + delta, 0.0, 1.0)
        achieved = float(np.mean((shifted - image) ** 2))
        if abs(achieved - target_mse) <= tolerance * target_mse:
            return shifted
        delta *= np.sqrt(target_mse / max(achieved, 1e-12))
        if delta > 2.0:
            break
    raise ConfigurationError(
        f"could not calibrate brightness to MSE {target_mse} "
        f"(achieved {achieved:.5f}); image may be too bright to shift further"
    )


def rotate(image: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate about the image center (bilinear, nearest-edge padding)."""
    image = _check(image, "rotate")
    if image.ndim == 3:
        return np.stack([rotate(im, degrees) for im in image])
    return ndimage.rotate(
        image, degrees, reshape=False, order=1, mode="nearest"
    )


def translate(image: np.ndarray, shift_rows: int, shift_cols: int) -> np.ndarray:
    """Translate by whole pixels (nearest-edge padding)."""
    image = _check(image, "translate")
    shifts = (0,) * (image.ndim - 2) + (shift_rows, shift_cols)
    return ndimage.shift(image, shifts, order=0, mode="nearest")


def occlude(
    image: np.ndarray,
    size_frac: float = 0.25,
    value: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Black out (or paint) a random square patch covering ``size_frac``
    of each spatial dimension."""
    image = _check(image, "occlude").copy()
    if not 0.0 < size_frac <= 1.0:
        raise ConfigurationError(f"size_frac must be in (0, 1], got {size_frac}")
    generator = derive_rng(rng)
    h, w = image.shape[-2], image.shape[-1]
    ph, pw = max(int(h * size_frac), 1), max(int(w * size_frac), 1)

    def _one(img: np.ndarray) -> None:
        top = int(generator.integers(0, h - ph + 1))
        left = int(generator.integers(0, w - pw + 1))
        img[top : top + ph, left : left + pw] = value

    if image.ndim == 2:
        _one(image)
    else:
        for img in image:
            _one(img)
    return image


def apply_blur(image: np.ndarray, sigma: float = 1.5) -> np.ndarray:
    """Gaussian defocus blur (a sensor-degradation perturbation)."""
    return gaussian_blur(_check(image, "apply_blur"), sigma)


def adjust_contrast(image: np.ndarray, factor: float, clip: bool = True) -> np.ndarray:
    """Scale contrast about the image mean by ``factor``.

    ``factor > 1`` stretches intensities away from the mean, ``factor < 1``
    flattens them (fog/haze-like degradation).
    """
    image = _check(image, "adjust_contrast")
    if factor < 0:
        raise ConfigurationError(f"factor must be >= 0, got {factor}")
    if image.ndim == 2:
        mean = image.mean()
    else:
        mean = image.mean(axis=(1, 2), keepdims=True)
    out = mean + factor * (image - mean)
    return np.clip(out, 0.0, 1.0) if clip else out


def salt_and_pepper(
    image: np.ndarray, amount: float = 0.05, rng: RngLike = None
) -> np.ndarray:
    """Set a random ``amount`` fraction of pixels to pure black or white.

    The classic impulse-noise model for failing sensors; unlike Gaussian
    noise it is sparse, so it probes a different corner of the detector's
    sensitivity.
    """
    image = _check(image, "salt_and_pepper").copy()
    if not 0.0 <= amount <= 1.0:
        raise ConfigurationError(f"amount must be in [0, 1], got {amount}")
    if amount == 0.0:
        return image
    generator = derive_rng(rng)
    rolls = generator.random(image.shape)
    image[rolls < amount / 2.0] = 0.0
    image[rolls > 1.0 - amount / 2.0] = 1.0
    return image
