"""Synthetic weather effects (the DeepTest transformation family).

The paper cites DeepTest (Tian et al., ICSE 2018), which stress-tests
driving networks with synthetic weather.  These transformations complete
this repo's perturbation family with the weather cases:

* :func:`add_fog` — contrast collapse toward a bright airlight value,
  stronger with (approximate) scene depth;
* :func:`add_rain` — bright diagonal streak overlays;
* :func:`add_shadow` — a dark polygonal band across the scene (tree or
  building shadow over the road).

All functions are pure and accept ``(H, W)`` images or ``(N, H, W)``
batches in [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.utils.seeding import RngLike, derive_rng


def _check(image: np.ndarray, name: str) -> np.ndarray:
    image = as_tensor(image)
    if image.ndim not in (2, 3):
        raise ShapeError(f"{name} expects (H, W) or (N, H, W), got {image.shape}")
    return image


def add_fog(image: np.ndarray, density: float = 0.5, airlight: float = 0.8) -> np.ndarray:
    """Blend toward a bright airlight, more strongly near the horizon.

    Uses the standard atmospheric-scattering form
    :math:`I' = I\\,t + A\\,(1 - t)` with a transmission map :math:`t`
    that decreases toward the top of the ground region (farther ground is
    seen through more atmosphere).  ``density`` in [0, 1] scales the
    effect; ``airlight`` is the fog color.
    """
    image = _check(image, "add_fog")
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= airlight <= 1.0:
        raise ConfigurationError(f"airlight must be in [0, 1], got {airlight}")
    h = image.shape[-2]
    # Approximate depth: the top rows (sky, far road) are seen through the
    # most atmosphere, the bottom row through the least.
    depth = np.linspace(1.0, 0.0, h)[:, None]
    transmission = 1.0 - density * depth
    return image * transmission + airlight * (1.0 - transmission)


def add_rain(
    image: np.ndarray,
    amount: int = 40,
    length: int = 5,
    brightness: float = 0.85,
    rng: RngLike = None,
) -> np.ndarray:
    """Overlay bright diagonal rain streaks.

    Parameters
    ----------
    amount:
        Number of streaks per image.
    length:
        Streak length in pixels (drawn at a fixed diagonal slope).
    brightness:
        Intensity painted along each streak.
    """
    image = _check(image, "add_rain").copy()
    if amount < 0:
        raise ConfigurationError(f"amount must be >= 0, got {amount}")
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    if not 0.0 <= brightness <= 1.0:
        raise ConfigurationError(f"brightness must be in [0, 1], got {brightness}")
    generator = derive_rng(rng)

    def _streaks(img: np.ndarray) -> None:
        h, w = img.shape
        rows = generator.integers(0, h, size=amount)
        cols = generator.integers(0, w, size=amount)
        for r0, c0 in zip(rows, cols):
            for step in range(length):
                r, c = r0 + step, c0 + step // 2  # steep diagonal
                if r < h and c < w:
                    img[r, c] = brightness

    if image.ndim == 2:
        _streaks(image)
    else:
        for img in image:
            _streaks(img)
    return image


def add_shadow(
    image: np.ndarray,
    darkness: float = 0.5,
    rng: RngLike = None,
) -> np.ndarray:
    """Darken a random quadrilateral band (a cast shadow across the road).

    The band spans the full image height between two independently sampled
    top/bottom column intervals, giving the slanted shadow edges real cast
    shadows have.
    """
    image = _check(image, "add_shadow").copy()
    if not 0.0 < darkness <= 1.0:
        raise ConfigurationError(f"darkness must be in (0, 1], got {darkness}")
    generator = derive_rng(rng)

    def _shade(img: np.ndarray) -> None:
        h, w = img.shape
        top_start = generator.uniform(0, w * 0.7)
        top_width = generator.uniform(w * 0.2, w * 0.5)
        bottom_start = generator.uniform(0, w * 0.7)
        bottom_width = generator.uniform(w * 0.2, w * 0.5)
        fractions = np.linspace(0.0, 1.0, h)
        starts = top_start + (bottom_start - top_start) * fractions
        widths = top_width + (bottom_width - top_width) * fractions
        cols = np.arange(w)[None, :]
        inside = (cols >= starts[:, None]) & (cols <= (starts + widths)[:, None])
        img[inside] *= 1.0 - darkness

    if image.ndim == 2:
        _shade(image)
    else:
        for img in image:
            _shade(img)
    return image
