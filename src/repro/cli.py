"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``
    Run one reproduction experiment (or all) at a chosen scale preset and
    print its paper-style report.
``render``
    Render sample frames from a synthetic dataset to PGM files for visual
    inspection.
``masks``
    Train a steering CNN and export VBP saliency masks and overlays (the
    paper's Figure 4 artifact) as PGM/PPM files.
``demo``
    The quickstart flow: train everything, print detection statistics.
``telemetry``
    Summarize a JSONL telemetry trace written by ``--telemetry PATH``
    (span latency percentiles, counters, score histograms).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional

from repro.config import PRESETS, get_scale


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Novelty Detection via Network Saliency in "
            "Visual-based Deep Learning' (Chen, Yoon, Shao; DSN 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a reproduction experiment")
    exp.add_argument(
        "exp_id",
        help="experiment id (fig2..fig7, reverse, timing, ablations) or 'all'",
    )
    exp.add_argument(
        "--scale", choices=sorted(PRESETS), default="bench",
        help="scale preset (default: bench)",
    )
    exp.add_argument("--seed", type=int, default=0, help="root random seed")
    exp.add_argument(
        "--markdown", type=Path, default=None, metavar="PATH",
        help="also write the results as a markdown report",
    )
    exp.add_argument(
        "--telemetry", type=Path, default=None, metavar="PATH",
        help="record a JSONL telemetry trace (spans, metrics) of the run",
    )

    render = sub.add_parser("render", help="render dataset frames to PGM files")
    render.add_argument("dataset", choices=["dsu", "dsi"], help="which surrogate")
    render.add_argument("--count", type=int, default=4, help="frames to render")
    render.add_argument("--scale", choices=sorted(PRESETS), default="paper")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--out", type=Path, default=Path("out/frames"))
    render.add_argument(
        "--drive", action="store_true",
        help="render a temporally coherent drive instead of i.i.d. frames",
    )

    masks = sub.add_parser("masks", help="export VBP masks and overlays")
    masks.add_argument("dataset", choices=["dsu", "dsi"])
    masks.add_argument("--count", type=int, default=4)
    masks.add_argument("--scale", choices=sorted(PRESETS), default="bench")
    masks.add_argument("--seed", type=int, default=0)
    masks.add_argument("--out", type=Path, default=Path("out/masks"))

    demo = sub.add_parser("demo", help="run the end-to-end detection demo")
    demo.add_argument("--scale", choices=sorted(PRESETS), default="bench")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--telemetry", type=Path, default=None, metavar="PATH",
        help="record a JSONL telemetry trace (spans, metrics) of the run",
    )

    tele = sub.add_parser("telemetry", help="summarize a JSONL telemetry trace")
    tele.add_argument("trace", type=Path, help="trace written via --telemetry PATH")

    return parser


def _telemetry_scope(path: Optional[Path]):
    """Active telemetry session writing to ``path``, or a no-op scope."""
    if path is None:
        return contextlib.nullcontext()
    from repro.telemetry import telemetry_session

    return telemetry_session(path)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
    from repro.experiments.report import write_markdown_report

    if args.exp_id == "all":
        with _telemetry_scope(args.telemetry):
            results = run_all(args.scale, rng=args.seed)
    elif args.exp_id in EXPERIMENTS:
        with _telemetry_scope(args.telemetry):
            results = {
                args.exp_id: run_experiment(args.exp_id, args.scale, rng=args.seed)
            }
    else:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown experiment {args.exp_id!r}; known: {known}, all", file=sys.stderr)
        return 2
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")

    for result in results.values():
        print(result.render())
        print()
    if args.markdown is not None:
        path = write_markdown_report(
            results, args.markdown, scale=get_scale(args.scale),
            title=f"Reproduction results ({args.scale} scale)",
        )
        print(f"markdown report written to {path}")
    return 0


def _dataset(name: str, image_shape):
    from repro.datasets import SyntheticIndoor, SyntheticUdacity

    cls = SyntheticUdacity if name == "dsu" else SyntheticIndoor
    return cls(image_shape)


def _cmd_render(args: argparse.Namespace) -> int:
    from repro import viz

    scale = get_scale(args.scale)
    dataset = _dataset(args.dataset, scale.image_shape)
    if args.drive:
        batch = dataset.render_drive(args.count, rng=args.seed)
    else:
        batch = dataset.render_batch(args.count, rng=args.seed)
    for i, frame in enumerate(batch.frames):
        path = viz.save_pgm(frame, args.out / f"{args.dataset}_{i:03d}.pgm")
        print(f"wrote {path}  (angle {batch.angles[i]:+.3f})")
    return 0


def _cmd_masks(args: argparse.Namespace) -> int:
    from repro import viz
    from repro.experiments.harness import Workbench
    from repro.saliency import VisualBackProp

    scale = get_scale(args.scale)
    workbench = Workbench(scale, seed=args.seed)
    print(f"training the steering CNN on {args.dataset.upper()}...")
    model = workbench.steering_model(args.dataset)
    batch = workbench.batch(args.dataset, "test")
    frames = batch.frames[: args.count]
    masks = VisualBackProp(model).saliency(frames)
    for i, (frame, mask) in enumerate(zip(frames, masks)):
        frame_path = viz.save_pgm(frame, args.out / f"{args.dataset}_{i:03d}_input.pgm")
        mask_path = viz.save_pgm(mask, args.out / f"{args.dataset}_{i:03d}_mask.pgm")
        overlay_path = viz.save_overlay_ppm(
            frame, mask, args.out / f"{args.dataset}_{i:03d}_overlay.ppm"
        )
        print(f"wrote {frame_path}, {mask_path}, {overlay_path}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.experiments.harness import Workbench
    from repro.novelty import SaliencyNoveltyPipeline, evaluate_detector

    scale = get_scale(args.scale)
    with _telemetry_scope(args.telemetry):
        workbench = Workbench(scale, seed=args.seed)
        print("training the steering CNN...")
        model = workbench.steering_model("dsu")
        print("fitting the proposed detector (VBP + SSIM autoencoder)...")
        pipeline = SaliencyNoveltyPipeline(
            model, scale.image_shape, loss="ssim",
            config=workbench.autoencoder_config(), rng=args.seed,
        )
        pipeline.fit(workbench.batch("dsu", "train").frames)
        result = evaluate_detector(
            pipeline,
            workbench.batch("dsu", "test").frames,
            workbench.batch("dsi", "novel").frames,
            name="VBP+SSIM (proposed)",
        )
    print()
    print(result.summary_row())
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.exceptions import SerializationError
    from repro.telemetry import render_jsonl_report

    try:
        print(render_jsonl_report(args.trace))
    except SerializationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "experiment": _cmd_experiment,
    "render": _cmd_render,
    "masks": _cmd_masks,
    "demo": _cmd_demo,
    "telemetry": _cmd_telemetry,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
