"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``
    Run one reproduction experiment (or all) at a chosen scale preset and
    print its paper-style report.
``render``
    Render sample frames from a synthetic dataset to PGM files for visual
    inspection.
``masks``
    Train a steering CNN and export VBP saliency masks and overlays (the
    paper's Figure 4 artifact) as PGM/PPM files.
``demo``
    The quickstart flow: train everything, print detection statistics.
``telemetry``
    Summarize a JSONL telemetry trace written by ``--telemetry PATH``
    (span latency percentiles, counters, score histograms).
``bundle``
    Train the proposed pipeline and save it as a deployable artifact
    bundle (see ``docs/serving.md``).
``serve``
    Run the micro-batched inference engine — either as a localhost socket
    service over an artifact bundle, or ``--once`` in-process to score a
    batch of rendered frames and exit.
``bench-serve``
    Load-test the serving engine and print throughput plus p50/p95/p99
    latency.
``supervise``
    Run ``serve`` as a supervised child process: probe it for liveness,
    restart it (with exponential backoff) when it crashes or wedges, and
    let its ``--journal-dir`` recovery restore state on every respawn
    (see ``docs/reliability.md``).
``deploy``
    Drive a model registry from the shell: ``register`` / ``list`` /
    ``status`` / ``promote`` / ``rollback`` / ``retire`` versioned
    bundles (see ``docs/deployment.md``).
``trace``
    Render one request's full span tree (frontend → queue → batch →
    worker → kernels) from a serving telemetry file by trace id.
``profile``
    Aggregate per-kernel timings (``kernel.*`` spans) from a serving
    telemetry file into a profile table.
``plan``
    Print a pipeline's compiled stage graph (stage order, per-stage
    detail, dtypes, call/error tallies, workspace buffer stats).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional

from repro.config import PRESETS, get_scale

#: Where ``serve`` / ``bench-serve`` write span records by default, and
#: where ``repro trace`` / ``repro profile`` read them back from.
DEFAULT_SERVING_TELEMETRY = Path("out/telemetry/serving.jsonl")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Novelty Detection via Network Saliency in "
            "Visual-based Deep Learning' (Chen, Yoon, Shao; DSN 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a reproduction experiment")
    exp.add_argument(
        "exp_id",
        help="experiment id (fig2..fig7, reverse, timing, ablations) or 'all'",
    )
    exp.add_argument(
        "--scale", choices=sorted(PRESETS), default="bench",
        help="scale preset (default: bench)",
    )
    exp.add_argument("--seed", type=int, default=0, help="root random seed")
    _add_dtype_arg(exp)
    exp.add_argument(
        "--markdown", type=Path, default=None, metavar="PATH",
        help="also write the results as a markdown report",
    )
    exp.add_argument(
        "--telemetry", type=Path, default=None, metavar="PATH",
        help="record a JSONL telemetry trace (spans, metrics) of the run",
    )

    render = sub.add_parser("render", help="render dataset frames to PGM files")
    render.add_argument("dataset", choices=["dsu", "dsi"], help="which surrogate")
    render.add_argument("--count", type=int, default=4, help="frames to render")
    render.add_argument("--scale", choices=sorted(PRESETS), default="paper")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--out", type=Path, default=Path("out/frames"))
    render.add_argument(
        "--drive", action="store_true",
        help="render a temporally coherent drive instead of i.i.d. frames",
    )

    masks = sub.add_parser("masks", help="export VBP masks and overlays")
    masks.add_argument("dataset", choices=["dsu", "dsi"])
    masks.add_argument("--count", type=int, default=4)
    masks.add_argument("--scale", choices=sorted(PRESETS), default="bench")
    masks.add_argument("--seed", type=int, default=0)
    masks.add_argument("--out", type=Path, default=Path("out/masks"))

    demo = sub.add_parser("demo", help="run the end-to-end detection demo")
    demo.add_argument("--scale", choices=sorted(PRESETS), default="bench")
    demo.add_argument("--seed", type=int, default=0)
    _add_dtype_arg(demo)
    demo.add_argument(
        "--telemetry", type=Path, default=None, metavar="PATH",
        help="record a JSONL telemetry trace (spans, metrics) of the run",
    )

    tele = sub.add_parser("telemetry", help="summarize a JSONL telemetry trace")
    tele.add_argument("trace", type=Path, help="trace written via --telemetry PATH")

    bundle = sub.add_parser(
        "bundle", help="train a pipeline and save a deployable artifact bundle"
    )
    bundle.add_argument("--out", type=Path, required=True, help="bundle directory")
    bundle.add_argument("--scale", choices=sorted(PRESETS), default="ci")
    bundle.add_argument("--seed", type=int, default=0)
    bundle.add_argument(
        "--loss", choices=["ssim", "mse", "msssim"], default="ssim",
        help="one-class reconstruction loss (default: the paper's ssim)",
    )
    bundle.add_argument(
        "--overwrite", action="store_true", help="replace an existing bundle"
    )
    _add_dtype_arg(bundle)

    serve = sub.add_parser("serve", help="run the micro-batched inference engine")
    _add_engine_args(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8473, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="also expose /metrics + /healthz on this HTTP port (0 = ephemeral)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="in-process mode: score --frames rendered frames and exit (no socket)",
    )
    serve.add_argument(
        "--frames", type=int, default=16, help="frames to score with --once"
    )

    bench = sub.add_parser(
        "bench-serve", help="load-test the engine; print throughput and latency"
    )
    _add_engine_args(bench)
    bench.add_argument("--frames", type=int, default=200, help="total requests to send")
    bench.add_argument("--clients", type=int, default=4, help="concurrent closed-loop clients")
    bench.add_argument(
        "--socket", action="store_true",
        help="drive the engine through the TCP frontend instead of in-process",
    )
    bench.add_argument(
        "--priority-mix", default=None, metavar="SPEC",
        help=(
            "split the client population across QoS classes, e.g. "
            "'critical=10,batch=90' (weights are relative); implies a "
            "default QoS policy unless --qos-config is given, and prints "
            "per-class goodput and latency"
        ),
    )
    bench.add_argument(
        "--chaos", action="store_true",
        help=(
            "inject seeded faults (latency spikes, exceptions, NaN scores, "
            "worker kills) and enable the circuit breaker + retries + "
            "fail-safe degraded verdicts (see docs/reliability.md)"
        ),
    )

    supervise = sub.add_parser(
        "supervise",
        help="run serve as a supervised, crash-recovering child process",
    )
    supervise.add_argument(
        "--bundle", type=Path, required=True,
        help="artifact bundle the child serves (required: respawns must not retrain)",
    )
    supervise.add_argument(
        "--journal-dir", type=Path, required=True, metavar="DIR",
        help="durable WAL directory the child recovers from on every respawn",
    )
    supervise.add_argument("--host", default="127.0.0.1", help="bind address")
    supervise.add_argument(
        "--port", type=int, default=8473,
        help="TCP port (must be fixed — the supervisor probes it)",
    )
    _add_dtype_arg(supervise)
    supervise.add_argument(
        "--workers", type=int, default=0,
        help="worker-pool replicas in the child (0 = score in-process)",
    )
    supervise.add_argument(
        "--telemetry", type=Path, default=None, metavar="PATH",
        help="JSONL telemetry trace for the supervisor itself (default: off)",
    )
    supervise.add_argument(
        "--heartbeat-s", type=float, default=1.0,
        help="seconds between liveness checks (poll + ping probe)",
    )
    supervise.add_argument(
        "--probe-failures", type=int, default=3,
        help="consecutive failed ping probes before a wedged child is killed",
    )
    supervise.add_argument(
        "--probe-grace-s", type=float, default=30.0,
        help="boot grace before failed probes count against the child",
    )
    supervise.add_argument(
        "--max-restarts", type=int, default=5,
        help="consecutive unhealthy restarts before the supervisor gives up",
    )
    supervise.add_argument(
        "--healthy-after-s", type=float, default=10.0,
        help="uptime at which a child counts as healthy (backoff resets)",
    )

    deploy = sub.add_parser(
        "deploy", help="manage a versioned model registry (see docs/deployment.md)"
    )
    deploy.add_argument(
        "--registry", type=Path, default=Path("out/registry"), metavar="DIR",
        help="registry directory (default: out/registry)",
    )
    deploy_sub = deploy.add_subparsers(dest="deploy_command", required=True)
    dreg = deploy_sub.add_parser("register", help="catalog a bundle as a new version")
    dreg.add_argument("bundle", type=Path, help="bundle directory to register")
    dreg.add_argument("--version", default=None, help="version name (default: auto v000N)")
    dreg.add_argument("--note", default="", help="operator annotation")
    deploy_sub.add_parser("list", help="list registered versions")
    deploy_sub.add_parser("status", help="show the serving version and history")
    dprom = deploy_sub.add_parser("promote", help="mark a version as serving")
    dprom.add_argument("version", help="version to promote")
    dprom.add_argument("--note", default="", help="operator annotation")
    droll = deploy_sub.add_parser(
        "rollback", help="revert the serving pointer to the previous version"
    )
    droll.add_argument("--reason", default="", help="why (recorded in history)")
    dret = deploy_sub.add_parser("retire", help="take a version out of rotation")
    dret.add_argument("version", help="version to retire")
    dret.add_argument("--note", default="", help="operator annotation")

    trace = sub.add_parser(
        "trace", help="render one request's span tree from a telemetry file"
    )
    trace.add_argument("trace_id", help="trace id (printed by bench-serve / in score responses)")
    trace.add_argument(
        "--file", type=Path, default=DEFAULT_SERVING_TELEMETRY, metavar="PATH",
        help="JSONL telemetry file to read (default: the serving default)",
    )

    profile = sub.add_parser(
        "profile", help="aggregate per-kernel timings from a telemetry file"
    )
    profile.add_argument(
        "--file", type=Path, default=DEFAULT_SERVING_TELEMETRY, metavar="PATH",
        help="JSONL telemetry file to read (default: the serving default)",
    )

    plan = sub.add_parser(
        "plan", help="print a pipeline's compiled stage graph with dtypes"
    )
    plan.add_argument(
        "--bundle", type=Path, default=None,
        help="artifact bundle to inspect (omit to train a fresh pipeline at --scale)",
    )
    plan.add_argument("--scale", choices=sorted(PRESETS), default="ci")
    plan.add_argument("--seed", type=int, default=0)
    _add_dtype_arg(plan)

    return parser


def _add_dtype_arg(parser: argparse.ArgumentParser) -> None:
    """The shared inference precision flag (training stays float64)."""
    parser.add_argument(
        "--dtype", choices=["float32", "float64"], default=None,
        help=(
            "inference precision policy; float32 trades a little accuracy "
            "for throughput (default: float64, or the bundle's recorded dtype)"
        ),
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``serve`` and ``bench-serve``."""
    _add_dtype_arg(parser)
    parser.add_argument(
        "--bundle", type=Path, default=None,
        help="artifact bundle to load (omit to train a fresh pipeline at --scale)",
    )
    parser.add_argument("--scale", choices=sorted(PRESETS), default="ci")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker-pool replicas (0 = score in-process; requires --bundle)",
    )
    parser.add_argument("--max-batch", type=int, default=8, help="micro-batch size cap")
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="how long an under-full batch waits for more frames",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None,
        help="bounded request queue (default: 64, or the burst size for bench-serve)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline; queued requests past it are dropped",
    )
    parser.add_argument(
        "--qos-config", type=Path, default=None, metavar="PATH",
        help=(
            "JSON admission-control & QoS policy (priority classes, "
            "per-client rate limits, deadline shedding, AIMD concurrency "
            "limit; see docs/admission.md).  Invalid policies exit 2."
        ),
    )
    parser.add_argument(
        "--telemetry", type=Path, default=DEFAULT_SERVING_TELEMETRY, metavar="PATH",
        help=(
            "record a JSONL telemetry trace of the run "
            f"(default: {DEFAULT_SERVING_TELEMETRY}; --no-telemetry to disable)"
        ),
    )
    parser.add_argument(
        "--no-telemetry", dest="telemetry", action="store_const", const=None,
        help="disable the telemetry trace",
    )
    parser.add_argument(
        "--profile-kernels", action=argparse.BooleanOptionalAction, default=True,
        help="record per-kernel timings/FLOPs on the serving path (default: on)",
    )
    parser.add_argument(
        "--journal-dir", type=Path, default=None, metavar="DIR",
        help=(
            "durable WAL directory: journal admitted requests and component "
            "state there, and replay it on startup (crash recovery; see "
            "docs/reliability.md)"
        ),
    )
    parser.add_argument(
        "--no-journal", dest="journal_dir", action="store_const", const=None,
        help="disable state journaling (the default unless --journal-dir is set)",
    )


def _telemetry_scope(path: Optional[Path]):
    """Active telemetry session writing to ``path``, or a no-op scope."""
    if path is None:
        return contextlib.nullcontext()
    from repro.telemetry import telemetry_session

    return telemetry_session(path)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
    from repro.experiments.report import write_markdown_report

    if args.exp_id == "all":
        with _telemetry_scope(args.telemetry):
            results = run_all(args.scale, rng=args.seed, dtype=args.dtype)
    elif args.exp_id in EXPERIMENTS:
        with _telemetry_scope(args.telemetry):
            results = {
                args.exp_id: run_experiment(
                    args.exp_id, args.scale, rng=args.seed, dtype=args.dtype
                )
            }
    else:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown experiment {args.exp_id!r}; known: {known}, all", file=sys.stderr)
        return 2
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")

    for result in results.values():
        print(result.render())
        print()
    if args.markdown is not None:
        path = write_markdown_report(
            results, args.markdown, scale=get_scale(args.scale),
            title=f"Reproduction results ({args.scale} scale)",
        )
        print(f"markdown report written to {path}")
    return 0


def _dataset(name: str, image_shape):
    from repro.datasets import SyntheticIndoor, SyntheticUdacity

    cls = SyntheticUdacity if name == "dsu" else SyntheticIndoor
    return cls(image_shape)


def _cmd_render(args: argparse.Namespace) -> int:
    from repro import viz

    scale = get_scale(args.scale)
    dataset = _dataset(args.dataset, scale.image_shape)
    if args.drive:
        batch = dataset.render_drive(args.count, rng=args.seed)
    else:
        batch = dataset.render_batch(args.count, rng=args.seed)
    for i, frame in enumerate(batch.frames):
        path = viz.save_pgm(frame, args.out / f"{args.dataset}_{i:03d}.pgm")
        print(f"wrote {path}  (angle {batch.angles[i]:+.3f})")
    return 0


def _cmd_masks(args: argparse.Namespace) -> int:
    from repro import viz
    from repro.experiments.harness import Workbench
    from repro.pipeline import compute_saliency
    from repro.saliency import VisualBackProp

    scale = get_scale(args.scale)
    workbench = Workbench(scale, seed=args.seed)
    print(f"training the steering CNN on {args.dataset.upper()}...")
    model = workbench.steering_model(args.dataset)
    batch = workbench.batch(args.dataset, "test")
    frames = batch.frames[: args.count]
    masks = compute_saliency(VisualBackProp(model), frames)
    for i, (frame, mask) in enumerate(zip(frames, masks)):
        frame_path = viz.save_pgm(frame, args.out / f"{args.dataset}_{i:03d}_input.pgm")
        mask_path = viz.save_pgm(mask, args.out / f"{args.dataset}_{i:03d}_mask.pgm")
        overlay_path = viz.save_overlay_ppm(
            frame, mask, args.out / f"{args.dataset}_{i:03d}_overlay.ppm"
        )
        print(f"wrote {frame_path}, {mask_path}, {overlay_path}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.experiments.harness import Workbench
    from repro.novelty import SaliencyNoveltyPipeline, evaluate_detector

    scale = get_scale(args.scale)
    with _telemetry_scope(args.telemetry):
        workbench = Workbench(scale, seed=args.seed)
        print("training the steering CNN...")
        model = workbench.steering_model("dsu")
        print("fitting the proposed detector (VBP + SSIM autoencoder)...")
        pipeline = SaliencyNoveltyPipeline(
            model, scale.image_shape, loss="ssim",
            config=workbench.autoencoder_config(), rng=args.seed,
        )
        pipeline.fit(workbench.batch("dsu", "train").frames)
        if args.dtype is not None:
            print(f"scoring with the {args.dtype} inference policy")
            pipeline.set_inference_dtype(args.dtype)
        result = evaluate_detector(
            pipeline,
            workbench.batch("dsu", "test").frames,
            workbench.batch("dsi", "novel").frames,
            name="VBP+SSIM (proposed)",
        )
    print()
    print(result.summary_row())
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.exceptions import SerializationError
    from repro.telemetry import render_jsonl_report

    try:
        print(render_jsonl_report(args.trace))
    except SerializationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _train_pipeline(scale_name: str, seed: int, loss: str = "ssim"):
    """Train the proposed pipeline at a preset scale (serve/bundle helper)."""
    from repro.experiments.harness import Workbench
    from repro.novelty import SaliencyNoveltyPipeline

    scale = get_scale(scale_name)
    workbench = Workbench(scale, seed=seed)
    print(f"training the steering CNN ({scale_name} scale)...")
    model = workbench.steering_model("dsu")
    print(f"fitting the detector (VBP + {loss.upper()} autoencoder)...")
    pipeline = SaliencyNoveltyPipeline(
        model, scale.image_shape, loss=loss,
        config=workbench.autoencoder_config(), rng=seed,
    )
    pipeline.fit(workbench.batch("dsu", "train").frames)
    return pipeline


def _build_engine(args: argparse.Namespace, default_capacity: int = 64):
    """Engine (+ its pipeline's image shape) from serve/bench-serve flags."""
    from repro.serving import EngineConfig, PipelineScorer, ServingEngine, WorkerPool, load_bundle

    if args.workers > 0 and args.bundle is None:
        raise SystemExit("--workers requires --bundle (replicas load it from disk)")
    # Validate the QoS policy before any expensive load/train work so a
    # malformed --qos-config fails in milliseconds, not after training.
    qos = None
    if getattr(args, "qos_config", None) is not None:
        from repro.serving import load_qos_policy

        qos = load_qos_policy(args.qos_config)
        classes = ", ".join(
            f"{name}(w={spec.weight:g})" for name, spec in qos.classes.items()
        )
        print(f"qos policy {args.qos_config}: {classes}")
    elif getattr(args, "priority_mix", None) is not None:
        from repro.serving import QosPolicy

        qos = QosPolicy.default()
        print("qos policy: default (critical=16 interactive=4 batch=1)")
    if args.bundle is not None:
        bundle = load_bundle(args.bundle)
        image_shape = bundle.image_shape
        print(f"loaded bundle {args.bundle} (threshold {bundle.threshold:.4g})")
        if args.workers > 0:
            scorer = WorkerPool(
                args.bundle, workers=args.workers, dtype=args.dtype,
                profile_kernels=getattr(args, "profile_kernels", False),
            )
            print(f"started {args.workers} worker replicas ({scorer.dtype.name})")
        else:
            if args.dtype is not None:
                bundle.pipeline.set_inference_dtype(args.dtype)
            scorer = PipelineScorer(bundle.pipeline)
    else:
        pipeline = _train_pipeline(args.scale, args.seed)
        if args.dtype is not None:
            pipeline.set_inference_dtype(args.dtype)
        image_shape = pipeline.image_shape
        scorer = PipelineScorer(pipeline)
    reliability = {}
    if getattr(args, "chaos", False):
        from repro.reliability import (
            BreakerConfig,
            FaultInjector,
            FaultSchedule,
            RetryPolicy,
        )

        rates = {"latency": 0.05, "exception": 0.05, "nan_scores": 0.05}
        if args.workers > 0:
            rates["kill_worker"] = 0.02
        schedule = FaultSchedule.random(
            length=max(64, args.frames), rates=rates, seed=args.seed
        )
        scorer = FaultInjector(scorer, schedule, latency_ms=25.0)
        print(f"chaos: scheduled faults {schedule.counts()} (seed {args.seed})")
        reliability = {
            "retry": RetryPolicy(max_attempts=3, base_delay_s=0.005, seed=args.seed),
            "breaker": BreakerConfig(
                window=16, min_calls=4, failure_threshold=0.5,
                reset_timeout_s=0.5, half_open_probes=2,
            ),
            "fail_safe": "novel",
        }
    config = EngineConfig(
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity or default_capacity,
        default_deadline_ms=args.deadline_ms,
        qos=qos,
        **reliability,
    )
    return ServingEngine(scorer, config), image_shape


def _render_stream(image_shape, n_frames: int, seed: int):
    """A temporally coherent drive to feed the engine (dsu surrogate)."""
    from repro.datasets import SyntheticUdacity

    return SyntheticUdacity(image_shape).render_drive(n_frames, rng=seed).frames


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.exceptions import ArtifactError
    from repro.serving import manifest_sha256, read_manifest, save_bundle

    pipeline = _train_pipeline(args.scale, args.seed, loss=args.loss)
    if args.dtype is not None:
        pipeline.set_inference_dtype(args.dtype)
    try:
        path = save_bundle(pipeline, args.out, overwrite=args.overwrite)
    except ArtifactError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    threshold = pipeline.one_class.detector.threshold
    manifest = read_manifest(path)
    print(f"bundle written to {path}")
    print(
        f"  image_shape={pipeline.image_shape}  loss={args.loss}  "
        f"threshold={threshold:.4g}  dtype={pipeline.dtype.name}"
    )
    # Both identity hashes, so registrations can be scripted and diffed:
    # config_hash names the configuration, manifest_sha256 this artifact.
    print(f"  config_hash={manifest['config_hash']}")
    print(f"  manifest_sha256={manifest_sha256(path)}")
    return 0


def _kernel_profiler_scope(args: argparse.Namespace):
    """Enable the kernel profiler for the serving phase (not training)."""
    if not getattr(args, "profile_kernels", False):
        return contextlib.nullcontext()
    from repro.nn.backend import kernel_profile

    return kernel_profile()


def _print_trace_hint(engine, telemetry: Optional[Path]) -> None:
    """Point at one captured request tree, if tracing recorded any."""
    if telemetry is None:
        return
    trace_id = engine.stats().get("last_trace_id")
    if trace_id:
        print(f"inspect one request: repro trace {trace_id} --file {telemetry}")


def _print_engine_latency(engine) -> None:
    stats = engine.stats()
    latency = stats["latency_ms"]
    print(
        f"latency (ms): p50={latency['p50']:.2f} p95={latency['p95']:.2f} "
        f"p99={latency['p99']:.2f} max={latency['max']:.2f}"
    )
    print(
        f"batches={stats['batches']}  mean_batch_size="
        f"{stats.get('mean_batch_size', 0):.2f}  rejected={stats['rejected']}"
    )


def _recover_journal(journal_dir: Optional[Path]):
    """Recover prior state from ``--journal-dir`` and reopen the journal.

    Returns ``(report, journal)`` — both ``None`` when journaling is off.
    Raises :class:`~repro.exceptions.JournalError` when the directory is
    unwritable (callers map that to exit code 2).
    """
    if journal_dir is None:
        return None, None
    report, journal = _probe_journal(journal_dir)
    summary = report.summary()
    print(
        f"journal {journal_dir}: recovered seq {summary['last_seq']} "
        f"(snapshot seq {summary['snapshot_seq']}, "
        f"{summary['replayed_records']} replayed record(s))"
    )
    if summary["truncated_bytes"]:
        print(f"journal: truncated {summary['truncated_bytes']} torn tail byte(s)")
    if summary["quarantined"]:
        names = ", ".join(summary["quarantined"])
        print(f"journal: quarantined corrupt segment(s): {names}", file=sys.stderr)
    return report, journal


def _probe_journal(journal_dir: Path):
    """recover + open + prove the directory is actually appendable."""
    from repro.durability import recover_and_open

    report, journal = recover_and_open(journal_dir)
    try:
        # A read-only directory survives ``mkdir(exist_ok=True)``; the
        # first append is what actually fails, so force one now rather
        # than dying mid-serve.
        journal.append("boot", {"argv": [str(part) for part in sys.argv[1:]]})
    except Exception:
        journal.close()
        raise
    return report, journal


def _wire_journal(engine, report, journal):
    """Attach the recovered ledger (and breaker state) to a built engine.

    Returns the :class:`~repro.durability.StateJournal` to snapshot on
    shutdown, or ``None`` when journaling is off.
    """
    if journal is None:
        return None
    from repro.durability import RequestLedger, StateJournal

    state_journal = StateJournal(journal)
    ledger = RequestLedger(journal, next_id=report.ledger.get("next_id", 1))
    state_journal.register("ledger", ledger)
    unresolved = report.unresolved_requests
    if unresolved:
        # Their clients are gone; report them failed rather than letting
        # them look in-flight forever (and recount on every recovery).
        ledger.resolve_crashed(unresolved)
        print(
            f"recovery: {len(unresolved)} request(s) were in flight at the "
            "crash; reported as failed"
        )
    if engine.breaker is not None:
        state_journal.register("breaker", engine.breaker)
        breaker_state = report.states.get("breaker")
        if breaker_state is not None:
            engine.breaker.load_state_dict(breaker_state)
            print(f"recovery: circuit breaker restored ({engine.breaker.state})")
        engine.breaker.attach_journal(state_journal.sink("breaker"))
    if getattr(engine, "admission", None) is not None:
        state_journal.register("admission", engine.admission)
        admission_state = report.states.get("admission")
        if admission_state is not None:
            engine.admission.load_state_dict(admission_state)
            buckets = len(admission_state.get("buckets", {}))
            print(
                f"recovery: admission state restored "
                f"({buckets} client quota(s), "
                f"concurrency limit {engine.admission.stats().get('concurrency_limit', 'off')})"
            )
    engine.attach_ledger(ledger)
    return state_journal


def _close_journal(state_journal, journal) -> None:
    """Snapshot component state and seal the journal on clean shutdown."""
    if journal is None:
        return
    from repro.exceptions import JournalError

    try:
        if state_journal is not None:
            state_journal.snapshot()
    except JournalError as exc:
        # A failed shutdown snapshot is recoverable (the WAL tail still
        # replays); don't mask the serve path's own exit.
        print(f"warning: shutdown snapshot failed: {exc}", file=sys.stderr)
    finally:
        journal.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.exceptions import ArtifactError, ConfigurationError, JournalError

    with _telemetry_scope(args.telemetry):
        try:
            report, journal = _recover_journal(args.journal_dir)
        except JournalError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            engine, image_shape = _build_engine(
                args, default_capacity=max(64, args.frames if args.once else 64)
            )
        except (ArtifactError, ConfigurationError) as exc:
            if journal is not None:
                journal.close()
            print(str(exc), file=sys.stderr)
            return 2
        state_journal = _wire_journal(engine, report, journal)
        metrics_server = contextlib.nullcontext()
        if args.metrics_port is not None:
            from repro.telemetry import MetricsRegistry, MetricsServer, get_telemetry

            telem = get_telemetry()
            registry = telem.registry if telem.enabled else MetricsRegistry()

            def _health():
                stats = engine.stats()
                return {
                    "healthy": True,
                    "submitted": stats.get("submitted", 0),
                    "rejected": stats.get("rejected", 0),
                }

            metrics_server = MetricsServer(
                registry, health=_health, host=args.host, port=args.metrics_port
            )
        try:
            # The profiler scope starts here so training kernels (when no
            # --bundle was given) stay out of the serving profile.
            with metrics_server, _kernel_profiler_scope(args):
                url = getattr(metrics_server, "url", None)
                if url:
                    print(f"metrics at {url}/metrics (health at {url}/healthz)")
                if args.once:
                    frames = _render_stream(image_shape, args.frames, args.seed)
                    outcomes = engine.infer_many(frames)
                    novel = sum(o.status == "ok" and o.is_novel for o in outcomes)
                    ok = sum(o.status == "ok" for o in outcomes)
                    print(f"scored {ok}/{len(outcomes)} frames ({novel} flagged novel)")
                    _print_engine_latency(engine)
                    _print_trace_hint(engine, args.telemetry)
                else:
                    from repro.serving import ServingServer

                    recovery_info = None if report is None else report.summary()
                    with ServingServer(
                        engine, host=args.host, port=args.port,
                        recovery_info=recovery_info,
                    ) as server:
                        host, port = server.address
                        print(f"serving on {host}:{port} (ctrl-c to stop)")
                        try:
                            while True:
                                time.sleep(1.0)
                        except KeyboardInterrupt:
                            print("\nshutting down")
        finally:
            engine.close()
            _close_journal(state_journal, journal)
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import ArtifactError, ConfigurationError, JournalError
    from repro.serving import parse_priority_mix, run_load, run_mixed_load

    mix = None
    if args.priority_mix is not None:
        try:
            mix = parse_priority_mix(args.priority_mix)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    with _telemetry_scope(args.telemetry):
        try:
            report, journal = _recover_journal(args.journal_dir)
        except JournalError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            engine, image_shape = _build_engine(
                args, default_capacity=max(64, args.frames)
            )
        except (ArtifactError, ConfigurationError) as exc:
            if journal is not None:
                journal.close()
            print(str(exc), file=sys.stderr)
            return 2
        state_journal = _wire_journal(engine, report, journal)
        try:
            # Profiling starts after the engine is built so a freshly
            # trained pipeline's training kernels stay out of the profile.
            with _kernel_profiler_scope(args):
                frames = _render_stream(image_shape, min(args.frames, 512), args.seed)
                workload = [frames[i % len(frames)] for i in range(args.frames)]
                # Warm caches so the report measures steady state, not
                # first-call allocation.
                engine.infer(workload[0])
                if args.socket:
                    from repro.serving import ServingClient, ServingServer

                    with ServingServer(engine) as server:
                        host, port = server.address
                        print(f"load-testing over the socket frontend at {host}:{port}")
                        clients = [
                            ServingClient(host, port) for _ in range(max(1, args.clients))
                        ]
                        try:
                            cursor = {"next": 0}
                            import threading as _threading

                            lock = _threading.Lock()

                            def _next_client(_clients=clients, _lock=lock, _cursor=cursor):
                                with _lock:
                                    client = _clients[_cursor["next"] % len(_clients)]
                                    _cursor["next"] += 1
                                return client

                            if mix is not None:
                                report = run_mixed_load(
                                    lambda frame, qos_class, client_id: _next_client().score(
                                        frame, client_id=client_id, priority=qos_class
                                    ),
                                    workload,
                                    mix,
                                    clients=args.clients,
                                )
                            else:
                                report = run_load(
                                    lambda frame: _next_client().score(frame),
                                    workload,
                                    clients=args.clients,
                                )
                        finally:
                            for client in clients:
                                client.close()
                elif mix is not None:
                    report = run_mixed_load(
                        lambda frame, qos_class, client_id: engine.infer(
                            frame, qos_class=qos_class, client_id=client_id
                        ),
                        workload,
                        mix,
                        clients=args.clients,
                    )
                else:
                    report = run_load(
                        lambda frame: engine.infer(frame), workload, clients=args.clients
                    )
                print(report.render())
                admission_stats = engine.stats().get("admission")
                if admission_stats is not None:
                    rejected = admission_stats.get("rejected", {})
                    rejected_line = (
                        ", ".join(f"{k}={v}" for k, v in sorted(rejected.items()))
                        if rejected
                        else "none"
                    )
                    print(
                        f"admission: {admission_stats['admitted']} admitted, "
                        f"rejected: {rejected_line}, concurrency limit "
                        f"{admission_stats['concurrency_limit']}, "
                        f"service time {admission_stats['service_time_ms_per_frame']:.3f} "
                        f"ms/frame"
                    )
                _print_engine_latency(engine)
                _print_trace_hint(engine, args.telemetry)
                if getattr(args, "chaos", False):
                    stats = engine.stats()
                    print(
                        f"chaos: injected faults {engine.scorer.injected()} over "
                        f"{engine.scorer.calls} scorer calls"
                    )
                    print(
                        f"chaos: degraded={stats['degraded']} retries={stats['retries']} "
                        f"breaker={stats.get('breaker', {}).get('state', 'off')}"
                    )
                if journal is not None:
                    ledger_stats = engine.stats().get("ledger", {})
                    print(
                        f"journal: {ledger_stats.get('admitted', '?')} admitted, "
                        f"{ledger_stats.get('outstanding', '?')} outstanding at exit"
                    )
        finally:
            engine.close()
            _close_journal(state_journal, journal)
    if args.telemetry is not None:
        print(f"telemetry trace written to {args.telemetry}")
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    from repro.durability import Supervisor, SupervisorConfig, tcp_ping_probe
    from repro.exceptions import ConfigurationError, JournalError

    if args.port == 0:
        print("supervise needs a fixed --port (the probe must find the child)",
              file=sys.stderr)
        return 2
    if not args.bundle.exists():
        print(f"bundle {args.bundle} does not exist", file=sys.stderr)
        return 2
    try:
        # Fail fast on an unwritable journal dir — the alternative is a
        # child that crashes at boot in a restart loop.
        _, probe_journal = _probe_journal(args.journal_dir)
        probe_journal.close()
    except JournalError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    command = [
        sys.executable, "-m", "repro", "serve",
        "--bundle", str(args.bundle),
        "--host", args.host,
        "--port", str(args.port),
        "--journal-dir", str(args.journal_dir),
    ]
    if args.dtype is not None:
        command += ["--dtype", args.dtype]
    if args.workers:
        command += ["--workers", str(args.workers)]

    try:
        config = SupervisorConfig(
            heartbeat_interval_s=args.heartbeat_s,
            probe_failures_to_kill=args.probe_failures,
            probe_grace_s=args.probe_grace_s,
            max_restarts=args.max_restarts,
            healthy_after_s=args.healthy_after_s,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    supervisor = Supervisor(
        command,
        probe=tcp_ping_probe(args.host, args.port),
        config=config,
    )
    print(f"supervising: {' '.join(command)}")
    print(f"journal at {args.journal_dir}; ctrl-c stops supervisor and child")
    with _telemetry_scope(args.telemetry):
        try:
            stats = supervisor.run()
        except KeyboardInterrupt:
            print("\nstopping supervisor")
            supervisor.shutdown()
            stats = supervisor.stats()
    print(
        f"supervisor done: restarts={stats['restarts']} "
        f"exit_codes={stats['exit_codes']} gave_up={stats['gave_up']}"
    )
    return 1 if stats["gave_up"] else 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy import ModelRegistry
    from repro.exceptions import ArtifactError, DeploymentError

    registry = ModelRegistry(args.registry)
    try:
        if args.deploy_command == "register":
            entry = registry.register(args.bundle, version=args.version, note=args.note)
            print(f"registered {entry.version} -> {entry.path}")
            print(f"  config_hash={entry.config_hash}")
            print(f"  manifest_sha256={entry.manifest_sha256}")
        elif args.deploy_command == "list":
            entries = registry.list()
            if not entries:
                print(f"no versions registered in {args.registry}")
                return 0
            for entry in entries:
                note = f"  # {entry.note}" if entry.note else ""
                print(
                    f"{entry.version:<12} {entry.status:<12} "
                    f"{entry.config_hash[:12]}  {entry.path}{note}"
                )
        elif args.deploy_command == "status":
            serving = registry.serving()
            if serving is None:
                print("serving: none")
            else:
                print(f"serving: {serving.version} (config {serving.config_hash[:12]})")
            history = registry.history()
            for event in history[-10:]:
                fields = {
                    k: v for k, v in event.items()
                    if k not in ("unix", "action", "version") and v not in (None, "")
                }
                extra = "  " + " ".join(f"{k}={v}" for k, v in fields.items()) if fields else ""
                print(f"  {event['action']:<10} {event.get('version')}{extra}")
        elif args.deploy_command == "promote":
            entry = registry.promote(args.version, note=args.note)
            print(f"promoted {entry.version} to serving")
        elif args.deploy_command == "rollback":
            entry = registry.rollback(reason=args.reason)
            print(f"rolled back; serving is now {entry.version}")
        else:  # retire
            entry = registry.retire(args.version, note=args.note)
            print(f"retired {entry.version}")
    except (ArtifactError, DeploymentError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _read_span_file(path: Path):
    """Load one telemetry JSONL file, with a friendly error on absence.

    Tolerant of crash-truncated traces: corrupt lines are skipped with a
    stderr warning so ``repro trace`` / ``repro profile`` still render
    what a killed serving process managed to flush.
    """
    from repro.exceptions import SerializationError
    from repro.telemetry import read_events_tolerant

    if not path.exists():
        raise SerializationError(
            f"no telemetry file at {path}; run `repro bench-serve` or "
            "`repro serve` first (they record there by default)"
        )
    records, skipped = read_events_tolerant(path)
    if skipped:
        print(
            f"warning: skipped {skipped} corrupt/truncated line(s) in {path}",
            file=sys.stderr,
        )
    return records


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.exceptions import ConfigurationError, SerializationError
    from repro.telemetry import render_trace_tree

    try:
        records = _read_span_file(args.file)
        print(render_trace_tree(records, args.trace_id))
    except (ConfigurationError, SerializationError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.exceptions import SerializationError
    from repro.nn.backend import render_profile_table
    from repro.telemetry import summarize_kernel_spans

    try:
        records = _read_span_file(args.file)
    except SerializationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = summarize_kernel_spans(records)
    if not rows:
        print(f"no kernel.* spans in {args.file} (was --profile-kernels off?)")
        return 0
    print(render_profile_table(rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.bundle is not None:
        from repro.serving import load_bundle

        bundle = load_bundle(args.bundle)
        pipeline = bundle.pipeline
        print(f"loaded bundle {args.bundle}")
    else:
        pipeline = _train_pipeline(args.scale, args.seed)
    if args.dtype is not None:
        pipeline.set_inference_dtype(args.dtype)
    print(pipeline.plan.describe())
    return 0


_COMMANDS = {
    "experiment": _cmd_experiment,
    "render": _cmd_render,
    "masks": _cmd_masks,
    "demo": _cmd_demo,
    "telemetry": _cmd_telemetry,
    "bundle": _cmd_bundle,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "supervise": _cmd_supervise,
    "deploy": _cmd_deploy,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "plan": _cmd_plan,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
