"""Prometheus text exposition for the metrics registry, plus a scrape server.

:func:`render_prometheus` turns a :class:`~repro.telemetry.metrics.MetricsRegistry`
(or a snapshot dict from one) into the Prometheus text format, version
0.0.4 — the format every scraper and ``curl`` understands:

* counters become ``<name>_total`` counter series,
* gauges become gauge series (unset gauges are omitted),
* histograms become cumulative ``_bucket{le="..."}`` series with the
  conventional ``_sum`` / ``_count`` companions,
* sliding-window histograms (live score distributions) become summaries
  with ``{quantile="..."}`` labels plus a ``_window_size`` gauge, so
  threshold drift is visible to an external scraper without tailing JSONL.

Dotted metric names are mapped to Prometheus identifiers by replacing
dots with underscores and prefixing ``repro_`` (``serving.scored`` →
``repro_serving_scored_total``).  A few *labeled families*
(:data:`LABELED_FAMILIES`) are special-cased: the registry has no label
support, so the serving layer encodes one label dimension as the final
dotted segment (``serving.queue_delay.critical``), and the exporter
folds those back into proper Prometheus labels
(``repro_serving_queue_delay{class="critical"}``) — one family, one
``# TYPE`` line, one series per class/reason, the shape dashboards
expect.

:class:`MetricsServer` is a stdlib :class:`~http.server.ThreadingHTTPServer`
serving ``GET /metrics`` (the rendered registry) and ``GET /healthz`` (a
JSON health document from a caller-supplied probe).  It runs on a daemon
thread so attaching it to the serving service or the stream monitor costs
nothing on the hot path — rendering happens only when a scrape arrives.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry

#: Quantiles exposed for sliding-window summaries.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Dotted-name families whose final segment renders as a Prometheus label
#: rather than being baked into the metric name.  The metrics registry is
#: deliberately label-free; these are the dimensions the serving layer
#: encodes as a name suffix (``serving.queue_delay.critical``).
LABELED_FAMILIES = {
    "serving.queue_delay": "class",
    "serving.admission.admitted": "class",
    "serving.admission.rejected": "reason",
}


def _prom_name(name: str) -> str:
    """Map a dotted registry name onto a Prometheus metric identifier."""
    return "repro_" + name.replace(".", "_")


def _prom_series(name: str) -> Tuple[str, str]:
    """``(metric_name, label)`` for a dotted registry name.

    Names under a :data:`LABELED_FAMILIES` family return the family's
    Prometheus name plus a ``key="value"`` label string; everything else
    returns its own name and an empty label.
    """
    for family, label in LABELED_FAMILIES.items():
        prefix = family + "."
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            if suffix and "." not in suffix:
                return _prom_name(family), f'{label}="{suffix}"'
    return _prom_name(name), ""


def _labels(*parts: str) -> str:
    """Join label fragments into a ``{...}`` block (empty when no labels)."""
    joined = ",".join(part for part in parts if part)
    return f"{{{joined}}}" if joined else ""


def _label_pair(key: str, value: Any) -> str:
    """One ``key="value"`` label fragment."""
    return f'{key}="{value}"'


def _prom_value(value: float) -> str:
    """Format a sample value (Prometheus spells non-finite values out)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """Render a registry (or a ``snapshot()`` dict) as Prometheus text.

    Accepting either form lets the live ``/metrics`` endpoint render the
    current registry while ``repro telemetry`` can re-render the snapshot
    a finished run left in its JSONL trace.
    """
    if isinstance(source, MetricsRegistry):
        lines = _render_registry(source)
    elif isinstance(source, dict):
        lines = _render_snapshot(source)
    else:
        raise ConfigurationError(
            "render_prometheus needs a MetricsRegistry or snapshot dict, "
            f"got {type(source).__name__}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def _type_line(lines: List[str], seen: set, series: str, kind: str) -> None:
    """Emit one ``# TYPE`` line per family (labeled series share theirs)."""
    if series not in seen:
        seen.add(series)
        lines.append(f"# TYPE {series} {kind}")


def _render_registry(registry: MetricsRegistry) -> List[str]:
    lines: List[str] = []
    seen: set = set()
    for name, counter in sorted(registry._counters.items()):
        base, label = _prom_series(name)
        _type_line(lines, seen, f"{base}_total", "counter")
        lines.append(f"{base}_total{_labels(label)} {_prom_value(counter.value)}")
    for name, gauge in sorted(registry._gauges.items()):
        if gauge.value is None:
            continue
        base, label = _prom_series(name)
        _type_line(lines, seen, base, "gauge")
        lines.append(f"{base}{_labels(label)} {_prom_value(gauge.value)}")
    for name, hist in sorted(registry._histograms.items()):
        base, label = _prom_series(name)
        _type_line(lines, seen, base, "histogram")
        cumulative = 0
        for bound, bucket_count in zip(hist.buckets, hist.bucket_counts):
            cumulative += bucket_count
            lines.append(
                f"{base}_bucket"
                f'{_labels(label, _label_pair("le", _prom_value(bound)))}'
                f" {cumulative}"
            )
        cumulative += hist.bucket_counts[-1]
        lines.append(
            f'{base}_bucket{_labels(label, _label_pair("le", "+Inf"))} {cumulative}'
        )
        lines.append(f"{base}_sum{_labels(label)} {_prom_value(hist.total)}")
        lines.append(f"{base}_count{_labels(label)} {hist.count}")
    for name, window in sorted(registry._windows.items()):
        base, label = _prom_series(name)
        _type_line(lines, seen, base, "summary")
        for q in SUMMARY_QUANTILES:
            lines.append(
                f'{base}{_labels(label, _label_pair("quantile", q))}'
                f" {_prom_value(window.quantile(q * 100.0))}"
            )
        values = list(window.window)
        lines.append(f"{base}_sum{_labels(label)} {_prom_value(float(sum(values)))}")
        lines.append(f"{base}_count{_labels(label)} {window.observed}")
        _type_line(lines, seen, f"{base}_window_size", "gauge")
        lines.append(f"{base}_window_size{_labels(label)} {len(values)}")
    return lines


def _render_snapshot(snapshot: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    seen: set = set()
    for name, value in sorted(snapshot.get("counters", {}).items()):
        base, label = _prom_series(name)
        _type_line(lines, seen, f"{base}_total", "counter")
        lines.append(f"{base}_total{_labels(label)} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if value is None:
            continue
        base, label = _prom_series(name)
        _type_line(lines, seen, base, "gauge")
        lines.append(f"{base}{_labels(label)} {_prom_value(value)}")
    # Snapshots keep percentile rollups, not raw buckets, so both session
    # histograms and windows degrade to summaries here.
    for kind in ("histograms", "windows"):
        for name, summary in sorted(snapshot.get(kind, {}).items()):
            base, label = _prom_series(name)
            _type_line(lines, seen, base, "summary")
            count = summary.get("count", 0)
            if count:
                for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    lines.append(
                        f'{base}{_labels(label, _label_pair("quantile", q))}'
                        f" {_prom_value(summary[key])}"
                    )
                lines.append(
                    f"{base}_sum{_labels(label)} {_prom_value(summary['mean'] * count)}"
                )
            lines.append(f"{base}_count{_labels(label)} {summary.get('observed', count)}")
    return lines


class MetricsServer:
    """Stdlib HTTP server exposing ``/metrics`` and ``/healthz``.

    Parameters
    ----------
    registry:
        The registry rendered on each ``/metrics`` scrape.
    health:
        Zero-argument callable returning a JSON-serializable health dict;
        ``/healthz`` answers 200 when it reports ``{"healthy": true}``
        (the default probe) and 503 otherwise.
    host / port:
        Bind address.  ``port=0`` picks a free port — read it back from
        :attr:`port` after :meth:`start` (tests and parallel CI use this).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.health = health if health is not None else (lambda: {"healthy": True})
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns self for chaining."""
        if self._server is not None:
            return self
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_prometheus(outer.registry).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif path == "/healthz":
                    try:
                        report = outer.health()
                    except Exception as exc:  # probe itself failing = unhealthy
                        report = {"healthy": False, "error": str(exc)}
                    body = json.dumps(report, sort_keys=True).encode("utf-8")
                    status = 200 if report.get("healthy") else 503
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_response(404)
                    self.send_header("Content-Length", "0")
                    self.end_headers()

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes are high-frequency; keep stderr quiet

        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        """Base URL of the running server (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False
