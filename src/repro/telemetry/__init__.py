"""Telemetry: metrics, spans, traces, and event export for runtime claims.

The paper argues VBP-based novelty detection is fast enough for real-time
deployment; this subsystem is how the repo *observes* that — per-frame
scoring spans, score/latency histograms with p50/p95/p99 summaries, and
alarm counters, exported as JSONL traces that ``repro telemetry`` renders.

Five pieces (see ``docs/observability.md`` for conventions):

* :class:`MetricsRegistry` — process-local counters, gauges, fixed-bucket
  histograms, and sliding-window histograms (live score distributions);
* spans — ``get_telemetry().span("vbp.forward")`` context managers that
  nest, accumulate wall-clock, and attach key/value attributes;
* trace contexts — :class:`TraceContext` triples that correlate spans
  across threads and processes into per-request trees (``repro trace``);
* sinks — :class:`JsonlSink` event export plus text/dict renderers;
* exposition — :func:`render_prometheus` and :class:`MetricsServer`, the
  scrape-able ``/metrics`` + ``/healthz`` endpoint.

All instrumented code paths run against a shared no-op null backend until
:func:`enable_telemetry` / :func:`telemetry_session` installs a real one,
so telemetry costs ~nothing when disabled.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowHistogram,
    render_snapshot,
)
from repro.telemetry.prometheus import MetricsServer, render_prometheus
from repro.telemetry.report import (
    collect_traces,
    render_jsonl_report,
    render_summary,
    render_trace_tree,
    summarize_events,
    summarize_kernel_spans,
)
from repro.telemetry.runtime import (
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_session,
)
from repro.telemetry.sink import (
    EventSink,
    JsonlSink,
    MemorySink,
    read_events,
    read_events_tolerant,
)
from repro.telemetry.spans import SpanRecord, Tracer
from repro.telemetry.trace import TraceContext, current_trace, use_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WindowHistogram",
    "render_snapshot",
    "MetricsServer",
    "render_prometheus",
    "collect_traces",
    "render_jsonl_report",
    "render_summary",
    "render_trace_tree",
    "summarize_events",
    "summarize_kernel_spans",
    "NullTelemetry",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "telemetry_session",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "read_events",
    "read_events_tolerant",
    "SpanRecord",
    "Tracer",
    "TraceContext",
    "current_trace",
    "use_trace",
]
