"""Telemetry: metrics, spans, and event export for the runtime claims.

The paper argues VBP-based novelty detection is fast enough for real-time
deployment; this subsystem is how the repo *observes* that — per-frame
scoring spans, score/latency histograms with p50/p95/p99 summaries, and
alarm counters, exported as JSONL traces that ``repro telemetry`` renders.

Three pieces (see ``docs/observability.md`` for conventions):

* :class:`MetricsRegistry` — process-local counters, gauges, and
  fixed-bucket histograms;
* spans — ``get_telemetry().span("vbp.forward")`` context managers that
  nest, accumulate wall-clock, and attach key/value attributes;
* sinks — :class:`JsonlSink` event export plus text/dict renderers.

All instrumented code paths run against a shared no-op null backend until
:func:`enable_telemetry` / :func:`telemetry_session` installs a real one,
so telemetry costs ~nothing when disabled.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)
from repro.telemetry.report import render_jsonl_report, render_summary, summarize_events
from repro.telemetry.runtime import (
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_session,
)
from repro.telemetry.sink import EventSink, JsonlSink, MemorySink, read_events
from repro.telemetry.spans import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_snapshot",
    "render_jsonl_report",
    "render_summary",
    "summarize_events",
    "NullTelemetry",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "telemetry_session",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "read_events",
    "SpanRecord",
    "Tracer",
]
