"""Event sinks: where telemetry records go.

Every record is one flat JSON-serializable dict with a ``type`` field
(``span``, ``event``, or ``snapshot``).  :class:`JsonlSink` appends one
JSON line per record — the trace format ``repro telemetry`` reads back —
and :class:`MemorySink` keeps records in a list for tests and notebooks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SerializationError


class EventSink:
    """Interface: receives record dicts, may buffer, must close cleanly."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemorySink(EventSink):
    """Keeps every record in memory (``sink.records``)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.closed = False

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink(EventSink):
    """Appends records as JSON lines to ``path`` (parent dirs created).

    ``flush_every`` bounds how many records a crashed process can lose:
    the handle is flushed after every N emits (default 1 — flush each
    record, so a live tail of the file is always current).  ``close``
    always flushes whatever remains buffered.
    """

    def __init__(self, path, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._handle = None
        self._pending = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("w", encoding="utf-8")
            except OSError as exc:
                raise SerializationError(
                    f"failed to open telemetry trace {self.path}: {exc}"
                ) from exc
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            self._handle.flush()
            self._pending = 0

    def close(self) -> None:
        if self._handle is not None:
            if self._pending:
                self._handle.flush()
                self._pending = 0
            self._handle.close()
            self._handle = None


def read_events(path) -> List[Dict[str, Any]]:
    """Parse a JSONL trace written by :class:`JsonlSink` back into dicts.

    Strict: any invalid line raises :class:`SerializationError` naming
    the exact location.  For traces that may have been cut mid-write by
    a crash, use :func:`read_events_tolerant`.
    """
    records, skipped = _read_jsonl(path, strict=True)
    assert not skipped
    return records


def read_events_tolerant(path) -> Tuple[List[Dict[str, Any]], int]:
    """Like :func:`read_events`, but skip unparseable lines.

    Returns ``(records, skipped)`` where ``skipped`` counts the lines
    dropped — a trace file from a crashed process routinely ends in a
    truncated line, and the CLI report commands should render the valid
    prefix (while telling the operator how much was unreadable) rather
    than die on :class:`json.JSONDecodeError`.
    """
    return _read_jsonl(path, strict=False)


def _read_jsonl(path, strict: bool) -> Tuple[List[Dict[str, Any]], int]:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"telemetry trace {path} does not exist")
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise SerializationError(
            f"failed to read telemetry trace {path}: {exc}"
        ) from exc
    records = []
    skipped = 0
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if strict:
                    raise SerializationError(
                        f"{path}:{lineno} is not valid JSON: {exc}"
                    ) from exc
                skipped += 1
    return records, skipped
