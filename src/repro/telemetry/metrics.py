"""Process-local metric instruments: counters, gauges, histograms.

The registry is deliberately tiny — no labels, no exposition formats, no
background threads.  Instruments are named with dotted lowercase paths
(``monitor.score``, ``trainer.grad_norm``) and live for the duration of one
telemetry session; :meth:`MetricsRegistry.snapshot` turns the whole
registry into a plain dict that serializes straight into the JSONL trace.

Histograms keep both fixed-bucket counts (for cheap distribution rendering)
and the raw observations, so the p50/p95/p99 summaries are exact — computed
with the same :func:`repro.utils.timer.percentile` interpolation the
:class:`~repro.utils.timer.Timer` uses, not bucket-boundary estimates.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.timer import percentile

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Default histogram buckets: log-spaced upper bounds covering microseconds
#: to tens of seconds when observing latencies, and most score ranges when
#: observing losses.  Values above the last bound land in an overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0**exp for exp in range(-6, 2) for base in (1.0, 2.5, 5.0)
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric names are dotted lowercase identifiers, got {name!r}"
        )
    return name


class Counter:
    """Monotonically increasing count (alarms raised, frames seen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """Last-written value of a quantity that can move both ways."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value of the gauge."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Fixed-bucket histogram with exact percentile summaries.

    Parameters
    ----------
    name:
        Dotted metric name.
    buckets:
        Ascending upper bounds; an implicit overflow bucket catches values
        above the last bound.  Defaults to :data:`DEFAULT_BUCKETS`.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "samples")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} needs strictly ascending bucket bounds"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.samples.append(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Exact linear-interpolated percentile of the observations.

        ``nan`` when the histogram is empty; the lone value when there is
        exactly one observation.  Never raises on an empty series.
        """
        return percentile(self.samples, q)

    def summary(self) -> Dict[str, float]:
        """The rollup recorded in snapshots: count/mean/min/max/p50/p95/p99."""
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


class WindowHistogram:
    """Sliding-window distribution over the last ``maxlen`` observations.

    Where :class:`Histogram` accumulates for a whole session, a window
    histogram answers "what does the score distribution look like *right
    now*" — the live view a scraper needs to see threshold drift (Shekar
    et al. 2022) rather than a session-lifetime average.  Exposed on
    ``/metrics`` as a summary with quantile labels.
    """

    __slots__ = ("name", "maxlen", "window", "observed")

    def __init__(self, name: str, maxlen: int = 1024) -> None:
        if maxlen < 1:
            raise ConfigurationError(
                f"window histogram {name} needs maxlen >= 1, got {maxlen}"
            )
        self.name = name
        self.maxlen = int(maxlen)
        self.window: Deque[float] = deque(maxlen=self.maxlen)
        self.observed = 0  # lifetime count, including evicted observations

    def observe(self, value: float) -> None:
        """Record one observation (evicting the oldest once full)."""
        self.window.append(float(value))
        self.observed += 1

    @property
    def count(self) -> int:
        """Observations currently in the window."""
        return len(self.window)

    def quantile(self, q: float) -> float:
        """Percentile over the current window (``nan`` when empty)."""
        return percentile(self.window, q)

    def summary(self) -> Dict[str, float]:
        """Rollup of the current window plus the lifetime ``observed``."""
        if not self.window:
            return {"count": 0, "observed": self.observed}
        values = list(self.window)
        return {
            "count": len(values),
            "observed": self.observed,
            "mean": float(sum(values)) / len(values),
            "min": min(values),
            "max": max(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one telemetry session."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._windows: Dict[str, WindowHistogram] = {}

    def _claim(self, name: str, kind: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms, self._windows):
            if family is not kind and name in family:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        if name not in self._counters:
            self._claim(_check_name(name), self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        if name not in self._gauges:
            self._claim(_check_name(name), self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram named ``name`` (created on first request).

        ``buckets`` only takes effect at creation; later requests return
        the existing instrument unchanged.
        """
        if name not in self._histograms:
            self._claim(_check_name(name), self._histograms)
            self._histograms[name] = Histogram(name, buckets=buckets)
        return self._histograms[name]

    def window_histogram(self, name: str, maxlen: int = 1024) -> WindowHistogram:
        """The sliding-window histogram named ``name`` (created on first
        request; ``maxlen`` only takes effect at creation)."""
        if name not in self._windows:
            self._claim(_check_name(name), self._windows)
            self._windows[name] = WindowHistogram(name, maxlen=maxlen)
        return self._windows[name]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument (JSON-serializable)."""
        snap = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
        if self._windows:
            snap["windows"] = {
                n: w.summary() for n, w in sorted(self._windows.items())
            }
        return snap

    def render(self) -> str:
        """Human-readable multi-line report of the current snapshot."""
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Format a :meth:`MetricsRegistry.snapshot` dict as a text block."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        lines.extend(f"  {n:<32} {v:>12g}" for n, v in sorted(counters.items()))
    if gauges:
        lines.append("gauges:")
        lines.extend(
            f"  {n:<32} {'unset' if v is None else format(v, '>12.6g')}"
            for n, v in sorted(gauges.items())
        )
    if histograms:
        lines.append("histograms:")
        for name, summary in sorted(histograms.items()):
            if not summary.get("count"):
                lines.append(f"  {name:<32} (empty)")
                continue
            lines.append(
                f"  {name:<32} n={summary['count']:<6} mean={summary['mean']:.6g} "
                f"p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                f"p99={summary['p99']:.6g} max={summary['max']:.6g}"
            )
    windows = snapshot.get("windows", {})
    if windows:
        lines.append("windows:")
        for name, summary in sorted(windows.items()):
            if not summary.get("count"):
                lines.append(f"  {name:<32} (empty)")
                continue
            lines.append(
                f"  {name:<32} n={summary['count']:<6} "
                f"observed={summary['observed']:<8} mean={summary['mean']:.6g} "
                f"p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                f"p99={summary['p99']:.6g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
