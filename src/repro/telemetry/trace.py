"""Distributed trace contexts: correlate spans across threads and processes.

A :class:`TraceContext` is the (trace_id, span_id, parent_id) triple that
turns isolated span records into one per-request tree.  The serving engine
creates a root context per admitted request, carries it through the
micro-batcher queue, serializes it across the worker-pool pipe protocol and
the TCP frontend (``to_dict`` / ``from_dict``), and every span emitted
under it — queue wait, batch scoring, per-kernel timings — links back via
``parent_id``, so ``repro trace <trace_id>`` can reconstruct the request's
full path from the JSONL sink.

Propagation is explicit where it must be (anything crossing a queue, pipe,
or socket carries the context as a value — the serving lint enforces it)
and ambient where it can be: :func:`use_trace` installs a context in
thread-local state, and spans opened without an explicit ``trace=`` inherit
it, so the existing instrumentation (``pipeline.score_batch``,
``vbp.forward``, kernel hooks) joins a request's trace automatically when
it runs under a traced region.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exceptions import SerializationError

#: Bytes of entropy per generated id (hex-encoded, so ids are twice this).
_TRACE_ID_BYTES = 8
_SPAN_ID_BYTES = 8


def _new_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One position in a request's span tree.

    Attributes
    ----------
    trace_id:
        Identifier shared by every span of one request.
    span_id:
        Identifier of the span this context represents.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` at the root.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def new_root(cls) -> "TraceContext":
        """A fresh root context (new trace_id, no parent)."""
        return cls(trace_id=_new_id(_TRACE_ID_BYTES), span_id=_new_id(_SPAN_ID_BYTES))

    def child(self) -> "TraceContext":
        """A child context: same trace, new span id, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_id(_SPAN_ID_BYTES),
            parent_id=self.span_id,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for queues, pipes, and wire protocols."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        """Rebuild a context received over a process boundary."""
        if not isinstance(payload, dict):
            raise SerializationError(
                f"trace context must be a dict, got {type(payload).__name__}"
            )
        try:
            trace_id = payload["trace_id"]
            span_id = payload["span_id"]
        except KeyError as exc:
            raise SerializationError(
                f"trace context is missing required key {exc}"
            ) from exc
        parent_id = payload.get("parent_id")
        for name, value in (("trace_id", trace_id), ("span_id", span_id)):
            if not isinstance(value, str) or not value:
                raise SerializationError(
                    f"trace context {name} must be a non-empty string, got {value!r}"
                )
        if parent_id is not None and not isinstance(parent_id, str):
            raise SerializationError(
                f"trace context parent_id must be a string or None, got {parent_id!r}"
            )
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id)


_STATE = threading.local()


def current_trace() -> Optional[TraceContext]:
    """The context ambient on this thread, or ``None`` outside any trace."""
    return getattr(_STATE, "context", None)


def _set_current(context: Optional[TraceContext]) -> None:
    _STATE.context = context


class _TraceScope:
    """Context manager installing (and restoring) the ambient trace."""

    __slots__ = ("context", "_previous")

    def __init__(self, context: Optional[TraceContext]) -> None:
        self.context = context
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        self._previous = current_trace()
        _set_current(self.context)
        return self.context

    def __exit__(self, *exc: Any) -> bool:
        _set_current(self._previous)
        return False


def use_trace(context: Optional[TraceContext]) -> _TraceScope:
    """Scope ``context`` as the ambient trace for the current thread.

    Spans opened inside the scope without an explicit ``trace=`` parent
    themselves under it; ``use_trace(None)`` masks any outer trace.

    >>> ctx = TraceContext.new_root()
    >>> with use_trace(ctx):
    ...     assert current_trace() is ctx
    >>> current_trace() is None
    True
    """
    return _TraceScope(context)
