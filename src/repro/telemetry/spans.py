"""Span-based tracing for nested wall-clock measurement.

A span measures one named region of work (``vbp.forward``,
``trainer.epoch``).  Spans nest lexically — entering a span inside another
records the parent name and depth — so a trace of one monitored frame reads
as a tree: ``monitor.frame`` containing ``pipeline.score`` containing
``vbp.forward`` and ``one_class.score``.

The tracer is process-local and single-threaded, like everything else in
this library; it keeps an explicit stack rather than thread-locals.

Spans can additionally be *trace-linked* (see :mod:`repro.telemetry.trace`):
``span(name, trace=ctx)`` parents the span under an explicit
:class:`~repro.telemetry.trace.TraceContext` (``trace="new"`` starts a
fresh trace with this span as root), and a span opened with no ``trace=``
inherits the ambient thread-local context, so nested instrumentation joins
a request's trace automatically.  Trace-linked spans carry
``trace_id``/``span_id``/``parent_span_id`` on their records;
:meth:`Tracer.add_span` records a synthetic span for regions that cannot
be a lexical ``with`` block (queue wait measured across threads).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.telemetry.trace import TraceContext, current_trace, use_trace


@dataclass
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted span name.
    index:
        Monotone per-tracer sequence number (finish order).
    start:
        Start time in seconds relative to the tracer's epoch.
    duration:
        Wall-clock seconds spent inside the span (includes children).
    parent:
        Name of the enclosing span, or ``None`` at top level.
    depth:
        Nesting depth (0 = top level).
    attributes:
        Key/value pairs attached at entry (plus ``error=True`` when the
        span exited via an exception).
    trace_id / span_id / parent_span_id:
        Distributed-trace linkage (``None`` for spans recorded outside any
        trace context); see :mod:`repro.telemetry.trace`.
    """

    name: str
    index: int
    start: float
    duration: float
    parent: Optional[str]
    depth: int
    attributes: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None


class _ActiveSpan:
    """Context manager for one live span (returned by :meth:`Tracer.span`)."""

    __slots__ = (
        "_tracer",
        "name",
        "attributes",
        "_start",
        "parent",
        "depth",
        "_trace",
        "context",
        "_scope",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: Dict[str, Any],
        trace: Union[TraceContext, str, None] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self._start = 0.0
        self.parent: Optional[str] = None
        self.depth = 0
        self._trace = trace
        #: The span's own trace context (set on entry; ``None`` untraced).
        self.context: Optional[TraceContext] = None
        self._scope = None

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        if self._trace == "new":
            self.context = TraceContext.new_root()
        else:
            parent_ctx = self._trace if self._trace is not None else current_trace()
            if parent_ctx is not None:
                self.context = parent_ctx.child()
        if self.context is not None:
            self._scope = use_trace(self.context)
            self._scope.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if self._scope is not None:
            self._scope.__exit__(exc_type, exc, tb)
            self._scope = None
        stack = self._tracer._stack
        # Tolerate out-of-order exits (generators, test teardown): pop back
        # to this span instead of corrupting the stack.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attributes["error"] = True
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Creates nested spans and hands finished records to a callback.

    Parameters
    ----------
    on_finish:
        Called with each :class:`SpanRecord` as the span exits (the
        telemetry runtime uses this to feed sinks and latency histograms).
    keep_records:
        Also retain finished records on :attr:`records` for in-process
        inspection.  Tests use this; long-lived sessions that only export
        to a sink can turn it off.
    """

    def __init__(
        self,
        on_finish: Optional[Callable[[SpanRecord], None]] = None,
        keep_records: bool = True,
    ) -> None:
        self._stack: List[_ActiveSpan] = []
        self._on_finish = on_finish
        self._keep_records = bool(keep_records)
        self._epoch = time.perf_counter()
        self._count = 0
        self.records: List[SpanRecord] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when no span is open)."""
        return len(self._stack)

    def span(
        self,
        name: str,
        trace: Union[TraceContext, str, None] = None,
        **attributes: Any,
    ) -> _ActiveSpan:
        """A context manager timing the named region.

        Key/value ``attributes`` are attached to the finished record; more
        can be added inside the block via the yielded span's
        ``attributes`` dict.  ``trace`` parents the span under an explicit
        :class:`~repro.telemetry.trace.TraceContext` (``"new"`` starts a
        fresh trace rooted at this span); with no ``trace`` the span
        inherits the ambient thread-local context, if any.
        """
        return _ActiveSpan(self, name, dict(attributes), trace=trace)

    def now(self) -> float:
        """Current time relative to the tracer's epoch (for synthetic spans)."""
        return time.perf_counter() - self._epoch

    def add_span(
        self,
        name: str,
        duration: float,
        context: Optional[TraceContext] = None,
        end: Optional[float] = None,
        **attributes: Any,
    ) -> SpanRecord:
        """Record a synthetic span that was not a lexical ``with`` block.

        Cross-thread regions — a request's queue wait, its end-to-end
        latency — start on one thread and end on another, so they cannot
        be context managers.  The caller supplies the measured ``duration``
        and (optionally) the span's own trace ``context``; ``end`` is the
        finish time relative to :meth:`now` (default: now), from which the
        start offset is derived.
        """
        finished = self.now() if end is None else end
        record = SpanRecord(
            name=name,
            index=self._count,
            start=finished - duration,
            duration=duration,
            parent=None,
            depth=0,
            attributes=dict(attributes),
            trace_id=None if context is None else context.trace_id,
            span_id=None if context is None else context.span_id,
            parent_span_id=None if context is None else context.parent_id,
        )
        self._count += 1
        if self._keep_records:
            self.records.append(record)
        if self._on_finish is not None:
            self._on_finish(record)
        return record

    def _finish(self, span: _ActiveSpan, duration: float) -> None:
        context = span.context
        record = SpanRecord(
            name=span.name,
            index=self._count,
            start=span._start - self._epoch,
            duration=duration,
            parent=span.parent,
            depth=span.depth,
            attributes=span.attributes,
            trace_id=None if context is None else context.trace_id,
            span_id=None if context is None else context.span_id,
            parent_span_id=None if context is None else context.parent_id,
        )
        self._count += 1
        if self._keep_records:
            self.records.append(record)
        if self._on_finish is not None:
            self._on_finish(record)
