"""Span-based tracing for nested wall-clock measurement.

A span measures one named region of work (``vbp.forward``,
``trainer.epoch``).  Spans nest lexically — entering a span inside another
records the parent name and depth — so a trace of one monitored frame reads
as a tree: ``monitor.frame`` containing ``pipeline.score`` containing
``vbp.forward`` and ``one_class.score``.

The tracer is process-local and single-threaded, like everything else in
this library; it keeps an explicit stack rather than thread-locals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted span name.
    index:
        Monotone per-tracer sequence number (finish order).
    start:
        Start time in seconds relative to the tracer's epoch.
    duration:
        Wall-clock seconds spent inside the span (includes children).
    parent:
        Name of the enclosing span, or ``None`` at top level.
    depth:
        Nesting depth (0 = top level).
    attributes:
        Key/value pairs attached at entry (plus ``error=True`` when the
        span exited via an exception).
    """

    name: str
    index: int
    start: float
    duration: float
    parent: Optional[str]
    depth: int
    attributes: Dict[str, Any] = field(default_factory=dict)


class _ActiveSpan:
    """Context manager for one live span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "attributes", "_start", "parent", "depth")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self._start = 0.0
        self.parent: Optional[str] = None
        self.depth = 0

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        # Tolerate out-of-order exits (generators, test teardown): pop back
        # to this span instead of corrupting the stack.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attributes["error"] = True
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Creates nested spans and hands finished records to a callback.

    Parameters
    ----------
    on_finish:
        Called with each :class:`SpanRecord` as the span exits (the
        telemetry runtime uses this to feed sinks and latency histograms).
    keep_records:
        Also retain finished records on :attr:`records` for in-process
        inspection.  Tests use this; long-lived sessions that only export
        to a sink can turn it off.
    """

    def __init__(
        self,
        on_finish: Optional[Callable[[SpanRecord], None]] = None,
        keep_records: bool = True,
    ) -> None:
        self._stack: List[_ActiveSpan] = []
        self._on_finish = on_finish
        self._keep_records = bool(keep_records)
        self._epoch = time.perf_counter()
        self._count = 0
        self.records: List[SpanRecord] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when no span is open)."""
        return len(self._stack)

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """A context manager timing the named region.

        Key/value ``attributes`` are attached to the finished record; more
        can be added inside the block via the yielded span's
        ``attributes`` dict.
        """
        return _ActiveSpan(self, name, dict(attributes))

    def _finish(self, span: _ActiveSpan, duration: float) -> None:
        record = SpanRecord(
            name=span.name,
            index=self._count,
            start=span._start - self._epoch,
            duration=duration,
            parent=span.parent,
            depth=span.depth,
            attributes=span.attributes,
        )
        self._count += 1
        if self._keep_records:
            self.records.append(record)
        if self._on_finish is not None:
            self._on_finish(record)
