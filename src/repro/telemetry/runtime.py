"""The telemetry runtime: an active backend behind ``get_telemetry()``.

Instrumented code throughout the library does::

    telem = get_telemetry()
    with telem.span("vbp.forward", frames=n):
        ...
    telem.counter("monitor.alarms_raised").inc()

By default the active backend is a process-wide :class:`NullTelemetry`
whose instruments and spans are shared no-op singletons, so instrumented
hot paths cost a couple of attribute lookups and nothing else (verified by
``benchmarks/test_telemetry_overhead.py``).  :func:`enable_telemetry` (or
the :func:`telemetry_session` context manager, which the CLI's
``--telemetry`` flag uses) swaps in a real :class:`Telemetry` that records
metrics, traces spans, and streams JSONL records to disk.

Code that wants to skip *preparing* telemetry data entirely (for example
computing a gradient norm only to discard it) can branch on
``get_telemetry().enabled``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry, WindowHistogram
from repro.telemetry.sink import EventSink, JsonlSink
from repro.telemetry.spans import SpanRecord, Tracer
from repro.telemetry.trace import TraceContext

#: Bucket bounds used for span-duration histograms (seconds, 1µs..50s).
SPAN_BUCKETS = tuple(
    base * 10.0**exp for exp in range(-6, 2) for base in (1.0, 5.0)
)


class _NullSpan:
    """Reusable no-op context manager returned by :meth:`NullTelemetry.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullTelemetry:
    """Disabled backend: every operation is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def window_histogram(self, name: str, maxlen: int = 1024) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, trace: Any = None, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, duration: float, **kwargs: Any) -> None:
        pass

    def replay_span(self, record: Dict[str, Any]) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


class Telemetry:
    """Enabled backend: metrics registry + span tracer + event sinks.

    Parameters
    ----------
    jsonl_path:
        When given, every span/event record (and a final metrics snapshot
        on :meth:`close`) is appended to this file as JSON lines.
    registry:
        Share an existing :class:`MetricsRegistry` instead of creating one.
    """

    enabled = True

    def __init__(self, jsonl_path=None, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(on_finish=self._on_span_finish)
        self.sinks: List[EventSink] = []
        if jsonl_path is not None:
            self.sinks.append(JsonlSink(jsonl_path))
        self._wall_start = time.time()
        self._closed = False
        # Serving emits from several threads at once (socket handlers, the
        # dispatch loop); one lock keeps sink writes whole-record atomic.
        self._emit_lock = threading.Lock()

    # -- instruments (delegate to the registry) -------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self.registry.histogram(name, buckets=buckets)

    def window_histogram(self, name: str, maxlen: int = 1024) -> WindowHistogram:
        return self.registry.window_histogram(name, maxlen=maxlen)

    # -- spans and events ------------------------------------------------
    def span(self, name: str, trace: Any = None, **attributes: Any):
        """Context manager timing a named region (see :class:`Tracer`).

        ``trace`` accepts a :class:`~repro.telemetry.trace.TraceContext`
        to parent under, or ``"new"`` to root a fresh trace at this span.
        """
        return self.tracer.span(name, trace=trace, **attributes)

    def add_span(
        self,
        name: str,
        duration: float,
        context: Optional[TraceContext] = None,
        end: Optional[float] = None,
        **attributes: Any,
    ) -> None:
        """Record a synthetic (non-lexical) span; see :meth:`Tracer.add_span`."""
        self.tracer.add_span(name, duration, context=context, end=end, **attributes)

    def replay_span(self, record: Dict[str, Any]) -> None:
        """Re-emit a span record dict produced in another process.

        The worker pool collects span records inside worker processes and
        ships them back in the scoring reply; the parent replays them here
        so one JSONL sink holds the whole request tree.  Feeds the same
        ``span.<name>`` duration histogram as a locally finished span.
        """
        name = record.get("name", "unknown")
        duration = float(record.get("duration", 0.0))
        self.histogram(f"span.{name}", buckets=SPAN_BUCKETS).observe(duration)
        payload = dict(record)
        payload["type"] = "span"
        payload.setdefault("t", time.time() - self._wall_start)
        self._emit(payload)

    def event(self, name: str, **fields: Any) -> None:
        """Record one discrete occurrence with key/value payload."""
        self._emit(
            {
                "type": "event",
                "name": name,
                "t": time.time() - self._wall_start,
                "fields": _jsonable(fields),
            }
        )

    def _on_span_finish(self, record: SpanRecord) -> None:
        self.histogram(f"span.{record.name}", buckets=SPAN_BUCKETS).observe(
            record.duration
        )
        payload = {
            "type": "span",
            "name": record.name,
            "t": record.start,
            "duration": record.duration,
            "parent": record.parent,
            "depth": record.depth,
            "attrs": _jsonable(record.attributes),
        }
        if record.trace_id is not None:
            payload["trace_id"] = record.trace_id
            payload["span_id"] = record.span_id
            payload["parent_span_id"] = record.parent_span_id
        self._emit(payload)

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(record)

    def add_sink(self, sink: EventSink) -> None:
        """Attach another sink (tests use :class:`MemorySink`)."""
        self.sinks.append(sink)

    def snapshot(self) -> Dict[str, Any]:
        """Current metrics snapshot (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()

    def close(self) -> None:
        """Emit the final metrics snapshot and close every sink."""
        if self._closed:
            return
        self._closed = True
        self._emit(
            {
                "type": "snapshot",
                "t": time.time() - self._wall_start,
                "metrics": self.registry.snapshot(),
            }
        )
        for sink in self.sinks:
            sink.close()


def _jsonable(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-friendly scalars."""
    out: Dict[str, Any] = {}
    for key, value in mapping.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        elif hasattr(value, "item"):  # numpy scalar
            out[key] = value.item()
        else:
            out[key] = str(value)
    return out


_NULL = NullTelemetry()
_ACTIVE: Any = _NULL


def get_telemetry():
    """The process-wide active backend (null unless a session is open)."""
    return _ACTIVE


def enable_telemetry(jsonl_path=None, registry: Optional[MetricsRegistry] = None) -> Telemetry:
    """Install (and return) an enabled backend as the active telemetry.

    An already-active session is closed first — sessions do not nest.
    """
    global _ACTIVE
    if _ACTIVE is not _NULL:
        _ACTIVE.close()
    _ACTIVE = Telemetry(jsonl_path=jsonl_path, registry=registry)
    return _ACTIVE


def disable_telemetry() -> None:
    """Close the active session (if any) and restore the null backend."""
    global _ACTIVE
    if _ACTIVE is not _NULL:
        _ACTIVE.close()
        _ACTIVE = _NULL


@contextmanager
def telemetry_session(jsonl_path=None, registry: Optional[MetricsRegistry] = None) -> Iterator[Telemetry]:
    """Scoped telemetry: enable on entry, snapshot + restore null on exit.

    >>> from repro.telemetry import telemetry_session, get_telemetry
    >>> with telemetry_session() as telem:
    ...     with get_telemetry().span("work"):
    ...         pass
    ...     n = telem.histogram("span.work").count
    >>> n
    1
    """
    telem = enable_telemetry(jsonl_path=jsonl_path, registry=registry)
    try:
        yield telem
    finally:
        disable_telemetry()
