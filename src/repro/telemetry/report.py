"""Rendering JSONL telemetry traces into human-readable reports.

``repro telemetry TRACE`` is a thin wrapper over
:func:`render_jsonl_report`; :func:`summarize_events` is the
machine-readable middle step tests assert against.

Trace-aware additions: :func:`collect_traces` groups span records by
``trace_id``, :func:`render_trace_tree` prints one request's span tree
(what ``repro trace <id>`` shows), and :func:`summarize_kernel_spans`
aggregates ``kernel.*`` spans into the ``repro profile`` table rows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.telemetry.sink import read_events_tolerant
from repro.utils.timer import percentile


def summarize_events(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace's records into one summary dict.

    Returns
    -------
    dict with keys:

    ``spans``
        Per span name: ``count``, ``total``, ``mean``, ``p50``, ``p95``,
        ``p99``, ``max`` over durations (seconds), recomputed from the raw
        span records with :func:`repro.utils.timer.percentile`, plus
        ``attr_keys`` — every attribute key seen on spans of this name.
    ``events``
        Per event name: occurrence count.
    ``metrics``
        The final ``snapshot`` record's counters/gauges/histograms
        (empty dicts when the trace has no snapshot).
    ``traces``
        Per ``trace_id`` (insertion order = first appearance): number of
        linked span records.
    ``n_records``
        Total records parsed.
    """
    durations: Dict[str, List[float]] = {}
    attr_keys: Dict[str, List[str]] = {}
    trace_counts: Dict[str, int] = {}
    event_counts: Dict[str, int] = {}
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for record in records:
        kind = record.get("type")
        if kind == "span":
            name = record["name"]
            durations.setdefault(name, []).append(float(record["duration"]))
            keys = attr_keys.setdefault(name, [])
            for key in record.get("attrs") or {}:
                if key not in keys:
                    keys.append(key)
            trace_id = record.get("trace_id")
            if trace_id:
                trace_counts[trace_id] = trace_counts.get(trace_id, 0) + 1
        elif kind == "event":
            name = record.get("name", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
        elif kind == "snapshot":
            metrics = record.get("metrics", metrics)
    spans = {
        name: {
            "count": len(laps),
            "total": sum(laps),
            "mean": sum(laps) / len(laps),
            "p50": percentile(laps, 50.0),
            "p95": percentile(laps, 95.0),
            "p99": percentile(laps, 99.0),
            "max": max(laps),
            "attr_keys": sorted(attr_keys.get(name, [])),
        }
        for name, laps in durations.items()
    }
    return {
        "spans": spans,
        "events": event_counts,
        "metrics": metrics,
        "traces": trace_counts,
        "n_records": len(records),
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Format a :func:`summarize_events` dict as a text report."""
    from repro.telemetry.metrics import render_snapshot

    lines = [f"telemetry trace: {summary['n_records']} records"]
    spans = summary.get("spans", {})
    if spans:
        lines.append("")
        lines.append(
            f"{'span':<28} {'count':>6} {'total s':>9} {'mean ms':>9} "
            f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'max ms':>9}  attrs"
        )
        for name, s in sorted(spans.items(), key=lambda kv: -kv[1]["total"]):
            attrs = ",".join(s.get("attr_keys", [])) or "-"
            lines.append(
                f"{name:<28} {s['count']:>6} {s['total']:>9.3f} "
                f"{s['mean'] * 1e3:>9.3f} {s['p50'] * 1e3:>9.3f} "
                f"{s['p95'] * 1e3:>9.3f} {s['p99'] * 1e3:>9.3f} "
                f"{s['max'] * 1e3:>9.3f}  {attrs}"
            )
    traces = summary.get("traces", {})
    if traces:
        lines.append("")
        lines.append(f"traces: {len(traces)} (render one with `repro trace <id>`)")
        for trace_id, n_spans in list(traces.items())[:8]:
            lines.append(f"  {trace_id:<20} {n_spans:>4} spans")
        if len(traces) > 8:
            lines.append(f"  ... and {len(traces) - 8} more")
    events = summary.get("events", {})
    if events:
        lines.append("")
        lines.append("events:")
        lines.extend(
            f"  {name:<32} {count:>6}" for name, count in sorted(events.items())
        )
    metrics = summary.get("metrics") or {}
    if any(metrics.get(k) for k in ("counters", "gauges", "histograms")):
        lines.append("")
        lines.append(render_snapshot(metrics))
    return "\n".join(lines)


def render_jsonl_report(path) -> str:
    """Read a JSONL trace and render its full report.

    Tolerant of a trace cut mid-write by a crash: unparseable lines are
    skipped and counted in the report header instead of raising.
    """
    records, skipped = read_events_tolerant(path)
    report = render_summary(summarize_events(records))
    if skipped:
        report += f"\n\nwarning: skipped {skipped} corrupt/truncated line(s)"
    return report


# -- per-request trace trees -----------------------------------------------


def collect_traces(records: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group span records by ``trace_id`` (insertion = first appearance)."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        trace_id = record.get("trace_id")
        if trace_id:
            traces.setdefault(trace_id, []).append(record)
    return traces


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in sorted(attrs.items()):
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return " {" + " ".join(parts) + "}"


def render_trace_tree(records: List[Dict[str, Any]], trace_id: str) -> str:
    """Render one request's span tree from its linked span records.

    Spans are nested by ``parent_span_id``; spans whose parent never made
    it into the sink (a dropped record, a root emitted elsewhere) are
    promoted to top level rather than lost.  Each line carries the span's
    duration, short span id, and attributes — the full story of one
    request: frontend → queue → batch → worker → kernels.
    """
    traces = collect_traces(records)
    if trace_id not in traces:
        known = ", ".join(list(traces)[:5]) or "none"
        raise ConfigurationError(
            f"trace {trace_id!r} not found in this telemetry file "
            f"(known trace ids: {known})"
        )
    spans = traces[trace_id]
    by_id: Dict[str, Dict[str, Any]] = {
        s["span_id"]: s for s in spans if s.get("span_id")
    }
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_span_id")
        if parent not in by_id:
            parent = None  # orphan or true root: promote to top level
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: float(s.get("t", 0.0)))

    total = sum(float(s.get("duration", 0.0)) for s in children.get(None, []))
    lines = [f"trace {trace_id} — {len(spans)} spans, {total * 1e3:.3f} ms at roots"]

    def walk(span: Dict[str, Any], prefix: str, is_last: bool) -> None:
        connector = "`-" if is_last else "|-"
        duration_ms = float(span.get("duration", 0.0)) * 1e3
        span_id = span.get("span_id") or "?"
        lines.append(
            f"{prefix}{connector} {span['name']}  {duration_ms:.3f} ms"
            f"  [{span_id}]{_format_attrs(span.get('attrs') or {})}"
        )
        child_prefix = prefix + ("   " if is_last else "|  ")
        kids = children.get(span.get("span_id"), [])
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


# -- kernel-span aggregation (`repro profile`) -----------------------------


def summarize_kernel_spans(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate ``kernel.*`` spans into profile-table rows.

    Returns the same row shape as
    :meth:`repro.nn.backend.profiler.KernelProfiler.snapshot` — name,
    calls, seconds, flops, bytes, shapes — sorted by total seconds, so
    ``repro profile`` renders JSONL-derived and live aggregates through
    one table formatter.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name", "")
        if not name.startswith("kernel."):
            continue
        kernel = name[len("kernel."):]
        row = rows.setdefault(
            kernel,
            {"name": kernel, "calls": 0, "seconds": 0.0, "flops": 0.0,
             "bytes": 0.0, "shapes": {}},
        )
        attrs = record.get("attrs") or {}
        row["calls"] += 1
        row["seconds"] += float(record.get("duration", 0.0))
        row["flops"] += float(attrs.get("flops", 0.0))
        row["bytes"] += float(attrs.get("bytes", 0.0))
        shape = str(attrs.get("shape", "-"))
        row["shapes"][shape] = row["shapes"].get(shape, 0) + 1
    return sorted(rows.values(), key=lambda r: r["seconds"], reverse=True)
