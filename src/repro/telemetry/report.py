"""Rendering JSONL telemetry traces into human-readable reports.

``repro telemetry TRACE`` is a thin wrapper over
:func:`render_jsonl_report`; :func:`summarize_events` is the
machine-readable middle step tests assert against.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.telemetry.sink import read_events
from repro.utils.timer import percentile


def summarize_events(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace's records into one summary dict.

    Returns
    -------
    dict with keys:

    ``spans``
        Per span name: ``count``, ``total``, ``mean``, ``p50``, ``p95``,
        ``p99``, ``max`` over durations (seconds), recomputed from the raw
        span records with :func:`repro.utils.timer.percentile`.
    ``events``
        Per event name: occurrence count.
    ``metrics``
        The final ``snapshot`` record's counters/gauges/histograms
        (empty dicts when the trace has no snapshot).
    ``n_records``
        Total records parsed.
    """
    durations: Dict[str, List[float]] = {}
    event_counts: Dict[str, int] = {}
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for record in records:
        kind = record.get("type")
        if kind == "span":
            durations.setdefault(record["name"], []).append(
                float(record["duration"])
            )
        elif kind == "event":
            name = record.get("name", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
        elif kind == "snapshot":
            metrics = record.get("metrics", metrics)
    spans = {
        name: {
            "count": len(laps),
            "total": sum(laps),
            "mean": sum(laps) / len(laps),
            "p50": percentile(laps, 50.0),
            "p95": percentile(laps, 95.0),
            "p99": percentile(laps, 99.0),
            "max": max(laps),
        }
        for name, laps in durations.items()
    }
    return {
        "spans": spans,
        "events": event_counts,
        "metrics": metrics,
        "n_records": len(records),
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Format a :func:`summarize_events` dict as a text report."""
    from repro.telemetry.metrics import render_snapshot

    lines = [f"telemetry trace: {summary['n_records']} records"]
    spans = summary.get("spans", {})
    if spans:
        lines.append("")
        lines.append(
            f"{'span':<28} {'count':>6} {'total s':>9} {'mean ms':>9} "
            f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'max ms':>9}"
        )
        for name, s in sorted(spans.items(), key=lambda kv: -kv[1]["total"]):
            lines.append(
                f"{name:<28} {s['count']:>6} {s['total']:>9.3f} "
                f"{s['mean'] * 1e3:>9.3f} {s['p50'] * 1e3:>9.3f} "
                f"{s['p95'] * 1e3:>9.3f} {s['p99'] * 1e3:>9.3f} "
                f"{s['max'] * 1e3:>9.3f}"
            )
    events = summary.get("events", {})
    if events:
        lines.append("")
        lines.append("events:")
        lines.extend(
            f"  {name:<32} {count:>6}" for name, count in sorted(events.items())
        )
    metrics = summary.get("metrics") or {}
    if any(metrics.get(k) for k in ("counters", "gauges", "histograms")):
        lines.append("")
        lines.append(render_snapshot(metrics))
    return "\n".join(lines)


def render_jsonl_report(path) -> str:
    """Read a JSONL trace and render its full report."""
    return render_summary(summarize_events(read_events(path)))
