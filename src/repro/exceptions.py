"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime state
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at construction time (e.g. a dataclass ``__post_init__``)
    so that invalid setups fail before any expensive work starts.
    """


class ShapeError(ReproError):
    """An array has the wrong shape or dimensionality for an operation."""


class NotFittedError(ReproError):
    """A component that must be trained/fitted first was used prematurely.

    For example calling :meth:`repro.novelty.NoveltyDetector.predict` before
    :meth:`~repro.novelty.NoveltyDetector.fit`.
    """


class SerializationError(ReproError):
    """A model checkpoint could not be written or read back consistently."""


class ArtifactError(SerializationError):
    """A serving artifact bundle is missing, corrupted, or incompatible.

    Raised by :mod:`repro.serving.artifacts` when a bundle directory fails
    manifest validation (schema/version mismatch, config-hash mismatch,
    missing files) — always with a message naming the exact problem.
    """


class ServingError(ReproError):
    """The serving runtime was misused or failed at request time."""


class RequestRejectedError(ServingError):
    """The server refused a request at admission (client-side view).

    Raised by :meth:`~repro.serving.ServingClient.score_strict` when the
    wire response carries ``status: "rejected"`` — the server's admission
    policy (quota, concurrency limit, or deadline shedding) refused the
    request before queueing it.  Do not blindly retry: honor
    :attr:`retry_after_ms` when present.
    """

    def __init__(
        self,
        message: str,
        reason: str = "",
        qos_class: str = "",
        retry_after_ms=None,
    ) -> None:
        super().__init__(message)
        #: Machine-readable rejection reason from the server.
        self.reason = reason
        #: Priority class the request resolved to on the server.
        self.qos_class = qos_class
        #: Suggested client backoff in milliseconds (``None`` if the
        #: server did not provide one).
        self.retry_after_ms = retry_after_ms


class ServerOverloadedError(RequestRejectedError):
    """The server's bounded request queue was full (``status: "overloaded"``).

    A transient backpressure signal rather than a policy decision —
    retrying after a short backoff is reasonable, unlike for its parent
    :class:`RequestRejectedError`.
    """


class RequestTimedOutError(ServingError):
    """The request was admitted but its deadline passed while queued
    (``status: "deadline_exceeded"``)."""


class RequestFailedError(ServingError):
    """The server answered ``status: "failed"`` or ``"error"`` — the
    scoring backend raised, the engine shut down mid-flight, or the
    request itself was malformed."""


class WorkerCrashError(ServingError):
    """A worker-pool replica died (or hung) while handling a request.

    The pool restarts crashed workers automatically; this surfaces only
    when a request could not be completed even after a restart-and-retry.
    """


class ReliabilityError(ReproError):
    """A fault-tolerance component was misused or tripped at runtime."""


class CircuitOpenError(ReliabilityError):
    """A call was refused because the circuit breaker is open.

    The serving engine normally converts this into a typed ``Degraded``
    outcome; it escapes only when a caller drives a
    :class:`~repro.reliability.CircuitBreaker` directly.
    """


class InjectedFaultError(ReliabilityError):
    """A deliberate failure raised by the chaos fault injector.

    Never raised in production paths — only by
    :class:`~repro.reliability.FaultInjector` under an ``"exception"``
    fault, so tests can distinguish injected failures from real ones.
    """


class DeploymentError(ReproError):
    """A model-lifecycle operation (registry, hot-swap, rollout) failed.

    Base class for everything :mod:`repro.deploy` raises, so a deployment
    driver can catch the whole lifecycle surface with one clause.
    """


class RegistryError(DeploymentError):
    """The model registry was misused or its on-disk state is inconsistent.

    Raised by :class:`~repro.deploy.ModelRegistry` for unknown versions,
    duplicate registrations, tampered bundles (manifest hash drift), and
    invalid status transitions.
    """


class RolloutError(DeploymentError):
    """A rollout state machine transition or canary scoring pass failed.

    Raised by :class:`~repro.deploy.CanaryController` on invalid state
    transitions and by :class:`~repro.deploy.CanarySplitScorer` when the
    canary model returns non-finite scores (so the engine's retry/breaker
    machinery treats a sick canary exactly like a failing backend).
    """


class DurabilityError(ReproError):
    """Durable-state journaling or crash recovery failed.

    Base class for everything :mod:`repro.durability` raises, so a
    recovery driver can catch the whole durability surface with one
    clause.  Note that *corruption found on disk* deliberately does not
    raise — corrupt journal segments are quarantined and recovery
    proceeds from the last valid prefix; this type covers misuse
    (journaling to a closed journal, restoring an incompatible state
    dict) and unrecoverable environment failures.
    """


class JournalError(DurabilityError):
    """The write-ahead journal was misused or could not persist a record.

    Raised by :class:`~repro.durability.Journal` for appends after
    ``close()``, unwritable journal directories, and records that cannot
    be serialized to JSON.
    """


class StateRestoreError(DurabilityError):
    """A recovered state dict does not fit the component restoring it.

    Raised by ``load_state_dict`` implementations when the journaled
    state disagrees with the live component's configuration (window
    sizes, fail-safe policy, rollout version) — restoring it silently
    would resurrect a *different* monitor than the one that crashed.
    """


class SupervisorError(DurabilityError):
    """The supervisor runtime was misconfigured or exhausted its restart
    budget without the child ever becoming healthy."""


class StageError(ReproError):
    """A stage of a compiled :class:`~repro.pipeline.ScoringPlan` failed.

    Raised by the plan's per-stage fault guard, wrapping whatever the stage
    actually raised; :attr:`stage` names the failing stage so callers (the
    stream monitor's degraded path, serving outcomes) can attribute the
    fault without parsing messages.
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        #: Name of the stage that failed (``""`` when unknown).
        self.stage = stage


class ExperimentError(ReproError):
    """An experiment harness was misused (unknown id, missing artifact...)."""
