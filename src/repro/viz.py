"""Lightweight visualization: ASCII previews and PGM/PPM image export.

The paper's Figures 2, 4 and 6 are *images* (masks, overlays,
reconstructions).  This module renders the same artifacts without any
plotting dependency: quick ASCII previews for terminals and logs, and
binary PGM/PPM files any image viewer opens, so a user can visually compare
this reproduction's masks against the paper's.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import FLOAT64, as_tensor

#: Dark-to-bright character ramp for ASCII rendering.
_ASCII_RAMP = " .:-=+*#%@"


def _as_image(image: np.ndarray, name: str) -> np.ndarray:
    image = as_tensor(image)
    if image.ndim != 2:
        raise ShapeError(f"{name} expects an (H, W) image, got {image.shape}")
    return np.clip(image, 0.0, 1.0)


def ascii_image(image: np.ndarray, row_step: int = 1, col_step: int = 1) -> str:
    """Render a grayscale [0, 1] image as ASCII art.

    ``row_step``/``col_step`` subsample the image (terminal cells are tall,
    so ``row_step=2`` roughly squares the aspect ratio).
    """
    image = _as_image(image, "ascii_image")
    if row_step < 1 or col_step < 1:
        raise ConfigurationError("row_step and col_step must be >= 1")
    ramp_top = len(_ASCII_RAMP) - 1
    lines = []
    for row in image[::row_step]:
        lines.append(
            "".join(_ASCII_RAMP[int(v * ramp_top + 0.5)] for v in row[::col_step])
        )
    return "\n".join(lines)


def ascii_side_by_side(left: np.ndarray, right: np.ndarray, gap: str = "  |  ", row_step: int = 2) -> str:
    """Two images rendered next to each other (e.g. input vs reconstruction)."""
    a = ascii_image(left, row_step=row_step).splitlines()
    b = ascii_image(right, row_step=row_step).splitlines()
    if len(a) != len(b):
        raise ShapeError("images must have the same height")
    return "\n".join(line_a + gap + line_b for line_a, line_b in zip(a, b))


def save_pgm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write a grayscale [0, 1] image as a binary PGM (P5) file."""
    image = _as_image(image, "save_pgm")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    h, w = image.shape
    data = (image * 255.0 + 0.5).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(data.tobytes())
    return path


def load_pgm(path: Union[str, Path]) -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm` (round-trip aid)."""
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        if magic != b"P5":
            raise ConfigurationError(f"{path} is not a binary PGM (P5) file")
        dims = fh.readline().split()
        w, h = int(dims[0]), int(dims[1])
        maxval = int(fh.readline())
        data = np.frombuffer(fh.read(w * h), dtype=np.uint8)
    return data.reshape(h, w).astype(FLOAT64) / maxval


def save_overlay_ppm(
    image: np.ndarray,
    mask: np.ndarray,
    path: Union[str, Path],
    strength: float = 0.7,
) -> Path:
    """Write the paper's Figure 4 artifact: a saliency mask overlaid in red.

    The grayscale ``image`` becomes the base; the mask adds red intensity
    (``strength`` controls how strongly).  Output is a binary PPM (P6).
    """
    image = _as_image(image, "save_overlay_ppm")
    mask = _as_image(mask, "overlay mask")
    if image.shape != mask.shape:
        raise ShapeError(
            f"image {image.shape} and mask {mask.shape} must have the same shape"
        )
    if not 0.0 <= strength <= 1.0:
        raise ConfigurationError(f"strength must be in [0, 1], got {strength}")
    red = np.clip(image + strength * mask, 0.0, 1.0)
    green = image * (1.0 - strength * mask)
    blue = green
    rgb = (np.stack([red, green, blue], axis=-1) * 255.0 + 0.5).astype(np.uint8)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    h, w = image.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(rgb.tobytes())
    return path


def trajectory_strip(
    lane_offsets: np.ndarray,
    half_width: float,
    width: int = 72,
    row_every: int = 4,
) -> str:
    """Render a lane-offset trace as a text strip chart.

    Each line shows the vehicle ('o', or 'X' when off the road) between
    the lane edges ('|'); the chart spans ±2 half-widths.  Used by the
    closed-loop example and handy for quick trajectory inspection in
    terminals and logs.
    """
    lane_offsets = as_tensor(lane_offsets).ravel()
    if lane_offsets.size == 0:
        raise ShapeError("trajectory_strip requires at least one offset")
    if half_width <= 0:
        raise ConfigurationError(f"half_width must be positive, got {half_width}")
    if width < 8 or row_every < 1:
        raise ConfigurationError("width must be >= 8 and row_every >= 1")

    left_edge = int(0.25 * (width - 1))
    right_edge = int(0.75 * (width - 1))
    lines = []
    for i in range(0, lane_offsets.size, row_every):
        offset = lane_offsets[i]
        position = int(
            np.clip((offset / (2 * half_width) + 0.5) * (width - 1), 0, width - 1)
        )
        lane = [" "] * width
        lane[0] = lane[-1] = "."
        lane[left_edge] = lane[right_edge] = "|"
        lane[position] = "X" if abs(offset) > half_width else "o"
        lines.append(f"{i:4d} " + "".join(lane))
    return "\n".join(lines)
