"""Durable-state adapters: components ↔ the write-ahead journal.

Two bridges live here:

* :class:`StateJournal` — a registry of named components exposing the
  ``state_dict()/load_state_dict()`` protocol (:class:`StreamMonitor
  <repro.novelty.StreamMonitor>`, :class:`CircuitBreaker
  <repro.reliability.CircuitBreaker>`, :class:`CusumDetector
  <repro.novelty.drift.CusumDetector>`, :class:`CanaryController
  <repro.deploy.CanaryController>`, ...).  Each ``write()`` appends the
  component's current state as one journal record; ``sink(name)`` hands
  out the zero-argument hook the components' ``attach_journal`` methods
  expect, so neither side imports the other.
* :class:`RequestLedger` — an admit/resolve delta log for the serving
  engine.  Every admitted request appends an ``admit`` record before its
  outcome exists and a ``resolve`` record once it does; after a crash the
  admits with no matching resolve are exactly the in-flight requests the
  dead process owed answers for, and recovery reports each one as failed
  rather than letting it vanish.  The ledger is itself a durable
  component (``state_dict`` carries the outstanding set and the id
  counter) so snapshot compaction cannot drop an unresolved admit.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.durability.journal import Journal
from repro.exceptions import JournalError, StateRestoreError

#: Journal record kinds this module writes.
STATE_KIND = "state"
LEDGER_KIND = "ledger"


class StateJournal:
    """Journals named components' ``state_dict()`` snapshots.

    Components register under stable names; ``write(name)`` appends that
    component's current state, ``snapshot()`` captures *all* of them into
    a journal snapshot (compacting the segments the states came from).
    Replay is latest-wins per name: the restore path takes the snapshot's
    state map and overlays any later ``state`` records from the tail.
    """

    def __init__(self, journal: Journal) -> None:
        self.journal = journal
        self._components: Dict[str, Any] = {}

    def register(self, name: str, component: Any) -> Any:
        """Track ``component`` under ``name``; returns the component.

        The component must expose ``state_dict()`` (checked eagerly — a
        misregistered object should fail at wiring time, not at the
        first checkpoint mid-incident).
        """
        if not callable(getattr(component, "state_dict", None)):
            raise JournalError(
                f"component {name!r} ({type(component).__name__}) does not "
                "expose state_dict()"
            )
        self._components[str(name)] = component
        return component

    @property
    def names(self) -> List[str]:
        """Registered component names."""
        return sorted(self._components)

    def write(self, name: str) -> int:
        """Append one component's current state; returns the record seq."""
        try:
            component = self._components[name]
        except KeyError:
            raise JournalError(
                f"no component registered as {name!r} "
                f"(registered: {', '.join(self.names) or 'none'})"
            ) from None
        return self.journal.append(
            STATE_KIND, {"name": name, "state": component.state_dict()}
        )

    def sink(self, name: str) -> Callable[[], None]:
        """A zero-argument hook journaling ``name`` — feed it to the
        component's ``attach_journal``."""
        if name not in self._components:
            raise JournalError(f"no component registered as {name!r}")

        def _sink() -> None:
            self.write(name)

        return _sink

    def checkpoint(self) -> None:
        """Append every registered component's current state."""
        for name in self.names:
            self.write(name)

    def snapshot(self) -> None:
        """Write a full-state journal snapshot (and compact segments)."""
        self.journal.snapshot(
            {
                "components": {
                    name: component.state_dict()
                    for name, component in sorted(self._components.items())
                }
            }
        )


class RequestLedger:
    """Admit/resolve delta log over the journal (see module docstring).

    Thread-safe: the serving engine admits from caller threads and
    resolves from its dispatch thread.  Journal appends happen while
    holding the ledger lock so the on-disk admit/resolve order matches
    the in-memory outstanding set.

    Parameters
    ----------
    journal:
        The journal deltas are appended to (``None`` = a disabled ledger
        that still tracks ids, for symmetric wiring in tests).
    next_id:
        First request id to assign — after recovery, the recovered
        ``next_id`` so ids never repeat across a crash.
    """

    def __init__(self, journal: Optional[Journal], next_id: int = 1) -> None:
        if next_id < 1:
            raise JournalError(f"next_id must be >= 1, got {next_id}")
        self.journal = journal
        self._lock = threading.Lock()
        self._next_id = int(next_id)
        self._outstanding: Dict[int, bool] = {}
        self._admitted = 0
        self._resolved = 0

    def admit(self) -> int:
        """Record one admitted request; returns its ledger id."""
        with self._lock:
            rid = self._next_id
            self._next_id += 1
            self._outstanding[rid] = True
            self._admitted += 1
            if self.journal is not None:
                self.journal.append(
                    LEDGER_KIND, {"event": "admit", "rid": rid}
                )
            return rid

    def resolve(self, rid: int, status: str) -> None:
        """Record a request's typed outcome (``Scored``/``Failed``/...).

        Resolving an unknown or already-resolved id is a no-op: the
        engine resolves through first-wins ``PendingResult`` semantics,
        so a raced double-resolve is normal, not corruption.
        """
        with self._lock:
            if self._outstanding.pop(int(rid), None) is None:
                return
            self._resolved += 1
            if self.journal is not None:
                self.journal.append(
                    LEDGER_KIND,
                    {"event": "resolve", "rid": int(rid), "status": str(status)},
                )

    def resolve_crashed(self, rids) -> None:
        """Journal ``resolve`` records for admits orphaned by a crash.

        The recovered unresolved ids belong to clients that are gone;
        recording them as ``failed_on_crash`` (a) reports the loss
        explicitly and (b) stops them from re-counting as in-flight on
        every later recovery.  The ids are not in this ledger's
        outstanding set (they died with the old process), so this writes
        the journal directly instead of going through :meth:`resolve`.
        """
        with self._lock:
            for rid in rids:
                if self.journal is not None:
                    self.journal.append(
                        LEDGER_KIND,
                        {
                            "event": "resolve",
                            "rid": int(rid),
                            "status": "failed_on_crash",
                        },
                    )

    def stats(self) -> Dict[str, Any]:
        """This process's admit/resolve counters and live in-flight count."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "resolved": self._resolved,
                "outstanding": len(self._outstanding),
                "next_id": self._next_id,
            }

    @property
    def outstanding(self) -> List[int]:
        """Ids admitted but not yet resolved (in-flight right now)."""
        with self._lock:
            return sorted(self._outstanding)

    @property
    def next_id(self) -> int:
        with self._lock:
            return self._next_id

    # -- durable-component protocol ---------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of the id counter and the outstanding set."""
        with self._lock:
            return {
                "next_id": self._next_id,
                "outstanding": sorted(self._outstanding),
            }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        next_id = int(state.get("next_id", 1))
        if next_id < 1:
            raise StateRestoreError(f"ledger next_id must be >= 1, got {next_id}")
        with self._lock:
            self._next_id = next_id
            self._outstanding = {int(rid): True for rid in state.get("outstanding", [])}


def fold_ledger(
    snapshot_state: Optional[Dict[str, Any]], records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Reconstruct the ledger from a snapshot plus replayed deltas.

    Returns ``{"next_id", "outstanding", "admitted", "resolved"}`` where
    ``outstanding`` are the admits never resolved — the requests that
    were in flight when the process died.
    """
    next_id = 1
    outstanding: Dict[int, bool] = {}
    admitted = 0
    resolved = 0
    if snapshot_state:
        next_id = int(snapshot_state.get("next_id", 1))
        outstanding = {
            int(rid): True for rid in snapshot_state.get("outstanding", [])
        }
    for record in records:
        if record.get("kind") != LEDGER_KIND:
            continue
        data = record["data"]
        rid = int(data["rid"])
        if data.get("event") == "admit":
            outstanding[rid] = True
            admitted += 1
            next_id = max(next_id, rid + 1)
        elif data.get("event") == "resolve":
            outstanding.pop(rid, None)
            resolved += 1
    return {
        "next_id": next_id,
        "outstanding": sorted(outstanding),
        "admitted": admitted,
        "resolved": resolved,
    }
