"""Durable state journaling, crash recovery, and process supervision.

The runtime safety state this library accumulates — a stream monitor's
calibrated alarm window, a circuit breaker's position, the rollout state
machine, the ledger of admitted serving requests — survives process
death through three layers:

* :class:`Journal` / :func:`recover_journal` — the append-only,
  CRC-checksummed write-ahead log with snapshots and compaction;
* :class:`StateJournal` / :class:`RequestLedger` /
  :class:`RecoveryManager` — the adapters between components'
  ``state_dict()/load_state_dict()`` and the journal, plus the startup
  pass that replays and restores;
* :class:`Supervisor` — the parent watchdog (`repro supervise`) that
  respawns the serving service with backoff and triggers recovery on
  every boot.

See the "Crash recovery & supervision" section of ``docs/reliability.md``.
"""

from repro.durability.journal import Journal, JournalRecovery, recover_journal
from repro.durability.recovery import (
    RecoveryManager,
    RecoveryReport,
    recover_and_open,
)
from repro.durability.state import RequestLedger, StateJournal, fold_ledger
from repro.durability.supervisor import (
    Supervisor,
    SupervisorConfig,
    http_healthz_probe,
    tcp_ping_probe,
)

__all__ = [
    "Journal",
    "JournalRecovery",
    "recover_journal",
    "RecoveryManager",
    "RecoveryReport",
    "recover_and_open",
    "RequestLedger",
    "StateJournal",
    "fold_ledger",
    "Supervisor",
    "SupervisorConfig",
    "tcp_ping_probe",
    "http_healthz_probe",
]
