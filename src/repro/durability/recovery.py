"""Crash recovery: journal directory → restored components.

:class:`RecoveryManager` is the startup half of the durability story.
Point it at a journal directory and it:

1. finds the latest *valid* snapshot (CRC-verified; corrupt ones are
   quarantined and an older fallback used),
2. replays the journal tail after it — truncating a torn final record,
   quarantining genuinely corrupt segments as ``*.corrupt`` — folding
   ``state`` records latest-wins per component and ``ledger`` deltas
   into the outstanding-request set,
3. restores any live components handed to :meth:`RecoveryReport.restore`
   via their ``load_state_dict``, and
4. reports the requests that were in flight at the crash so the caller
   can account for every one of them as ``Failed`` — admitted work is
   never silently dropped, even by ``kill -9``.

Recovery never raises on corrupt data (that is the journal layer's
contract); it raises only :class:`~repro.exceptions.StateRestoreError`
style errors when a *valid* recovered state does not fit the component
being restored — a configuration bug, not a disk fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.durability.journal import Journal, JournalRecovery, recover_journal
from repro.durability.state import LEDGER_KIND, STATE_KIND, fold_ledger
from repro.telemetry import get_telemetry
from repro.utils.log import get_logger

_log = get_logger(__name__)


@dataclass
class RecoveryReport:
    """Everything a crashed process left behind, reconstructed.

    Attributes
    ----------
    states:
        Latest-wins state dict per registered component name.
    ledger:
        Folded request-ledger view: ``next_id``, ``outstanding`` (ids
        admitted but never resolved — in flight at the crash),
        ``admitted``/``resolved`` delta counts from the replayed tail.
    journal:
        The low-level :class:`~repro.durability.journal.JournalRecovery`
        (snapshot seq, replayed records, truncated bytes, quarantines).
    """

    states: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    ledger: Dict[str, Any] = field(default_factory=dict)
    journal: JournalRecovery = field(default_factory=JournalRecovery)

    @property
    def unresolved_requests(self) -> List[int]:
        """Ledger ids admitted before the crash but never resolved."""
        return list(self.ledger.get("outstanding", []))

    @property
    def clean(self) -> bool:
        """Whether recovery found no damage and no abandoned requests."""
        return (
            not self.unresolved_requests
            and self.journal.truncated_bytes == 0
            and not self.journal.quarantined
        )

    def restore(self, components: Dict[str, Any]) -> List[str]:
        """``load_state_dict`` each component that has a recovered state.

        Returns the names actually restored; names with no recovered
        state are skipped (first boot, or a component added since the
        crash).  A state that does not fit its component propagates the
        component's :class:`~repro.exceptions.StateRestoreError`.
        """
        restored = []
        for name, component in components.items():
            state = self.states.get(name)
            if state is None:
                continue
            component.load_state_dict(state)
            restored.append(name)
        return restored

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest (printed by ``repro serve`` on recovery)."""
        return {
            "components": sorted(self.states),
            "unresolved_requests": len(self.unresolved_requests),
            "replayed_records": self.journal.replayed_records,
            "last_seq": self.journal.last_seq,
            "snapshot_seq": self.journal.snapshot_seq,
            "truncated_bytes": self.journal.truncated_bytes,
            "quarantined": [str(name) for name in self.journal.quarantined],
        }


class RecoveryManager:
    """Drives one recovery pass over a journal directory."""

    def __init__(self, journal_dir: Union[str, Path]) -> None:
        self.journal_dir = Path(journal_dir)
        self._last_recovery: Optional[JournalRecovery] = None

    def recover(self) -> RecoveryReport:
        """Scan, repair, and fold the journal into a :class:`RecoveryReport`.

        Emits ``durability.*`` telemetry (recoveries, replayed records,
        truncated bytes, quarantined segments, requests failed on crash)
        and a ``durability.recovered`` event under its own trace span.
        """
        telem = get_telemetry()
        with telem.span("durability.recover", trace="new"):
            recovered = recover_journal(self.journal_dir)
            self._last_recovery = recovered
            report = RecoveryReport(journal=recovered)

            snapshot_components: Dict[str, Any] = {}
            if recovered.snapshot_state:
                snapshot_components = dict(
                    recovered.snapshot_state.get("components", {})
                )
            ledger_snapshot = snapshot_components.pop("ledger", None)
            report.states = snapshot_components
            for record in recovered.records:
                if record["kind"] != STATE_KIND:
                    continue
                data = record["data"]
                report.states[str(data["name"])] = data["state"]
            # The ledger may also appear as a late full-state record
            # (e.g. a checkpoint); latest-wins like any component, then
            # deltas replay on top.
            ledger_snapshot = report.states.pop("ledger", ledger_snapshot)
            report.ledger = fold_ledger(
                ledger_snapshot,
                [r for r in recovered.records if r["kind"] == LEDGER_KIND],
            )

        if telem.enabled:
            telem.counter("durability.recoveries").inc()
            telem.counter("durability.replayed_records").inc(
                recovered.replayed_records
            )
            telem.counter("durability.truncated_bytes").inc(
                recovered.truncated_bytes
            )
            telem.counter("durability.quarantined_segments").inc(
                len(recovered.quarantined)
            )
            telem.counter("durability.requests_failed_on_crash").inc(
                len(report.unresolved_requests)
            )
            telem.event("durability.recovered", **report.summary())
        if not report.clean:
            _log.warning(
                "recovered journal %s with damage: %s",
                self.journal_dir,
                report.summary(),
            )
        return report

    def open_journal(self, **kwargs: Any) -> Journal:
        """A :class:`Journal` continuing after the last recovered seq.

        Call after :meth:`recover`; without a prior recovery this scans
        the directory itself (equivalent to ``Journal.open``, discarding
        the report).
        """
        if self._last_recovery is None:
            journal, _ = Journal.open(self.journal_dir, **kwargs)
            return journal
        return Journal(
            self.journal_dir,
            next_seq=self._last_recovery.last_seq + 1,
            **kwargs,
        )


def recover_and_open(
    journal_dir: Union[str, Path], **kwargs: Any
) -> Tuple[RecoveryReport, Journal]:
    """One-shot: recover a directory and open a journal continuing it."""
    manager = RecoveryManager(journal_dir)
    report = manager.recover()
    return report, manager.open_journal(**kwargs)
