"""Write-ahead journal: append-only, CRC-checksummed, crash-truncatable.

The operational state around the serving stack — a stream monitor's
calibrated window, a circuit breaker's position, the rollout state
machine, the ledger of admitted requests — lives in memory.  A process
that dies (``kill -9``, OOM, power) loses it all and restarts cold and
un-calibrated, which for a safety monitor is itself a safety hazard.
This module is the durable substrate that fixes that:

* :class:`Journal` — an append-only log of JSON records split across
  *segments* (``segment-<startseq>.wal``).  Each record is one line:
  an 8-hex-digit CRC32, an 8-hex-digit payload length, and the JSON
  payload.  Appends are flushed to the OS per record, so everything
  written before a ``kill -9`` survives the process (an OS crash is the
  remit of the fsync performed at rotation and snapshot).
* snapshots — a full state document written via
  :func:`~repro.utils.fileio.atomic_write` as ``snapshot-<seq>.json``
  with its own CRC; segments wholly covered by a snapshot are deleted
  (*compaction*), so replay cost stays bounded no matter how long the
  journal runs.
* :func:`recover_journal` — scans a journal directory and returns the
  latest valid snapshot plus every record after it.  A torn tail (a
  record cut mid-write by a crash) is truncated in place; a segment
  corrupted *before* its tail (bit rot, a flipped byte) is quarantined
  as ``<name>.corrupt`` — along with any later segments, whose sequence
  continuity it broke — and recovery proceeds from the last valid
  prefix.  Recovery never raises on bad data; it only counts it.

The record wire format is deliberately line-oriented: JSON payloads
cannot contain raw newlines, so a human (or ``grep``) can read a segment
while the CRC + length header still catches every torn or flipped byte.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import JournalError
from repro.utils.fileio import atomic_write, fsync_dir
from repro.utils.log import get_logger

_log = get_logger(__name__)

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".wal"
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"
CORRUPT_SUFFIX = ".corrupt"

#: ``crc32`` and ``length`` as 8 hex digits each, space-separated, then
#: the payload: ``b"xxxxxxxx yyyyyyyy {...}\n"``.
_HEADER_LEN = 18

#: Snapshots kept after compaction — the newest plus one fallback, so a
#: crash *during* a snapshot write (or a corrupt latest) still recovers.
_SNAPSHOTS_KEPT = 2


def _dumps(obj: Any) -> str:
    """Canonical JSON: the byte form both CRCs are computed over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode_record(seq: int, kind: str, data: Any) -> bytes:
    try:
        payload = _dumps({"seq": seq, "kind": kind, "data": data}).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"journal record {kind!r} (seq {seq}) is not JSON-serializable: {exc}"
        ) from exc
    header = f"{zlib.crc32(payload):08x} {len(payload):08x} ".encode("ascii")
    return header + payload + b"\n"


def _decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one newline-terminated record line; ``None`` when invalid."""
    if len(line) < _HEADER_LEN + 1 or not line.endswith(b"\n"):
        return None
    if line[8:9] != b" " or line[17:18] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
        length = int(line[9:17], 16)
    except ValueError:
        return None
    payload = line[_HEADER_LEN:-1]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(record, dict)
        or not isinstance(record.get("seq"), int)
        or not isinstance(record.get("kind"), str)
        or "data" not in record
    ):
        return None
    return record


def _segment_path(directory: Path, start_seq: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{start_seq:012d}{SEGMENT_SUFFIX}"


def _snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"{SNAPSHOT_PREFIX}{seq:012d}{SNAPSHOT_SUFFIX}"


def _sorted_by_seq(paths: List[Path], prefix: str, suffix: str) -> List[Tuple[int, Path]]:
    """``(start_seq, path)`` pairs for well-formed names, seq-ascending."""
    out = []
    for path in paths:
        stem = path.name[len(prefix):-len(suffix)]
        try:
            out.append((int(stem), path))
        except ValueError:
            continue
    return sorted(out)


def _quarantine(path: Path) -> str:
    """Rename a file out of the journal's namespace; returns the new name."""
    target = path.with_name(path.name + CORRUPT_SUFFIX)
    os.replace(path, target)
    return target.name


@dataclass
class JournalRecovery:
    """What :func:`recover_journal` found on disk.

    Attributes
    ----------
    snapshot_state:
        The latest valid snapshot's state document, or ``None``.
    snapshot_seq:
        Last record sequence number the snapshot covers (0 = none).
    records:
        Every valid record *after* the snapshot, in sequence order, as
        ``{"seq", "kind", "data"}`` dicts — the journal tail to replay.
    last_seq:
        Highest sequence number recovered (snapshot or tail); the next
        append must use ``last_seq + 1``.
    truncated_bytes:
        Bytes of torn tail trimmed from the final segment.
    quarantined:
        Files renamed to ``*.corrupt`` (segments and snapshots).
    """

    snapshot_state: Optional[Dict[str, Any]] = None
    snapshot_seq: int = 0
    records: List[Dict[str, Any]] = field(default_factory=list)
    last_seq: int = 0
    truncated_bytes: int = 0
    quarantined: List[str] = field(default_factory=list)

    @property
    def replayed_records(self) -> int:
        """Number of tail records recovered after the snapshot."""
        return len(self.records)

    def stats(self) -> Dict[str, Any]:
        """JSON-safe summary (feeds ``durability.*`` telemetry)."""
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed_records": self.replayed_records,
            "last_seq": self.last_seq,
            "truncated_bytes": self.truncated_bytes,
            "quarantined": list(self.quarantined),
        }


def _scan_segment(path: Path) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse one segment; ``(records, valid_end_offset, clean)``.

    ``clean`` is ``False`` when invalid bytes follow the valid prefix —
    the caller decides between torn-tail truncation and quarantine.
    """
    data = path.read_bytes()
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            return records, offset, False  # no terminator: torn mid-write
        record = _decode_line(data[offset:newline + 1])
        if record is None:
            return records, offset, False
        records.append(record)
        offset = newline + 1
    return records, offset, True


def _tail_is_torn(path: Path, valid_end: int) -> bool:
    """Whether the invalid region after ``valid_end`` is a torn tail.

    A torn tail (one record cut mid-write by a crash) contains no
    further valid record; if any later line still decodes, the damage is
    mid-file corruption and the segment must be quarantined instead.
    """
    data = path.read_bytes()[valid_end:]
    offset = 0
    while True:
        newline = data.find(b"\n", offset)
        if newline == -1:
            return True
        offset = newline + 1
        next_newline = data.find(b"\n", offset)
        end = len(data) if next_newline == -1 else next_newline + 1
        if _decode_line(data[offset:end]) is not None:
            return False


def _recover_snapshot(
    directory: Path, recovery: JournalRecovery
) -> None:
    """Fill ``recovery`` with the newest snapshot that validates."""
    snapshots = _sorted_by_seq(
        sorted(directory.glob(f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}")),
        SNAPSHOT_PREFIX,
        SNAPSHOT_SUFFIX,
    )
    for seq, path in reversed(snapshots):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            state = document["state"]
            valid = (
                isinstance(document.get("seq"), int)
                and zlib.crc32(_dumps(state).encode("utf-8")) == document["crc32"]
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            valid = False
        if valid:
            recovery.snapshot_state = state
            recovery.snapshot_seq = int(document["seq"])
            return
        recovery.quarantined.append(_quarantine(path))
        _log.warning("quarantined corrupt snapshot %s", path.name)


def recover_journal(directory: Union[str, Path]) -> JournalRecovery:
    """Scan a journal directory; never raises on corrupt data.

    Returns the latest valid snapshot plus the ordered tail of records
    after it.  Side effects on disk are repair-only: torn tails are
    truncated in place, corrupt segments/snapshots (and segments after a
    corrupt one, whose continuity it broke) are renamed ``*.corrupt``.
    """
    directory = Path(directory)
    recovery = JournalRecovery()
    if not directory.is_dir():
        return recovery
    _recover_snapshot(directory, recovery)
    recovery.last_seq = recovery.snapshot_seq

    segments = _sorted_by_seq(
        sorted(directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")),
        SEGMENT_PREFIX,
        SEGMENT_SUFFIX,
    )
    broken = False
    for index, (start_seq, path) in enumerate(segments):
        if broken:
            # Records after a quarantined segment follow a hole in the
            # sequence; replaying them would interleave pre- and
            # post-corruption state.
            recovery.quarantined.append(_quarantine(path))
            continue
        records, valid_end, clean = _scan_segment(path)
        for record in records:
            if record["seq"] > recovery.snapshot_seq:
                recovery.records.append(record)
                recovery.last_seq = max(recovery.last_seq, record["seq"])
        if clean:
            continue
        is_last = index == len(segments) - 1
        if is_last and _tail_is_torn(path, valid_end):
            torn = path.stat().st_size - valid_end
            os.truncate(path, valid_end)
            recovery.truncated_bytes += torn
            _log.warning(
                "truncated %d torn bytes from journal segment %s", torn, path.name
            )
        else:
            recovery.quarantined.append(_quarantine(path))
            _log.warning("quarantined corrupt journal segment %s", path.name)
            broken = True
    return recovery


class Journal:
    """Append-only write-ahead journal over a directory of segments.

    Thread-safe: appends from the serving engine's dispatch threads, the
    submit path, and a monitor interleave under one lock.  Each append
    is flushed to the OS (``kill -9`` survivable); ``fsync`` happens at
    segment rotation and snapshots, not per record — that is the
    durability/throughput trade the < 5% hot-path overhead gate holds.

    Parameters
    ----------
    directory:
        Journal directory (created if absent).
    max_segment_bytes:
        Rotation threshold: a new segment starts once the active one
        reaches this size.
    next_seq:
        First sequence number to assign — ``recovered.last_seq + 1``
        when reopening after a crash (see :meth:`open`).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_segment_bytes: int = 1 << 20,
        next_seq: int = 1,
    ) -> None:
        if max_segment_bytes < 1:
            raise JournalError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        if next_seq < 1:
            raise JournalError(f"next_seq must be >= 1, got {next_seq}")
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"journal directory {self.directory} is not writable: {exc}"
            ) from exc
        self.max_segment_bytes = int(max_segment_bytes)
        self._lock = threading.Lock()
        self._next_seq = int(next_seq)
        self._handle = None
        self._segment_bytes = 0
        self._segment_path: Optional[Path] = None
        self._appended_since_snapshot = 0
        self._closed = False

    @classmethod
    def open(
        cls, directory: Union[str, Path], **kwargs: Any
    ) -> Tuple["Journal", JournalRecovery]:
        """Recover a directory and return a journal continuing after it."""
        recovered = recover_journal(directory)
        journal = cls(directory, next_seq=recovered.last_seq + 1, **kwargs)
        return journal, recovered

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        with self._lock:
            return self._next_seq - 1

    @property
    def appended_since_snapshot(self) -> int:
        """Records appended since the last :meth:`snapshot` (replay cost)."""
        with self._lock:
            return self._appended_since_snapshot

    def _open_segment_locked(self) -> None:
        path = _segment_path(self.directory, self._next_seq)
        try:
            # Append mode: segments are the one artifact that genuinely
            # accumulates; every whole-file write goes through
            # atomic_write instead (snapshots, rotation metadata).
            self._handle = open(path, "ab")
        except OSError as exc:
            raise JournalError(f"cannot open journal segment {path}: {exc}") from exc
        self._segment_path = path
        self._segment_bytes = path.stat().st_size

    def _seal_segment_locked(self) -> None:
        """Flush, fsync, and detach the active segment (rotation/close)."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        fsync_dir(self.directory)
        self._segment_path = None
        self._segment_bytes = 0

    def append(self, kind: str, data: Any) -> int:
        """Durably append one record; returns its sequence number."""
        with self._lock:
            if self._closed:
                raise JournalError("append() on a closed journal")
            seq = self._next_seq
            line = _encode_record(seq, kind, data)
            if self._handle is None:
                self._open_segment_locked()
            try:
                self._handle.write(line)
                self._handle.flush()
            except OSError as exc:
                raise JournalError(
                    f"journal append failed on {self._segment_path}: {exc}"
                ) from exc
            self._next_seq = seq + 1
            self._segment_bytes += len(line)
            self._appended_since_snapshot += 1
            if self._segment_bytes >= self.max_segment_bytes:
                self._seal_segment_locked()
            return seq

    def sync(self) -> None:
        """fsync the active segment (stronger than the per-append flush)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def snapshot(self, state: Dict[str, Any]) -> Path:
        """Write a full-state snapshot and compact covered segments.

        The snapshot lands via :func:`atomic_write` (crash-safe), the
        active segment is sealed, and every segment whose records the
        snapshot covers is deleted — along with snapshots older than the
        retained fallback — so recovery replays a bounded tail.
        """
        with self._lock:
            if self._closed:
                raise JournalError("snapshot() on a closed journal")
            seq = self._next_seq - 1
            try:
                state_json = _dumps(state)
            except (TypeError, ValueError) as exc:
                raise JournalError(
                    f"snapshot state is not JSON-serializable: {exc}"
                ) from exc
            document = _dumps(
                {
                    "seq": seq,
                    "crc32": zlib.crc32(state_json.encode("utf-8")),
                    "state": json.loads(state_json),
                }
            )
            path = _snapshot_path(self.directory, seq)
            with atomic_write(path, mode="w") as handle:
                handle.write(document)
            self._seal_segment_locked()
            self._compact_locked(seq)
            self._appended_since_snapshot = 0
            return path

    def _compact_locked(self, snapshot_seq: int) -> None:
        segments = _sorted_by_seq(
            sorted(self.directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")),
            SEGMENT_PREFIX,
            SEGMENT_SUFFIX,
        )
        # A segment is fully covered when the next segment starts at or
        # below snapshot_seq + 1; the last segment has no successor, so
        # it is covered only if the whole journal is.
        starts = [start for start, _ in segments] + [self._next_seq]
        for (start, path), next_start in zip(segments, starts[1:]):
            if next_start <= snapshot_seq + 1:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        snapshots = _sorted_by_seq(
            sorted(self.directory.glob(f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}")),
            SNAPSHOT_PREFIX,
            SNAPSHOT_SUFFIX,
        )
        for _, path in snapshots[:-_SNAPSHOTS_KEPT]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        fsync_dir(self.directory)

    def close(self) -> None:
        """Seal the active segment; further appends raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._seal_segment_locked()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
