"""Supervisor runtime: keep the serving service alive across crashes.

A parent watchdog (`repro supervise`) that runs the TCP serving service
as a child process and turns crashes — including ``kill -9`` — into
restarts with state restore instead of outages:

* **liveness** — the child is polled for exit, and (optionally) probed
  for *responsiveness* on a heartbeat interval: a child that is alive
  but wedged (deadlocked dispatch thread, hung accept loop) is killed
  after ``probe_failures_to_kill`` consecutive failed probes.  Two probe
  flavors ship here: :func:`tcp_ping_probe` (the serving protocol's
  ``ping`` op) and :func:`http_healthz_probe` (the metrics server's
  ``/healthz``).
* **restart policy** — exponential backoff between respawns
  (``base_delay_s`` × ``multiplier``ⁿ, capped at ``max_delay_s``), reset
  once the child stays healthy for ``healthy_after_s``; at most
  ``max_restarts`` consecutive unhealthy restarts before the supervisor
  gives up (a child that can never boot should page a human, not spin).
* **state restore** — the supervisor itself restores nothing: the child
  runs ``repro serve --journal-dir ...`` and its
  :class:`~repro.durability.RecoveryManager` replays the journal on
  every boot.  The supervisor's job is only to make sure a boot happens.

Everything is injectable (``spawn``, ``probe``, ``sleep``, ``clock``) so
the policy is unit-testable without real processes; the default wiring
uses :mod:`subprocess` and real time.
"""

from __future__ import annotations

import subprocess
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError, SupervisorError
from repro.telemetry import get_telemetry
from repro.utils.log import get_logger

_log = get_logger(__name__)


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart/liveness policy for one :class:`Supervisor`.

    Attributes
    ----------
    heartbeat_interval_s:
        Seconds between liveness checks (child poll + probe).
    probe_failures_to_kill:
        Consecutive failed probes after which a live-but-wedged child is
        killed and restarted.
    probe_grace_s:
        Boot grace: probes are not counted against a child until it has
        been up this long.  A freshly spawned server legitimately fails
        probes while it loads artifacts and replays its journal —
        killing it for that guarantees a crash loop.  Process *exit* is
        still detected during the grace window.
    max_restarts:
        Consecutive unhealthy restarts before the supervisor gives up.
        The counter resets each time a child stays up ``healthy_after_s``.
    base_delay_s / multiplier / max_delay_s:
        Exponential-backoff schedule between respawns.
    healthy_after_s:
        Uptime at which a child is considered healthy (backoff and the
        restart budget reset).
    restart_on_clean_exit:
        Whether exit code 0 is restarted (default: a clean exit means
        the service was asked to stop — honor it).
    term_grace_s:
        Seconds a wedged child gets to honor SIGTERM before SIGKILL.
    """

    heartbeat_interval_s: float = 1.0
    probe_failures_to_kill: int = 3
    probe_grace_s: float = 30.0
    max_restarts: int = 5
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    healthy_after_s: float = 10.0
    restart_on_clean_exit: bool = False
    term_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if self.probe_failures_to_kill < 1:
            raise ConfigurationError(
                f"probe_failures_to_kill must be >= 1, got {self.probe_failures_to_kill}"
            )
        if self.probe_grace_s < 0:
            raise ConfigurationError(
                f"probe_grace_s must be >= 0, got {self.probe_grace_s}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.base_delay_s < 0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                f"max_delay_s must be >= base_delay_s, got {self.max_delay_s}"
            )
        if self.healthy_after_s <= 0:
            raise ConfigurationError(
                f"healthy_after_s must be positive, got {self.healthy_after_s}"
            )
        if self.term_grace_s < 0:
            raise ConfigurationError(
                f"term_grace_s must be >= 0, got {self.term_grace_s}"
            )


def tcp_ping_probe(
    host: str, port: int, timeout_s: float = 2.0
) -> Callable[[], bool]:
    """A probe sending the serving protocol's ``ping`` op.

    Opens a fresh connection per probe — the child restarts across
    probes, so a held socket would go stale exactly when it matters.
    """
    from repro.serving.service import ServingClient

    def probe() -> bool:
        try:
            with ServingClient(host, port, timeout_s=timeout_s) as client:
                return client.ping()
        except Exception:
            return False

    return probe


def http_healthz_probe(
    host: str, port: int, timeout_s: float = 2.0
) -> Callable[[], bool]:
    """A probe hitting the metrics server's ``/healthz`` endpoint."""
    import urllib.error
    import urllib.request

    url = f"http://{host}:{port}/healthz"

    def probe() -> bool:
        try:
            with urllib.request.urlopen(url, timeout=timeout_s) as response:
                return response.status == 200
        except Exception:
            return False

    return probe


class Supervisor:
    """Runs a command as a supervised child (see module docstring).

    Parameters
    ----------
    command:
        argv of the child process (e.g. ``[sys.executable, "-m", "repro",
        "serve", "--journal-dir", ...]``).
    probe:
        Optional zero-argument liveness callable returning ``True`` when
        the child is responsive.  ``None`` supervises on process exit
        alone.
    config:
        The restart/liveness policy.
    sleep / clock / spawn:
        Injection points for tests: ``spawn(argv)`` must return an
        object with ``poll()``, ``terminate()``, ``kill()``, ``wait()``,
        and ``pid``.
    """

    def __init__(
        self,
        command: Sequence[str],
        probe: Optional[Callable[[], bool]] = None,
        config: Optional[SupervisorConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        spawn: Optional[Callable[[Sequence[str]], Any]] = None,
    ) -> None:
        if not command:
            raise SupervisorError("supervisor needs a non-empty child command")
        self.command = [str(part) for part in command]
        self.probe = probe
        self.config = config or SupervisorConfig()
        self._sleep = sleep
        self._clock = clock
        self._spawn = spawn or (lambda argv: subprocess.Popen(list(argv)))
        self._child: Optional[Any] = None
        self._stop = threading.Event()
        self._restarts = 0
        self._unhealthy_restarts = 0
        self._probe_failures = 0
        self._exit_codes: List[Optional[int]] = []
        self._gave_up = False

    # -- introspection ----------------------------------------------------
    @property
    def child_pid(self) -> Optional[int]:
        """PID of the current child, or ``None``."""
        child = self._child
        return None if child is None else child.pid

    def stats(self) -> Dict[str, Any]:
        """Restart counters and the child-exit history."""
        return {
            "restarts": self._restarts,
            "unhealthy_restarts": self._unhealthy_restarts,
            "exit_codes": list(self._exit_codes),
            "gave_up": self._gave_up,
            "child_pid": self.child_pid,
        }

    def stop(self) -> None:
        """Ask :meth:`run` to wind down (terminates the child)."""
        self._stop.set()

    def shutdown(self) -> None:
        """Stop supervising and terminate the child now (idempotent).

        For callers interrupted *outside* :meth:`run` (a KeyboardInterrupt
        thrown from its sleep) — makes sure no orphan child survives.
        """
        self._stop.set()
        self._kill_child()

    # -- lifecycle ---------------------------------------------------------
    def _spawn_child(self) -> None:
        self._child = self._spawn(self.command)
        self._probe_failures = 0
        telem = get_telemetry()
        if telem.enabled:
            telem.event(
                "durability.child_spawned",
                pid=self._child.pid,
                restarts=self._restarts,
            )
        _log.info(
            "supervisor spawned child pid=%s (restart %d)",
            self._child.pid,
            self._restarts,
        )

    def _kill_child(self) -> Optional[int]:
        """SIGTERM, grace period, SIGKILL; returns the exit code."""
        child = self._child
        if child is None:
            return None
        if child.poll() is None:
            child.terminate()
            deadline = self._clock() + self.config.term_grace_s
            while child.poll() is None and self._clock() < deadline:
                self._sleep(min(0.05, self.config.heartbeat_interval_s))
            if child.poll() is None:
                child.kill()
                child.wait()
        return child.poll()

    def _backoff_delay(self) -> float:
        delay = self.config.base_delay_s * (
            self.config.multiplier ** max(0, self._unhealthy_restarts - 1)
        )
        return min(delay, self.config.max_delay_s)

    def run(self) -> Dict[str, Any]:
        """Supervise until :meth:`stop`, a clean child exit, or give-up.

        Returns :meth:`stats`.  Raises nothing for child failures — a
        supervisor that dies with its child defeats the point; exhausting
        the restart budget sets ``gave_up`` in the stats instead.
        """
        telem = get_telemetry()
        self._spawn_child()
        spawned_at = self._clock()
        while not self._stop.is_set():
            self._sleep(self.config.heartbeat_interval_s)
            child = self._child
            uptime = self._clock() - spawned_at
            if uptime >= self.config.healthy_after_s and self._unhealthy_restarts:
                # The child proved itself; future crashes start a fresh
                # backoff schedule instead of inheriting this one's.
                self._unhealthy_restarts = 0
            exit_code = child.poll()
            if (
                exit_code is None
                and self.probe is not None
                and uptime >= self.config.probe_grace_s
            ):
                if self.probe():
                    self._probe_failures = 0
                else:
                    self._probe_failures += 1
                    if self._probe_failures >= self.config.probe_failures_to_kill:
                        _log.warning(
                            "child pid=%s unresponsive after %d probes; killing",
                            child.pid,
                            self._probe_failures,
                        )
                        if telem.enabled:
                            telem.event(
                                "durability.child_unresponsive",
                                pid=child.pid,
                                probe_failures=self._probe_failures,
                            )
                        exit_code = self._kill_child()
            if exit_code is None:
                continue
            self._exit_codes.append(exit_code)
            if telem.enabled:
                telem.event(
                    "durability.child_exited", pid=child.pid, exit_code=exit_code
                )
            if exit_code == 0 and not self.config.restart_on_clean_exit:
                _log.info("child exited cleanly; supervisor done")
                break
            healthy_run = self._clock() - spawned_at >= self.config.healthy_after_s
            self._unhealthy_restarts = 0 if healthy_run else self._unhealthy_restarts + 1
            if self._unhealthy_restarts > self.config.max_restarts:
                self._gave_up = True
                _log.error(
                    "giving up after %d consecutive unhealthy restarts "
                    "(child never became healthy)",
                    self.config.max_restarts,
                )
                if telem.enabled:
                    telem.event(
                        "durability.supervisor_gave_up",
                        restarts=self._restarts,
                    )
                break
            delay = self._backoff_delay()
            _log.warning(
                "child exited with code %s; respawning in %.2fs", exit_code, delay
            )
            if delay > 0:
                self._sleep(delay)
            if self._stop.is_set():
                break
            self._restarts += 1
            if telem.enabled:
                telem.counter("durability.restarts").inc()
            self._spawn_child()
            spawned_at = self._clock()
        if self._stop.is_set() and self._child is not None and self._child.poll() is None:
            self._exit_codes.append(self._kill_child())
        return self.stats()
