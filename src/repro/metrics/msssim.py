"""Multi-scale SSIM (arithmetic-mean variant) with analytic gradient.

The paper trains its autoencoder with single-scale SSIM over 11x11 windows.
A standard refinement is multi-scale SSIM (Wang et al., 2003), which also
compares coarser versions of the two images so that large-structure errors
are penalized even when fine-scale windows look locally plausible.

This module implements the **arithmetic-mean variant**: the score is the
plain average of single-scale SSIM values computed on successively 2x
average-pooled images,

.. math:: \\mathrm{MS}(x, y) = \\frac{1}{S}\\sum_{s=0}^{S-1}
          \\mathrm{SSIM}(D^s x, D^s y)

(rather than Wang's weighted geometric product of luminance/contrast
terms).  The arithmetic form keeps the gradient exactly computable by
back-projecting each scale's SSIM gradient through the average-pooling
adjoint, which is what makes it usable as a *training loss* on the numpy
substrate; the geometric variant's extra machinery changes none of the
comparisons this repo makes.  Used by the loss-function ablation
(``repro.experiments.ablations``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.metrics.ssim import DEFAULT_WINDOW_SIZE, ssim, ssim_and_grad
from repro.nn.backend.policy import as_tensor, result_dtype


def downsample2x(images: np.ndarray) -> np.ndarray:
    """2x2 average pooling over the trailing two axes (odd edges cropped).

    Works on ``(H, W)`` images or ``(N, H, W)`` batches.
    """
    images = as_tensor(images, result_dtype(np.asarray(images)))
    if images.ndim not in (2, 3):
        raise ShapeError(f"downsample2x expects (H, W) or (N, H, W), got {images.shape}")
    h, w = images.shape[-2] // 2 * 2, images.shape[-1] // 2 * 2
    if h < 2 or w < 2:
        raise ShapeError(f"image too small to downsample: {images.shape}")
    trimmed = images[..., :h, :w]
    return 0.25 * (
        trimmed[..., 0::2, 0::2]
        + trimmed[..., 0::2, 1::2]
        + trimmed[..., 1::2, 0::2]
        + trimmed[..., 1::2, 1::2]
    )


def upsample2x_adjoint(grad: np.ndarray, target_shape: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of :func:`downsample2x`: spread each gradient over its 2x2
    block (weight 1/4 each), zero-padding any cropped odd edge."""
    grad = as_tensor(grad, result_dtype(np.asarray(grad)))
    out = np.zeros(target_shape, dtype=grad.dtype)
    h, w = grad.shape[-2] * 2, grad.shape[-1] * 2
    quarter = 0.25 * grad
    out[..., 0:h:2, 0:w:2] = quarter
    out[..., 0:h:2, 1:w:2] = quarter
    out[..., 1:h:2, 0:w:2] = quarter
    out[..., 1:h:2, 1:w:2] = quarter
    return out


def _validate_scales(shape: Tuple[int, int], scales: int, window_size: int) -> None:
    h, w = shape
    for _ in range(scales - 1):
        h, w = h // 2, w // 2
    if window_size > min(h, w):
        raise ConfigurationError(
            f"{scales} scales reduce the image to {h}x{w}, smaller than the "
            f"{window_size}-pixel SSIM window; use fewer scales or a smaller window"
        )


def ms_ssim(
    x: np.ndarray,
    y: np.ndarray,
    scales: int = 3,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    window: str = "uniform",
):
    """Arithmetic-mean multi-scale SSIM.

    Returns a float for ``(H, W)`` inputs, an ``(N,)`` vector for batches.
    ``scales=1`` reduces exactly to single-scale :func:`repro.metrics.ssim`.
    """
    if scales < 1:
        raise ConfigurationError(f"scales must be >= 1, got {scales}")
    dtype = result_dtype(np.asarray(x), np.asarray(y))
    x = as_tensor(x, dtype)
    y = as_tensor(y, dtype)
    _validate_scales(x.shape[-2:], scales, window_size)

    total = None
    cur_x, cur_y = x, y
    for level in range(scales):
        score = ssim(cur_x, cur_y, window_size=window_size, data_range=data_range, window=window)
        total = score if total is None else total + score
        if level < scales - 1:
            cur_x = downsample2x(cur_x)
            cur_y = downsample2x(cur_y)
    return total / scales


def ms_ssim_and_grad(
    x: np.ndarray,
    y: np.ndarray,
    scales: int = 3,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    window: str = "uniform",
):
    """Mean multi-scale SSIM and its analytic gradient with respect to ``y``.

    The per-scale SSIM gradients are back-projected through the chain of
    2x2 average-pooling operators via their adjoint and averaged.
    """
    if scales < 1:
        raise ConfigurationError(f"scales must be >= 1, got {scales}")
    dtype = result_dtype(np.asarray(x), np.asarray(y))
    x = as_tensor(x, dtype)
    y = as_tensor(y, dtype)
    _validate_scales(x.shape[-2:], scales, window_size)

    # Forward: remember each pyramid level's shape for the backward pass.
    levels_x: List[np.ndarray] = [x]
    levels_y: List[np.ndarray] = [y]
    for _ in range(scales - 1):
        levels_x.append(downsample2x(levels_x[-1]))
        levels_y.append(downsample2x(levels_y[-1]))

    total_score = None
    total_grad = np.zeros_like(y)
    for level in range(scales):
        score, grad = ssim_and_grad(
            levels_x[level],
            levels_y[level],
            window_size=window_size,
            data_range=data_range,
            window=window,
        )
        total_score = score if total_score is None else total_score + score
        # Back-project this level's gradient to full resolution.
        for back in range(level, 0, -1):
            grad = upsample2x_adjoint(grad, levels_y[back - 1].shape)
        total_grad += grad
    return total_score / scales, total_grad / scales
