"""Empirical CDFs and percentile thresholds.

The paper inherits its decision rule from Richter & Roy: fit the empirical
CDF of reconstruction losses on the training set and flag a test image as
novel when its loss falls outside the 99th percentile.  :class:`EmpiricalCDF`
implements the distribution; :func:`percentile_threshold` extracts the
decision threshold used by :class:`repro.novelty.NoveltyDetector`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.utils.validation import require_finite


class EmpiricalCDF:
    """Empirical cumulative distribution function of a scalar sample.

    Evaluation uses the standard right-continuous estimator
    ``F(t) = #{x_i <= t} / n``.  Quantiles use linear interpolation between
    order statistics (numpy's default), matching how percentile thresholds
    are normally tuned in practice.
    """

    def __init__(self, samples: np.ndarray) -> None:
        samples = as_tensor(samples).ravel()
        if samples.size == 0:
            raise ShapeError("EmpiricalCDF requires at least one sample")
        require_finite(samples, "EmpiricalCDF samples")
        self._sorted = np.sort(samples)

    @property
    def n(self) -> int:
        """Number of samples the CDF was built from."""
        return int(self._sorted.size)

    @property
    def samples(self) -> np.ndarray:
        """Sorted copy of the underlying sample."""
        return self._sorted.copy()

    def evaluate(self, t) -> np.ndarray:
        """``F(t)``, the fraction of samples ``<= t`` (vectorized)."""
        t = as_tensor(t)
        ranks = np.searchsorted(self._sorted, t, side="right")
        result = ranks / self.n
        return float(result) if result.ndim == 0 else result

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1] (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile level must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def __call__(self, t) -> np.ndarray:
        return self.evaluate(t)


def percentile_threshold(samples: np.ndarray, percentile: float = 99.0) -> float:
    """Threshold at the given percentile of the sample distribution.

    ``percentile_threshold(losses, 99.0)`` is the paper's novelty cut-off:
    a test loss above this value lies outside the 99th percentile of the
    training-loss distribution.
    """
    if not 0.0 <= percentile <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {percentile}")
    return EmpiricalCDF(samples).quantile(percentile / 100.0)
