"""Structural Similarity Index (SSIM) — metric, component maps and gradient.

Implements SSIM exactly as the paper states it (§III-C), following Wang &
Bovik: local luminance, contrast, and structure statistics over sliding
windows (11x11 by default), combined with exponents α = β = γ = 1 into

.. math::

    \\mathrm{SSIM}(x, y) =
        \\frac{(2\\mu_x\\mu_y + c_1)(2\\sigma_{xy} + c_2)}
              {(\\mu_x^2 + \\mu_y^2 + c_1)(\\sigma_x^2 + \\sigma_y^2 + c_2)}

with smoothing constants :math:`c_1 = (k_1 L)^2`, :math:`c_2 = (k_2 L)^2`
for data range :math:`L`.

Two details matter for this library:

* **Windowing.** Local statistics are computed by correlating with a
  normalized window (uniform by default, Gaussian optional) using zero
  padding, and the final score averages the SSIM map over the *valid*
  interior region where windows do not overhang the border.  Zero padding
  makes the window operator *self-adjoint*, which keeps the gradient exact.

* **Gradient.** :func:`ssim_and_grad` returns the analytic gradient of the
  mean SSIM with respect to the second image ``y`` so SSIM can be used as a
  training loss for the paper's autoencoder (maximizing similarity between
  input and reconstruction).  The derivation follows the chain rule through
  the window statistics; the test suite verifies it against numerical
  differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor, result_dtype
from repro.utils.validation import require_same_shape

#: Wang & Bovik's standard stabilisation coefficients.
DEFAULT_K1 = 0.01
DEFAULT_K2 = 0.03
DEFAULT_WINDOW_SIZE = 11


@dataclass(frozen=True)
class SsimComponents:
    """Per-window SSIM component maps (luminance, contrast, structure).

    All maps share the input's spatial shape; multiply them elementwise to
    recover the SSIM map (for unit exponents).
    """

    luminance: np.ndarray
    contrast: np.ndarray
    structure: np.ndarray

    @property
    def ssim(self) -> np.ndarray:
        """Combined SSIM map, :math:`l \\cdot c \\cdot s`."""
        return self.luminance * self.contrast * self.structure


def _gaussian_kernel(size: int, sigma: float) -> np.ndarray:
    """Normalized 1-D Gaussian kernel of odd length ``size``."""
    half = size // 2
    coords = as_tensor(np.arange(-half, half + 1))
    kernel = np.exp(-(coords**2) / (2.0 * sigma**2))
    return kernel / kernel.sum()


def _validate(x: np.ndarray, y: np.ndarray, window_size: int) -> Tuple[np.ndarray, np.ndarray]:
    # SSIM follows its inputs: two float32 images are scored in float32
    # (the scipy windowing below preserves dtype), everything else in
    # float64 as before.
    dtype = result_dtype(np.asarray(x), np.asarray(y))
    x = as_tensor(x, dtype)
    y = as_tensor(y, dtype)
    require_same_shape(x, y, "ssim inputs")
    if x.ndim not in (2, 3):
        raise ShapeError(
            f"ssim expects (H, W) images or (N, H, W) batches, got shape {x.shape}"
        )
    if window_size < 3 or window_size % 2 == 0:
        raise ConfigurationError(
            f"window_size must be an odd integer >= 3, got {window_size}"
        )
    h, w = x.shape[-2], x.shape[-1]
    if window_size > h or window_size > w:
        raise ConfigurationError(
            f"window_size {window_size} exceeds image size {h}x{w}"
        )
    return x, y


class _Window:
    """Normalized local-mean operator over the trailing two axes.

    Uses zero ('constant') padding so the operator is self-adjoint:
    ``apply`` serves both the forward statistics and the gradient
    backprojection in :func:`ssim_and_grad`.
    """

    def __init__(self, window_size: int, kind: str, sigma: float) -> None:
        if kind not in ("uniform", "gaussian"):
            raise ConfigurationError(
                f"window kind must be 'uniform' or 'gaussian', got {kind!r}"
            )
        self.size = window_size
        self.kind = kind
        self.sigma = sigma
        if kind == "gaussian":
            self._kernel1d = _gaussian_kernel(window_size, sigma)

    def apply(self, img: np.ndarray) -> np.ndarray:
        """Correlate ``img`` with the window along its last two axes."""
        if self.kind == "uniform":
            size = (1,) * (img.ndim - 2) + (self.size, self.size)
            return ndimage.uniform_filter(img, size=size, mode="constant", cval=0.0)
        out = ndimage.correlate1d(img, self._kernel1d, axis=-1, mode="constant", cval=0.0)
        return ndimage.correlate1d(out, self._kernel1d, axis=-2, mode="constant", cval=0.0)

    def valid_slices(self, shape: Tuple[int, ...]) -> Tuple[slice, slice]:
        """Interior region where windows never overhang the image border."""
        pad = self.size // 2
        h, w = shape[-2], shape[-1]
        return slice(pad, h - pad), slice(pad, w - pad)


def _raw_maps(
    x: np.ndarray,
    y: np.ndarray,
    window: _Window,
    data_range: float,
    k1: float,
    k2: float,
):
    """Window statistics and SSIM factor maps shared by all entry points."""
    if data_range <= 0:
        raise ConfigurationError(f"data_range must be positive, got {data_range}")
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_x = window.apply(x)
    mu_y = window.apply(y)
    e_xx = window.apply(x * x)
    e_yy = window.apply(y * y)
    e_xy = window.apply(x * y)

    var_x = e_xx - mu_x**2
    var_y = e_yy - mu_y**2
    cov_xy = e_xy - mu_x * mu_y

    a1 = 2.0 * mu_x * mu_y + c1
    a2 = 2.0 * cov_xy + c2
    b1 = mu_x**2 + mu_y**2 + c1
    b2 = var_x + var_y + c2
    return mu_x, mu_y, var_x, var_y, cov_xy, a1, a2, b1, b2, c1, c2


def ssim_map(
    x: np.ndarray,
    y: np.ndarray,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    k1: float = DEFAULT_K1,
    k2: float = DEFAULT_K2,
    window: str = "uniform",
    sigma: float = 1.5,
) -> np.ndarray:
    """Per-pixel SSIM map (same shape as the inputs).

    Border pixels whose windows overhang the image use zero padding; prefer
    :func:`ssim` (which averages only the valid interior) for scalar scores.
    """
    x, y = _validate(x, y, window_size)
    win = _Window(window_size, window, sigma)
    *_, a1, a2, b1, b2, _, _ = _raw_maps(x, y, win, data_range, k1, k2)
    return (a1 * a2) / (b1 * b2)


def ssim(
    x: np.ndarray,
    y: np.ndarray,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    k1: float = DEFAULT_K1,
    k2: float = DEFAULT_K2,
    window: str = "uniform",
    sigma: float = 1.5,
):
    """Mean SSIM over the valid interior region.

    For ``(H, W)`` inputs returns a float; for ``(N, H, W)`` batches returns
    an ``(N,)`` vector of per-image scores.  Scores lie in ``[-1, 1]`` with
    1.0 meaning perfect correspondence (see paper §III-C).
    """
    x, y = _validate(x, y, window_size)
    win = _Window(window_size, window, sigma)
    smap = ssim_map(x, y, window_size, data_range, k1, k2, window, sigma)
    rows, cols = win.valid_slices(x.shape)
    valid = smap[..., rows, cols]
    if x.ndim == 2:
        return float(valid.mean())
    return valid.reshape(x.shape[0], -1).mean(axis=1)


def ssim_components(
    x: np.ndarray,
    y: np.ndarray,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    k1: float = DEFAULT_K1,
    k2: float = DEFAULT_K2,
    window: str = "uniform",
    sigma: float = 1.5,
) -> SsimComponents:
    """Luminance / contrast / structure maps (paper §III-C).

    Uses the standard decomposition with :math:`c_3 = c_2 / 2`:
    luminance :math:`(2\\mu_x\\mu_y+c_1)/(\\mu_x^2+\\mu_y^2+c_1)`,
    contrast :math:`(2\\sigma_x\\sigma_y+c_2)/(\\sigma_x^2+\\sigma_y^2+c_2)`,
    structure :math:`(\\sigma_{xy}+c_3)/(\\sigma_x\\sigma_y+c_3)`.
    """
    x, y = _validate(x, y, window_size)
    win = _Window(window_size, window, sigma)
    _, _, var_x, var_y, cov_xy, a1, _, b1, _, _, c2 = _raw_maps(
        x, y, win, data_range, k1, k2
    )
    # Window means of squares can dip a hair below the squared means from
    # floating-point cancellation; clamp before the square root.
    sd_x = np.sqrt(np.maximum(var_x, 0.0))
    sd_y = np.sqrt(np.maximum(var_y, 0.0))
    c3 = c2 / 2.0
    luminance = a1 / b1
    contrast = (2.0 * sd_x * sd_y + c2) / (var_x + var_y + c2)
    structure = (cov_xy + c3) / (sd_x * sd_y + c3)
    return SsimComponents(luminance=luminance, contrast=contrast, structure=structure)


def ssim_and_grad(
    x: np.ndarray,
    y: np.ndarray,
    window_size: int = DEFAULT_WINDOW_SIZE,
    data_range: float = 1.0,
    k1: float = DEFAULT_K1,
    k2: float = DEFAULT_K2,
    window: str = "uniform",
    sigma: float = 1.5,
):
    """Mean SSIM and its analytic gradient with respect to ``y``.

    Returns ``(score, grad)`` where ``grad`` has ``y``'s shape and equals
    :math:`\\partial\\,\\overline{\\mathrm{SSIM}}(x, y)/\\partial y`.  For a
    batch, ``score`` is the ``(N,)`` per-image vector and ``grad[i]`` is the
    gradient of ``score[i]`` (each image contributes independently).

    Derivation sketch: with window operator :math:`F` (self-adjoint under
    zero padding), :math:`\\mu_y = F y`, :math:`E_{yy} = F y^2`,
    :math:`E_{xy} = F (xy)`; the SSIM map is
    :math:`S = A_1 A_2 / (B_1 B_2)` with the usual factors.  Differentiating
    through the factors and back-projecting with :math:`F` gives

    .. math::
        \\nabla_y = F^T[g_{\\mu_y}] + 2y\\,F^T[g_{E_{yy}}] + x\\,F^T[g_{E_{xy}}]

    where the per-window terms :math:`g_\\cdot` are computed below.
    """
    x, y = _validate(x, y, window_size)
    win = _Window(window_size, window, sigma)
    mu_x, mu_y, _, _, _, a1, a2, b1, b2, _, _ = _raw_maps(
        x, y, win, data_range, k1, k2
    )
    smap = (a1 * a2) / (b1 * b2)

    rows, cols = win.valid_slices(x.shape)
    valid_mask = np.zeros(x.shape[-2:], dtype=x.dtype)
    valid_mask[rows, cols] = 1.0
    n_valid = valid_mask.sum()
    if n_valid == 0:
        raise ConfigurationError(
            f"no valid interior for window_size {window_size} on image {x.shape[-2:]}"
        )

    if x.ndim == 2:
        score = float(smap[rows, cols].mean())
    else:
        score = smap[..., rows, cols].reshape(x.shape[0], -1).mean(axis=1)

    # Upstream gradient of the mean over the valid region: uniform weight on
    # valid map pixels, zero on the border.
    g = valid_mask / n_valid
    if x.ndim == 3:
        g = np.broadcast_to(g, x.shape)

    inv_b1b2 = 1.0 / (b1 * b2)
    g_a1 = g * a2 * inv_b1b2
    g_a2 = g * a1 * inv_b1b2
    g_b1 = -g * smap / b1
    g_b2 = -g * smap / b2

    # Window-statistic gradients:
    #   A1 = 2 mu_x mu_y + c1          -> dA1/dmu_y = 2 mu_x
    #   B1 = mu_x^2 + mu_y^2 + c1      -> dB1/dmu_y = 2 mu_y
    #   A2 = 2 (E_xy - mu_x mu_y) + c2 -> dA2/dE_xy = 2, dA2/dmu_y = -2 mu_x
    #   B2 = (E_xx - mu_x^2) + (E_yy - mu_y^2) + c2
    #                                  -> dB2/dE_yy = 1, dB2/dmu_y = -2 mu_y
    g_mu_y = 2.0 * mu_x * g_a1 + 2.0 * mu_y * g_b1 - 2.0 * mu_x * g_a2 - 2.0 * mu_y * g_b2
    g_e_yy = g_b2
    g_e_xy = 2.0 * g_a2

    grad = win.apply(g_mu_y) + 2.0 * y * win.apply(g_e_yy) + x * win.apply(g_e_xy)
    return score, grad
