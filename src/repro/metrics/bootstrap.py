"""Bootstrap confidence intervals for evaluation statistics.

The paper reports point estimates from a single 500-image sample per
class.  At this repo's reduced scales samples are smaller still, so the
evaluation harness can attach nonparametric bootstrap confidence intervals
to any statistic of (scores, labels) — most usefully AUROC and the
detection rate — making "method A beats method B" claims checkable against
sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.metrics.roc import auroc
from repro.utils.seeding import RngLike, derive_rng


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.estimate:.3f} [{self.lower:.3f}, {self.upper:.3f}]@{pct}%"


def bootstrap_statistic(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: RngLike = None,
) -> BootstrapResult:
    """Percentile-bootstrap CI for a statistic of one sample."""
    values = as_tensor(values).ravel()
    if values.size < 2:
        raise ShapeError("bootstrap requires at least 2 samples")
    if n_resamples < 10:
        raise ConfigurationError(f"n_resamples must be >= 10, got {n_resamples}")
    if not 0.5 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0.5, 1), got {confidence}")
    generator = derive_rng(rng, stream="bootstrap")
    estimates = np.empty(n_resamples)
    n = values.size
    for i in range(n_resamples):
        estimates[i] = statistic(values[generator.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(values)),
        lower=float(np.quantile(estimates, alpha)),
        upper=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=float(confidence),
        n_resamples=int(n_resamples),
    )


def bootstrap_auroc(
    target_scores: np.ndarray,
    novel_scores: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: RngLike = None,
) -> BootstrapResult:
    """Bootstrap CI for AUROC between target and novel score samples.

    Resamples the two classes independently (stratified bootstrap), which
    preserves the class balance of the original evaluation.
    """
    target_scores = as_tensor(target_scores).ravel()
    novel_scores = as_tensor(novel_scores).ravel()
    if target_scores.size < 2 or novel_scores.size < 2:
        raise ShapeError("bootstrap_auroc requires >= 2 samples per class")
    if n_resamples < 10:
        raise ConfigurationError(f"n_resamples must be >= 10, got {n_resamples}")
    if not 0.5 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0.5, 1), got {confidence}")

    generator = derive_rng(rng, stream="bootstrap-auroc")
    labels = np.concatenate(
        [np.zeros(target_scores.size, bool), np.ones(novel_scores.size, bool)]
    )

    def _auroc(t: np.ndarray, n: np.ndarray) -> float:
        return auroc(np.concatenate([t, n]), labels)

    estimates = np.empty(n_resamples)
    nt, nn = target_scores.size, novel_scores.size
    for i in range(n_resamples):
        t = target_scores[generator.integers(0, nt, size=nt)]
        n = novel_scores[generator.integers(0, nn, size=nn)]
        # Degenerate resamples (all values tied across classes) still work:
        # auroc handles ties; single-class cannot happen by construction.
        estimates[i] = _auroc(t, n)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=_auroc(target_scores, novel_scores),
        lower=float(np.quantile(estimates, alpha)),
        upper=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=float(confidence),
        n_resamples=int(n_resamples),
    )
