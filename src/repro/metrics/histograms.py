"""Histogram comparison statistics.

Figures 5 and 7 of the paper present pairs of score histograms (target
class vs novel class) and argue visually about their separation.  This
module computes the numbers those figures encode: shared-bin histograms,
the histogram overlap coefficient (0 = perfectly separated, 1 = identical),
and a summary :class:`HistogramComparison` used by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.metrics.roc import auroc


@dataclass(frozen=True)
class HistogramComparison:
    """Separation statistics between a target and a novel score sample.

    Attributes
    ----------
    bin_edges:
        Shared bin edges covering both samples.
    target_hist, novel_hist:
        Normalized (density) histograms over the shared bins.
    target_mean, novel_mean:
        Sample means — the paper quotes these directly ("average SSIM of
        about 0.7 ... while DSI images had almost 0 similarity").
    overlap:
        Overlap coefficient of the two densities in [0, 1].
    auroc:
        AUROC of separating novel from target using the raw scores,
        oriented so that 1.0 always means perfectly separable.
    """

    bin_edges: np.ndarray
    target_hist: np.ndarray
    novel_hist: np.ndarray
    target_mean: float
    novel_mean: float
    overlap: float
    auroc: float

    @property
    def mean_gap(self) -> float:
        """Absolute difference between the two sample means."""
        return abs(self.target_mean - self.novel_mean)


def histogram_overlap(
    a: np.ndarray, b: np.ndarray, bins: int = 50, range_: Tuple[float, float] = None
) -> float:
    """Overlap coefficient of two samples' histograms on shared bins.

    Computes ``sum(min(p_i, q_i))`` over normalized bin masses; 0 means the
    samples occupy disjoint bins, 1 means identical histograms.
    """
    a = as_tensor(a).ravel()
    b = as_tensor(b).ravel()
    if a.size == 0 or b.size == 0:
        raise ShapeError("histogram_overlap requires non-empty samples")
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    if range_ is None:
        lo = min(a.min(), b.min())
        hi = max(a.max(), b.max())
        if lo == hi:  # all scores identical -> full overlap by definition
            return 1.0
        range_ = (lo, hi)
    pa, edges = np.histogram(a, bins=bins, range=range_)
    pb, _ = np.histogram(b, bins=edges)
    pa = pa / a.size
    pb = pb / b.size
    return float(np.minimum(pa, pb).sum())


def compare_distributions(
    target_scores: np.ndarray,
    novel_scores: np.ndarray,
    bins: int = 50,
    higher_is_novel: bool = True,
) -> HistogramComparison:
    """Full separation summary between target-class and novel-class scores.

    Parameters
    ----------
    higher_is_novel:
        Orientation of the score: ``True`` for losses (MSE — novel images
        reconstruct worse), ``False`` for similarities (SSIM — novel images
        are *less* similar).  AUROC is reported in the oriented sense so
        that 1.0 always means perfect separation.
    """
    target_scores = as_tensor(target_scores).ravel()
    novel_scores = as_tensor(novel_scores).ravel()
    if target_scores.size == 0 or novel_scores.size == 0:
        raise ShapeError("compare_distributions requires non-empty samples")

    lo = min(target_scores.min(), novel_scores.min())
    hi = max(target_scores.max(), novel_scores.max())
    if lo == hi:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    t_hist, _ = np.histogram(target_scores, bins=edges)
    n_hist, _ = np.histogram(novel_scores, bins=edges)

    scores = np.concatenate([target_scores, novel_scores])
    labels = np.concatenate(
        [np.zeros(target_scores.size, bool), np.ones(novel_scores.size, bool)]
    )
    oriented = scores if higher_is_novel else -scores

    return HistogramComparison(
        bin_edges=edges,
        target_hist=t_hist / target_scores.size,
        novel_hist=n_hist / novel_scores.size,
        target_mean=float(target_scores.mean()),
        novel_mean=float(novel_scores.mean()),
        overlap=histogram_overlap(target_scores, novel_scores, bins=bins, range_=(lo, hi)),
        auroc=auroc(oriented, labels),
    )


def render_ascii_histogram(
    comparison: HistogramComparison, width: int = 40, label_target: str = "target", label_novel: str = "novel"
) -> str:
    """Render the two histograms side by side as ASCII (for bench output)."""
    lines = []
    peak = max(comparison.target_hist.max(), comparison.novel_hist.max(), 1e-12)
    for i in range(comparison.target_hist.size):
        lo, hi = comparison.bin_edges[i], comparison.bin_edges[i + 1]
        t_bar = "#" * int(round(width * comparison.target_hist[i] / peak))
        n_bar = "*" * int(round(width * comparison.novel_hist[i] / peak))
        lines.append(f"[{lo:8.4f},{hi:8.4f}) {t_bar:<{width}} | {n_bar}")
    lines.append(f"legend: '#' = {label_target}, '*' = {label_novel}")
    return "\n".join(lines)
