"""Reconstruction sharpness via gradient energy.

Figure 6 of the paper contrasts the *blurry* reconstructions produced by an
MSE-trained autoencoder on raw images with the *clean* reconstructions the
SSIM-trained autoencoder produces on VBP images.  Gradient energy — the mean
squared spatial gradient magnitude — is the standard scalar proxy for that
visual judgment: blur suppresses high-frequency content and lowers the
score.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor


def gradient_energy(image: np.ndarray) -> float:
    """Mean squared magnitude of forward-difference spatial gradients.

    Accepts a single ``(H, W)`` image; larger values indicate sharper
    content.
    """
    image = as_tensor(image)
    if image.ndim != 2:
        raise ShapeError(f"gradient_energy expects an (H, W) image, got {image.shape}")
    if image.shape[0] < 2 or image.shape[1] < 2:
        raise ShapeError(f"image too small for gradients: {image.shape}")
    gy = np.diff(image, axis=0)
    gx = np.diff(image, axis=1)
    return float((gy**2).mean() + (gx**2).mean())


def sharpness_ratio(reconstruction: np.ndarray, original: np.ndarray) -> float:
    """Gradient energy of a reconstruction relative to its original.

    A ratio near 1.0 means the reconstruction preserved the original's
    high-frequency structure; values well below 1.0 indicate blurring (the
    failure mode of the MSE baseline in Figure 6).  The ratio is clipped to
    0 when the original image is perfectly flat.
    """
    denom = gradient_energy(original)
    if denom == 0.0:
        return 0.0
    return gradient_energy(reconstruction) / denom
