"""ROC analysis for novelty scores.

The paper argues separability from histograms; AUROC is the standard scalar
summary of the same information (1.0 = the two distributions are perfectly
separable, 0.5 = indistinguishable).  These routines quantify Figures 5 and
7 so the benchmark harness can report numbers instead of pictures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor


@dataclass(frozen=True)
class RocCurve:
    """A receiver-operating-characteristic curve.

    Attributes
    ----------
    fpr, tpr:
        False/true positive rates at each threshold, monotonically
        non-decreasing from 0 to 1.
    thresholds:
        Score thresholds corresponding to each operating point ("positive"
        means ``score >= threshold``).
    """

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve via the trapezoid rule."""
        # np.trapz was renamed to np.trapezoid in numpy 2.0.
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.tpr, self.fpr))


def _validate_scores(scores: np.ndarray, labels: np.ndarray):
    scores = as_tensor(scores).ravel()
    labels = np.asarray(labels).ravel().astype(bool)
    if scores.shape != labels.shape:
        raise ShapeError(
            f"scores and labels must align, got {scores.shape} vs {labels.shape}"
        )
    if scores.size == 0:
        raise ShapeError("roc requires at least one sample")
    if labels.all() or not labels.any():
        raise ShapeError("roc requires both positive and negative samples")
    return scores, labels


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> RocCurve:
    """ROC curve for scores where *higher* means *more positive*.

    Parameters
    ----------
    scores:
        Scalar scores (e.g. reconstruction losses, where higher = more
        novel).
    labels:
        Boolean array; ``True`` marks the positive (novel) class.
    """
    scores, labels = _validate_scores(scores, labels)
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    n_pos = tp[-1]
    n_neg = fp[-1]

    # Collapse runs of equal scores to single operating points.
    distinct = np.r_[np.nonzero(np.diff(sorted_scores))[0], sorted_scores.size - 1]
    tpr = np.r_[0.0, tp[distinct] / n_pos]
    fpr = np.r_[0.0, fp[distinct] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)


def auroc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (higher score = more positive).

    Computed via the rank-statistic (Mann-Whitney U) formulation, which is
    exact and handles ties correctly.
    """
    scores, labels = _validate_scores(scores, labels)
    # Average ranks so tied scores contribute 0.5.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(scores)
    ranks[order] = as_tensor(np.arange(1, scores.size + 1))
    unique, inverse, counts = np.unique(scores, return_inverse=True, return_counts=True)
    if unique.size != scores.size:
        rank_sums = np.bincount(inverse, weights=ranks)
        ranks = (rank_sums / counts)[inverse]
    n_pos = labels.sum()
    n_neg = labels.size - n_pos
    u = ranks[labels].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def tpr_at_fpr(scores: np.ndarray, labels: np.ndarray, max_fpr: float = 0.01) -> float:
    """Highest achievable TPR subject to ``FPR <= max_fpr``.

    With ``max_fpr = 0.01`` this is the detection rate at the paper's
    99th-percentile operating point.
    """
    if not 0.0 <= max_fpr <= 1.0:
        raise ShapeError(f"max_fpr must be in [0, 1], got {max_fpr}")
    curve = roc_curve(scores, labels)
    feasible = curve.fpr <= max_fpr
    return float(curve.tpr[feasible].max())


@dataclass(frozen=True)
class PrCurve:
    """A precision-recall curve.

    Attributes
    ----------
    precision, recall:
        Operating points, ordered by decreasing threshold (recall
        non-decreasing).
    thresholds:
        Score thresholds ("positive" means ``score >= threshold``).
    """

    precision: np.ndarray
    recall: np.ndarray
    thresholds: np.ndarray


def pr_curve(scores: np.ndarray, labels: np.ndarray) -> PrCurve:
    """Precision-recall curve (higher score = more positive)."""
    scores, labels = _validate_scores(scores, labels)
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    tp = np.cumsum(sorted_labels)
    predicted = np.arange(1, scores.size + 1)
    distinct = np.r_[np.nonzero(np.diff(sorted_scores))[0], sorted_scores.size - 1]
    precision = tp[distinct] / predicted[distinct]
    recall = tp[distinct] / tp[-1]
    return PrCurve(
        precision=precision, recall=recall, thresholds=sorted_scores[distinct]
    )


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the PR curve, step interpolation).

    The standard AP estimator: the sum over distinct recall increments of
    the precision at that operating point.
    """
    curve = pr_curve(scores, labels)
    recall_steps = np.diff(np.r_[0.0, curve.recall])
    return float(np.sum(recall_steps * curve.precision))
