"""Image-similarity and evaluation metrics.

This package implements the two similarity metrics the paper compares —
pixel-wise MSE and the Structural Similarity Index (SSIM, Wang & Bovik) —
plus the statistical machinery its evaluation relies on: empirical CDFs with
percentile thresholds (the Richter & Roy novelty rule), ROC/AUROC analysis,
histogram-separation statistics (the quantitative content of Figures 5 and
7), and a gradient-energy sharpness score (the quantitative content of
Figure 6's "blurry vs clean reconstruction" comparison).
"""

from repro.metrics.bootstrap import BootstrapResult, bootstrap_auroc, bootstrap_statistic
from repro.metrics.cdf import EmpiricalCDF, percentile_threshold
from repro.metrics.histograms import (
    HistogramComparison,
    compare_distributions,
    histogram_overlap,
)
from repro.metrics.mse import mse, pairwise_mse, psnr
from repro.metrics.msssim import downsample2x, ms_ssim, ms_ssim_and_grad, upsample2x_adjoint
from repro.metrics.roc import (
    PrCurve,
    RocCurve,
    auroc,
    average_precision,
    pr_curve,
    roc_curve,
    tpr_at_fpr,
)
from repro.metrics.sharpness import gradient_energy, sharpness_ratio
from repro.metrics.ssim import (
    SsimComponents,
    ssim,
    ssim_and_grad,
    ssim_components,
    ssim_map,
)

__all__ = [
    "BootstrapResult",
    "bootstrap_auroc",
    "bootstrap_statistic",
    "EmpiricalCDF",
    "percentile_threshold",
    "HistogramComparison",
    "compare_distributions",
    "histogram_overlap",
    "mse",
    "pairwise_mse",
    "psnr",
    "downsample2x",
    "ms_ssim",
    "ms_ssim_and_grad",
    "upsample2x_adjoint",
    "PrCurve",
    "RocCurve",
    "auroc",
    "average_precision",
    "pr_curve",
    "roc_curve",
    "tpr_at_fpr",
    "gradient_energy",
    "sharpness_ratio",
    "SsimComponents",
    "ssim",
    "ssim_and_grad",
    "ssim_components",
    "ssim_map",
]
