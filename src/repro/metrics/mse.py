"""Pixel-wise mean squared error and PSNR.

The paper's baseline (Richter & Roy) scores reconstructions with

.. math:: \\mathrm{MSE}(x, y) = \\frac{1}{K} \\sum_k (x[k] - y[k])^2

over the K pixels of the image.  :func:`mse` implements exactly that;
:func:`pairwise_mse` vectorizes it over batches so histogram experiments can
score hundreds of reconstructions in one call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.backend.policy import as_tensor, result_dtype
from repro.utils.validation import require_same_shape


def mse(x: np.ndarray, y: np.ndarray) -> float:
    """Mean squared error between two equal-shaped arrays."""
    dtype = result_dtype(np.asarray(x), np.asarray(y))
    x = as_tensor(x, dtype)
    y = as_tensor(y, dtype)
    require_same_shape(x, y, "mse inputs")
    if x.size == 0:
        raise ShapeError("mse inputs must be non-empty")
    return float(np.mean((x - y) ** 2))


def pairwise_mse(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-sample MSE for batches shaped ``(N, ...)``.

    Returns an ``(N,)`` vector where entry ``i`` is the MSE between
    ``x[i]`` and ``y[i]``.
    """
    dtype = result_dtype(np.asarray(x), np.asarray(y))
    x = as_tensor(x, dtype)
    y = as_tensor(y, dtype)
    require_same_shape(x, y, "pairwise_mse inputs")
    if x.ndim < 2:
        raise ShapeError(f"pairwise_mse expects batches (N, ...), got shape {x.shape}")
    diff = (x - y).reshape(x.shape[0], -1)
    return np.mean(diff**2, axis=1)


def psnr(x: np.ndarray, y: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for identical images (zero error).
    """
    if data_range <= 0:
        raise ShapeError(f"data_range must be positive, got {data_range}")
    err = mse(x, y)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / err))
