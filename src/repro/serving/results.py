"""Typed request outcomes for the serving engine.

Every request submitted to :class:`repro.serving.ServingEngine` resolves
to exactly one of six outcome types — admission control and failures are
*values*, not exceptions, so a frontend can serialize them onto the wire
without a try/except ladder:

* :class:`Scored` — the frame was scored; carries the verdict and latency.
* :class:`Rejected` — refused by admission policy (rate limit, adaptive
  concurrency limit, or deadline-aware shedding) before entering the
  queue; carries a machine-readable reason and is never retried.
* :class:`Overloaded` — rejected at admission because the bounded request
  queue was full (backpressure; the engine never queues unboundedly).
* :class:`DeadlineExceeded` — admitted, but its deadline passed while it
  waited in the queue; dropped without scoring.
* :class:`Degraded` — the backend was unavailable (circuit breaker open,
  or retries exhausted) and the engine's fail-safe policy substituted a
  conservative verdict instead of failing the request.
* :class:`Failed` — the scoring backend raised (or the engine shut down).

:class:`PendingResult` is the future handed back by ``submit``; callers
block on :meth:`PendingResult.result`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import ClassVar, Optional, Union

import numpy as np

from repro.exceptions import ServingError


@dataclass(frozen=True)
class Scored:
    """Successful outcome: one frame's novelty verdict.

    Attributes
    ----------
    score:
        Loss-oriented novelty score (higher = more novel).
    is_novel:
        The detector's threshold decision.
    margin:
        Signed distance past the threshold (positive = novel side).
    batch_size:
        Size of the micro-batch this frame was scored in.
    latency_s:
        End-to-end seconds from admission to verdict (queue wait included).
    retries:
        Backend retries spent before this verdict (0 on a clean first try).
    model_version:
        Registry version (or bundle config hash) of the model that scored
        this frame, when the scorer advertises one — under a hot-swap or a
        canary split this is the only record of *which* model answered.
    """

    status: ClassVar[str] = "ok"

    score: float
    is_novel: bool
    margin: float
    batch_size: int
    latency_s: float
    retries: int = 0
    model_version: Optional[str] = None


@dataclass(frozen=True)
class Rejected:
    """Refused by admission policy before any work was queued.

    Unlike :class:`Overloaded` (a full queue — transient backpressure),
    a ``Rejected`` outcome is a *policy* decision: the client exceeded
    its quota, the adaptive concurrency limit is shedding load, or the
    request's deadline cannot be met by the current queue.  Rejections
    are cheap by construction (no frame ever enters the queue) and are
    deliberately not retried by the engine's reliability machinery —
    retrying against the same overloaded node is exactly the behavior
    admission control exists to prevent.

    Attributes
    ----------
    reason:
        Machine-readable cause, one of
        :data:`~repro.serving.admission.REJECTION_REASONS`
        (``"rate_limited"`` / ``"concurrency_limit"`` /
        ``"deadline_unmeetable"``).
    qos_class:
        Priority class the request resolved to.
    client_id:
        Client identity the decision was keyed on (``None`` = anonymous).
    retry_after_ms:
        For rate-limited rejections, when the client's token bucket will
        admit again; ``None`` for the other reasons.
    """

    status: ClassVar[str] = "rejected"

    reason: str
    qos_class: str
    client_id: Optional[str] = None
    retry_after_ms: Optional[float] = None


@dataclass(frozen=True)
class Overloaded:
    """Rejected at admission: the bounded request queue was full."""

    status: ClassVar[str] = "overloaded"

    queue_depth: int
    capacity: int


@dataclass(frozen=True)
class DeadlineExceeded:
    """Dropped unscored: the request's deadline passed while queued."""

    status: ClassVar[str] = "deadline_exceeded"

    waited_s: float
    deadline_s: float


@dataclass(frozen=True)
class Degraded:
    """Unscorable, but answered: the engine's fail-safe verdict.

    Produced when the circuit breaker is open or retries are exhausted and
    the engine was configured with a fail-safe policy (``fail_safe !=
    "fail"``).  ``is_novel`` is the *policy's* conservative verdict, not a
    measurement — a downstream safety loop should treat it as "assume the
    worst", which for a novelty monitor means hand control back.

    Attributes
    ----------
    reason:
        Why the frame could not be scored.
    is_novel:
        The substituted verdict (``True`` under the ``"novel"`` policy).
    policy:
        Name of the fail-safe policy that produced the verdict.
    """

    status: ClassVar[str] = "degraded"

    reason: str
    is_novel: bool
    policy: str


@dataclass(frozen=True)
class Failed:
    """The scoring backend raised, or the engine closed mid-flight."""

    status: ClassVar[str] = "failed"

    error: str


RequestOutcome = Union[
    Scored, Rejected, Overloaded, DeadlineExceeded, Degraded, Failed
]


class PendingResult:
    """A one-shot future resolving to a :data:`RequestOutcome`."""

    __slots__ = ("_event", "_outcome")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcome: Optional[RequestOutcome] = None

    def resolve(self, outcome: RequestOutcome) -> None:
        """Deliver the outcome (first resolution wins; later ones ignored)."""
        if self._outcome is None:
            self._outcome = outcome
        self._event.set()

    def done(self) -> bool:
        """Whether an outcome has been delivered."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> RequestOutcome:
        """Block until the outcome arrives (``ServingError`` on timeout)."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"request did not resolve within {timeout} seconds"
            )
        assert self._outcome is not None
        return self._outcome


@dataclass(frozen=True)
class BatchVerdicts:
    """Vectorized verdicts for one scored micro-batch (scorer output).

    ``model_version`` names the model that produced the batch (a registry
    version or bundle hash); scorers that predate versioning leave it
    ``None`` and the engine falls back to the scorer's own advertised
    version when stamping outcomes.
    """

    scores: np.ndarray
    is_novel: np.ndarray
    margins: np.ndarray
    model_version: Optional[str] = None

    def __post_init__(self) -> None:
        n = len(self.scores)
        if len(self.is_novel) != n or len(self.margins) != n:
            raise ServingError(
                f"inconsistent batch verdict lengths: {n}, "
                f"{len(self.is_novel)}, {len(self.margins)}"
            )

    def __len__(self) -> int:
        """Number of frames this batch scored."""
        return len(self.scores)
