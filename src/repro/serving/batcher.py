"""Micro-batching request queue with bounded admission.

Single-frame requests arrive one at a time (a camera feed, socket
clients); batched numpy matmuls are where the throughput is.  The
:class:`MicroBatcher` bridges the two: producers :meth:`~MicroBatcher.offer`
individual requests into a bounded FIFO, consumers (the engine's dispatch
threads) pull *micro-batches* assembled under a ``max_batch_size`` /
``max_wait_ms`` policy — a batch closes as soon as it is full, or when
``max_wait_ms`` has elapsed since its first frame was dequeued, whichever
comes first.  A full queue rejects at admission (the caller turns that
into a typed :class:`~repro.serving.results.Overloaded` outcome) instead
of queueing unboundedly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serving.results import PendingResult
from repro.telemetry.trace import TraceContext


@dataclass
class QueuedRequest:
    """One admitted request waiting to be scored."""

    frame: np.ndarray
    pending: PendingResult
    enqueued_at: float
    #: Absolute ``time.monotonic()`` deadline, or ``None`` for no deadline.
    deadline_at: Optional[float]
    #: Root trace context of this request (``None`` when telemetry is off);
    #: the value that carries the request's identity across the queue.
    trace: Optional[TraceContext] = None
    #: Durable request-ledger id (``None`` when journaling is off); the
    #: engine resolves it alongside the :class:`PendingResult`, so a
    #: crash leaves exactly the unresolved ids on disk.
    ledger_id: Optional[int] = None
    #: Priority class the request was admitted under; routes it to the
    #: right queue of a :class:`~repro.serving.admission.WeightedClassBatcher`
    #: (the plain FIFO ignores it).
    qos_class: str = "interactive"
    #: Client identity from the wire protocol (``None`` = anonymous /
    #: in-process); admission quotas are keyed on it.
    client_id: Optional[str] = None


class MicroBatcher:
    """Bounded FIFO that hands out micro-batches to consumer threads.

    Parameters
    ----------
    max_batch_size:
        Largest batch a single :meth:`next_batch` call returns.
    max_wait_ms:
        How long an open batch waits for more frames before closing
        under-full.  ``0`` means "whatever is queued right now".
    capacity:
        Admission bound: :meth:`offer` refuses once this many requests
        are queued (explicit backpressure).
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        capacity: int = 64,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ConfigurationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.capacity = int(capacity)
        self._queue: Deque[QueuedRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        """Current queue depth."""
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def offer(self, request: QueuedRequest) -> bool:
        """Admit a request; ``False`` when full or closed (backpressure)."""
        with self._cond:
            if self._closed or len(self._queue) >= self.capacity:
                return False
            self._queue.append(request)
            self._cond.notify()
            return True

    def next_batch(self) -> Optional[List[QueuedRequest]]:
        """Block until a micro-batch is ready; ``None`` once closed and drained.

        Safe for multiple consumer threads: each call assembles its batch
        under the queue lock, releasing it while waiting for stragglers.
        """
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            window_ends = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = window_ends - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            return batch

    def close(self) -> List[QueuedRequest]:
        """Refuse further admissions, wake consumers, return the leftovers.

        The caller owns the returned requests and must resolve their
        futures (the engine fails them as "engine closed").
        """
        with self._cond:
            self._closed = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
            return leftovers
