"""QoS policy primitives for serving admission control.

This module defines the *policy* half of the admission subsystem — plain
data describing how traffic should be treated — plus the three mechanism
primitives the :class:`~repro.serving.admission.AdmissionController`
composes:

* :class:`TokenBucket` — per-client rate limiting (requests/second with a
  burst allowance), refilled lazily from a monotonic clock and
  serializable via ``state_dict`` so quotas survive a crash.
* :class:`AimdLimiter` — an additive-increase / multiplicative-decrease
  concurrency limit.  Every successfully scored batch nudges the limit
  up; every overload signal (deadline expiry, breaker-open) cuts it
  multiplicatively, with a cooldown so one bursty batch cannot collapse
  the limit in a single tick.
* :class:`ServiceTimeEstimator` — a sliding window over recent per-frame
  scoring times, used to predict queue delay for deadline-aware shedding.

Policy is a small fixed set of priority classes (:data:`PRIORITY_CLASSES`:
``critical`` / ``interactive`` / ``batch``), each with a scheduling
weight, a bounded per-class queue, an optional default deadline, and a
``sheddable`` bit — non-sheddable classes (``critical`` by default) are
exempt from the AIMD limiter and deadline shedding, so safety-critical
traffic is only ever refused by an explicit per-client quota.

Operators ship a :class:`QosPolicy` as JSON (``repro serve
--qos-config policy.json``); :func:`load_qos_policy` validates eagerly
and raises :class:`~repro.exceptions.ConfigurationError` naming the exact
offending key, which the CLI turns into an exit-2.  See
``docs/admission.md``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError, StateRestoreError

#: The fixed set of priority classes, highest priority first.  The set is
#: deliberately closed — scheduling weights only mean something when every
#: operator and client agrees on the class names.
PRIORITY_CLASSES = ("critical", "interactive", "batch")

#: Class assumed when a request (or policy) does not name one.
DEFAULT_CLASS = "interactive"


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class RateLimit:
    """A token-bucket quota: sustained ``rate_per_s`` with ``burst`` headroom.

    Attributes
    ----------
    rate_per_s:
        Sustained admission rate in requests per second.
    burst:
        Bucket capacity — how many requests may arrive back-to-back before
        the sustained rate applies.
    """

    rate_per_s: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        _require(self.rate_per_s > 0, f"rate_per_s must be > 0, got {self.rate_per_s}")
        _require(self.burst >= 1, f"burst must be >= 1, got {self.burst}")


@dataclass(frozen=True)
class ClassPolicy:
    """Scheduling policy for one priority class.

    Attributes
    ----------
    weight:
        Share of batch slots under contention (smooth weighted
        round-robin); only relative magnitudes matter.
    queue_capacity:
        Bound on this class's queue; ``None`` inherits the engine's
        ``queue_capacity``.
    default_deadline_ms:
        Deadline applied to requests of this class that do not carry one;
        ``None`` falls back to the engine default.
    sheddable:
        Whether the AIMD limiter and deadline-aware shedding may refuse
        this class.  ``False`` exempts it (the right setting for
        ``critical``): such requests are only rejected by an explicit
        per-client rate limit or a full queue.
    """

    weight: float = 1.0
    queue_capacity: Optional[int] = None
    default_deadline_ms: Optional[float] = None
    sheddable: bool = True

    def __post_init__(self) -> None:
        _require(self.weight > 0, f"weight must be > 0, got {self.weight}")
        _require(
            self.queue_capacity is None or self.queue_capacity >= 1,
            f"queue_capacity must be >= 1, got {self.queue_capacity}",
        )
        _require(
            self.default_deadline_ms is None or self.default_deadline_ms > 0,
            f"default_deadline_ms must be positive, got {self.default_deadline_ms}",
        )


@dataclass(frozen=True)
class AimdConfig:
    """Additive-increase / multiplicative-decrease concurrency policy.

    Attributes
    ----------
    initial:
        Starting concurrency limit (admitted-but-unresolved requests).
    min_limit / max_limit:
        Clamp bounds the limit can never leave.
    increase:
        Additive step applied per successfully scored batch.
    decrease:
        Multiplicative factor applied per overload signal (``0 < x < 1``).
    cooldown_s:
        Minimum seconds between two decreases, so a burst of deadline
        expiries from one stall counts as a single backoff.
    """

    initial: int = 32
    min_limit: int = 2
    max_limit: int = 1024
    increase: float = 1.0
    decrease: float = 0.5
    cooldown_s: float = 0.25

    def __post_init__(self) -> None:
        _require(self.min_limit >= 1, f"min_limit must be >= 1, got {self.min_limit}")
        _require(
            self.min_limit <= self.initial <= self.max_limit,
            f"need min_limit <= initial <= max_limit, got "
            f"{self.min_limit} / {self.initial} / {self.max_limit}",
        )
        _require(self.increase > 0, f"increase must be > 0, got {self.increase}")
        _require(0 < self.decrease < 1, f"decrease must be in (0, 1), got {self.decrease}")
        _require(self.cooldown_s >= 0, f"cooldown_s must be >= 0, got {self.cooldown_s}")


def _default_classes() -> Dict[str, ClassPolicy]:
    return {
        "critical": ClassPolicy(weight=16.0, sheddable=False),
        "interactive": ClassPolicy(weight=4.0),
        "batch": ClassPolicy(weight=1.0),
    }


@dataclass(frozen=True)
class QosPolicy:
    """Complete admission policy for one serving engine.

    Attributes
    ----------
    classes:
        Per-class scheduling policy, keyed by a :data:`PRIORITY_CLASSES`
        name.  Classes not listed do not exist for this engine.
    default_class:
        Class assumed for requests that carry no priority.
    rate_limit:
        Quota applied to every client without an explicit override;
        ``None`` leaves unlisted clients unmetered.
    client_rate_limits:
        Per-client quota overrides, keyed by the wire-protocol client id.
    shed_deadlines:
        Whether to refuse sheddable requests whose deadline the queue
        cannot meet (predicted delay > deadline).
    shed_safety_factor:
        Multiplier on the predicted delay before comparing against the
        deadline (> 1 sheds earlier, < 1 later).
    aimd:
        Adaptive concurrency policy; ``None`` disables the limiter.
    estimator_window:
        Sliding-window length (batches) of the service-time estimate.
    """

    classes: Mapping[str, ClassPolicy] = field(default_factory=_default_classes)
    default_class: str = DEFAULT_CLASS
    rate_limit: Optional[RateLimit] = None
    client_rate_limits: Mapping[str, RateLimit] = field(default_factory=dict)
    shed_deadlines: bool = True
    shed_safety_factor: float = 1.0
    aimd: Optional[AimdConfig] = field(default_factory=AimdConfig)
    estimator_window: int = 128

    def __post_init__(self) -> None:
        _require(bool(self.classes), "a QoS policy needs at least one priority class")
        for name in self.classes:
            _require(
                name in PRIORITY_CLASSES,
                f"unknown priority class {name!r}; expected one of "
                f"{', '.join(PRIORITY_CLASSES)}",
            )
        _require(
            self.default_class in self.classes,
            f"default_class {self.default_class!r} is not a configured class",
        )
        _require(
            self.shed_safety_factor > 0,
            f"shed_safety_factor must be > 0, got {self.shed_safety_factor}",
        )
        _require(
            self.estimator_window >= 1,
            f"estimator_window must be >= 1, got {self.estimator_window}",
        )

    @classmethod
    def default(cls) -> "QosPolicy":
        """The stock three-class policy: critical 16 / interactive 4 / batch 1,
        AIMD on, deadline shedding on, no rate limits."""
        return cls()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QosPolicy":
        """Build a policy from its JSON form, validating every key eagerly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"QoS policy must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "classes",
            "default_class",
            "rate_limit",
            "client_rate_limits",
            "shed_deadlines",
            "shed_safety_factor",
            "aimd",
            "estimator_window",
        }
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown QoS policy keys: {', '.join(unknown)}")
        kwargs: Dict[str, Any] = {}
        if "classes" in payload:
            kwargs["classes"] = {
                str(name): _class_policy_from_dict(name, spec)
                for name, spec in _as_mapping("classes", payload["classes"]).items()
            }
        if "default_class" in payload:
            kwargs["default_class"] = str(payload["default_class"])
        if "rate_limit" in payload and payload["rate_limit"] is not None:
            kwargs["rate_limit"] = _rate_limit_from_dict("rate_limit", payload["rate_limit"])
        if "client_rate_limits" in payload:
            kwargs["client_rate_limits"] = {
                str(client): _rate_limit_from_dict(f"client_rate_limits[{client!r}]", spec)
                for client, spec in _as_mapping(
                    "client_rate_limits", payload["client_rate_limits"]
                ).items()
            }
        if "shed_deadlines" in payload:
            kwargs["shed_deadlines"] = bool(payload["shed_deadlines"])
        if "shed_safety_factor" in payload:
            kwargs["shed_safety_factor"] = _as_number(
                "shed_safety_factor", payload["shed_safety_factor"]
            )
        if "aimd" in payload:
            if payload["aimd"] is None:
                kwargs["aimd"] = None
            else:
                kwargs["aimd"] = _aimd_from_dict(payload["aimd"])
        if "estimator_window" in payload:
            kwargs["estimator_window"] = int(
                _as_number("estimator_window", payload["estimator_window"])
            )
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """The policy's JSON form (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "classes": {
                name: {
                    "weight": spec.weight,
                    "queue_capacity": spec.queue_capacity,
                    "default_deadline_ms": spec.default_deadline_ms,
                    "sheddable": spec.sheddable,
                }
                for name, spec in self.classes.items()
            },
            "default_class": self.default_class,
            "shed_deadlines": self.shed_deadlines,
            "shed_safety_factor": self.shed_safety_factor,
            "estimator_window": self.estimator_window,
        }
        if self.rate_limit is not None:
            payload["rate_limit"] = {
                "rate_per_s": self.rate_limit.rate_per_s,
                "burst": self.rate_limit.burst,
            }
        if self.client_rate_limits:
            payload["client_rate_limits"] = {
                client: {"rate_per_s": limit.rate_per_s, "burst": limit.burst}
                for client, limit in self.client_rate_limits.items()
            }
        if self.aimd is not None:
            payload["aimd"] = {
                "initial": self.aimd.initial,
                "min_limit": self.aimd.min_limit,
                "max_limit": self.aimd.max_limit,
                "increase": self.aimd.increase,
                "decrease": self.aimd.decrease,
                "cooldown_s": self.aimd.cooldown_s,
            }
        else:
            payload["aimd"] = None
        return payload


def _as_mapping(key: str, value: Any) -> Mapping[str, Any]:
    _require(isinstance(value, Mapping), f"{key} must be a JSON object")
    return value


def _as_number(key: str, value: Any) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{key} must be a number, got {value!r}",
    )
    return float(value)


def _class_policy_from_dict(name: str, spec: Any) -> ClassPolicy:
    spec = _as_mapping(f"classes[{name!r}]", spec)
    known = {"weight", "queue_capacity", "default_deadline_ms", "sheddable"}
    unknown = sorted(set(spec) - known)
    _require(not unknown, f"unknown keys in classes[{name!r}]: {', '.join(unknown)}")
    kwargs: Dict[str, Any] = {}
    if "weight" in spec:
        kwargs["weight"] = _as_number(f"classes[{name!r}].weight", spec["weight"])
    if "queue_capacity" in spec and spec["queue_capacity"] is not None:
        kwargs["queue_capacity"] = int(
            _as_number(f"classes[{name!r}].queue_capacity", spec["queue_capacity"])
        )
    if "default_deadline_ms" in spec and spec["default_deadline_ms"] is not None:
        kwargs["default_deadline_ms"] = _as_number(
            f"classes[{name!r}].default_deadline_ms", spec["default_deadline_ms"]
        )
    if "sheddable" in spec:
        kwargs["sheddable"] = bool(spec["sheddable"])
    return ClassPolicy(**kwargs)


def _rate_limit_from_dict(key: str, spec: Any) -> RateLimit:
    spec = _as_mapping(key, spec)
    unknown = sorted(set(spec) - {"rate_per_s", "burst"})
    _require(not unknown, f"unknown keys in {key}: {', '.join(unknown)}")
    _require("rate_per_s" in spec, f"{key} requires rate_per_s")
    kwargs: Dict[str, Any] = {
        "rate_per_s": _as_number(f"{key}.rate_per_s", spec["rate_per_s"])
    }
    if "burst" in spec:
        kwargs["burst"] = _as_number(f"{key}.burst", spec["burst"])
    return RateLimit(**kwargs)


def _aimd_from_dict(spec: Any) -> AimdConfig:
    spec = _as_mapping("aimd", spec)
    known = {"initial", "min_limit", "max_limit", "increase", "decrease", "cooldown_s"}
    unknown = sorted(set(spec) - known)
    _require(not unknown, f"unknown keys in aimd: {', '.join(unknown)}")
    kwargs: Dict[str, Any] = {}
    for key in ("initial", "min_limit", "max_limit"):
        if key in spec:
            kwargs[key] = int(_as_number(f"aimd.{key}", spec[key]))
    for key in ("increase", "decrease", "cooldown_s"):
        if key in spec:
            kwargs[key] = _as_number(f"aimd.{key}", spec[key])
    return AimdConfig(**kwargs)


def load_qos_policy(path) -> QosPolicy:
    """Load and validate a JSON QoS policy file.

    Raises :class:`~repro.exceptions.ConfigurationError` for a missing
    file, malformed JSON, or any invalid/unknown key — always naming the
    problem, so ``repro serve --qos-config`` can exit 2 with a usable
    message.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read QoS policy {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"QoS policy {path} is not valid JSON: {exc}") from exc
    return QosPolicy.from_dict(payload)


class TokenBucket:
    """A lazily refilled token bucket (one per client id).

    Not thread-safe on its own; the
    :class:`~repro.serving.admission.AdmissionController` serializes
    access under its admission lock.
    """

    def __init__(
        self,
        limit: RateLimit,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limit = limit
        self._clock = clock
        self._tokens = float(limit.burst)
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(
            float(self.limit.burst), self._tokens + elapsed * self.limit.rate_per_s
        )

    @property
    def tokens(self) -> float:
        """Tokens currently available (after a lazy refill)."""
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; ``False`` means rate-limited."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available at the refill rate."""
        self._refill()
        deficit = max(0.0, n - self._tokens)
        return deficit / self.limit.rate_per_s

    def state_dict(self) -> Dict[str, Any]:
        """Durable form: the current token count (clock state is rebuilt)."""
        return {"tokens": self.tokens}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a journaled token count, clamped into ``[0, burst]``."""
        try:
            tokens = float(state["tokens"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StateRestoreError(f"malformed token-bucket state: {state!r}") from exc
        self._tokens = min(float(self.limit.burst), max(0.0, tokens))
        self._refilled_at = self._clock()


class AimdLimiter:
    """Additive-increase / multiplicative-decrease concurrency limit."""

    def __init__(
        self,
        config: Optional[AimdConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AimdConfig()
        self._clock = clock
        self._limit = float(self.config.initial)
        self._last_decrease = -float("inf")
        self._decreases = 0

    @property
    def limit(self) -> int:
        """Current concurrency limit (admitted-but-unresolved requests)."""
        return int(self._limit)

    @property
    def decreases(self) -> int:
        """How many overload backoffs have been applied."""
        return self._decreases

    def on_success(self) -> None:
        """A batch scored cleanly: additive increase."""
        self._limit = min(float(self.config.max_limit), self._limit + self.config.increase)

    def on_overload(self) -> None:
        """An overload signal (deadline expiry, breaker open): cut the
        limit multiplicatively, at most once per cooldown window."""
        now = self._clock()
        if now - self._last_decrease < self.config.cooldown_s:
            return
        self._last_decrease = now
        self._decreases += 1
        self._limit = max(float(self.config.min_limit), self._limit * self.config.decrease)

    def state_dict(self) -> Dict[str, Any]:
        """Durable form of the adaptive limit."""
        return {"limit": self._limit, "decreases": self._decreases}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a journaled limit, clamped into the configured bounds."""
        try:
            limit = float(state["limit"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StateRestoreError(f"malformed AIMD state: {state!r}") from exc
        self._limit = min(
            float(self.config.max_limit), max(float(self.config.min_limit), limit)
        )
        self._decreases = int(state.get("decreases", 0))


class ServiceTimeEstimator:
    """Sliding-window estimate of per-frame scoring time.

    The admission controller uses it to predict how long a newly admitted
    request would wait: ``queued_frames * per_frame_s / replicas``.  The
    estimate deliberately ignores batching amortization — it is an upper
    bound, which is the conservative direction for shedding.
    """

    def __init__(self, window: int = 128) -> None:
        _require(window >= 1, f"window must be >= 1, got {window}")
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=int(window))

    def observe(self, seconds: float, frames: int) -> None:
        """Record one scored batch: wall seconds for ``frames`` frames."""
        if frames >= 1 and seconds >= 0:
            self._samples.append((float(seconds), int(frames)))

    @property
    def samples(self) -> int:
        """Number of batches currently in the window."""
        return len(self._samples)

    def per_frame_s(self) -> float:
        """Mean seconds per frame over the window (0.0 with no data)."""
        if not self._samples:
            return 0.0
        seconds = sum(s for s, _ in self._samples)
        frames = sum(f for _, f in self._samples)
        return seconds / frames if frames else 0.0

    def estimated_delay_s(self, queued_frames: int, replicas: int = 1) -> float:
        """Predicted queue delay for a request behind ``queued_frames``."""
        return queued_frames * self.per_frame_s() / max(1, replicas)
