"""Admission control: the serving front door's accept/refuse decision.

Two pieces live here, both driven by a
:class:`~repro.serving.qos.QosPolicy`:

* :class:`AdmissionController` — decides, per request and *before* any
  work is queued, whether to admit.  Checks run cheapest-first: the
  client's token bucket (quota), the AIMD concurrency limit, then
  deadline-aware shedding (refuse when the predicted queue delay already
  exceeds the request's deadline).  A refusal carries a machine-readable
  reason (:data:`REJECTION_REASONS`) that the engine turns into a typed
  :class:`~repro.serving.results.Rejected` outcome — rejections are
  answers, not errors, and are never retried against the same node.
* :class:`WeightedClassBatcher` — the multi-queue that replaces the
  single FIFO :class:`~repro.serving.batcher.MicroBatcher` when a QoS
  policy is configured: one bounded FIFO per priority class, drained by
  smooth weighted round-robin so a saturating ``batch`` client cannot
  starve ``critical`` traffic, while each class still preserves arrival
  order internally.

The controller is crash-durable: its ``state_dict`` carries every
client's remaining tokens and the adaptive concurrency limit, so a
restart under ``repro serve --journal-dir`` resumes quotas instead of
handing every client a fresh burst.  See ``docs/admission.md``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from collections import deque

from repro.exceptions import ConfigurationError, StateRestoreError
from repro.serving.batcher import QueuedRequest
from repro.serving.qos import (
    AimdLimiter,
    ClassPolicy,
    QosPolicy,
    ServiceTimeEstimator,
    TokenBucket,
)

#: Machine-readable rejection reasons carried on ``Rejected`` outcomes.
REJECT_RATE_LIMITED = "rate_limited"
REJECT_CONCURRENCY = "concurrency_limit"
REJECT_DEADLINE = "deadline_unmeetable"
REJECTION_REASONS = (REJECT_RATE_LIMITED, REJECT_CONCURRENCY, REJECT_DEADLINE)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Attributes
    ----------
    admitted:
        Whether the request may enter the queue.
    reason:
        One of :data:`REJECTION_REASONS` when refused, else ``None``.
    retry_after_ms:
        For rate-limited refusals, when the client's bucket will have a
        token again — a well-behaved client backs off at least this long.
    """

    admitted: bool
    reason: Optional[str] = None
    retry_after_ms: Optional[float] = None

    @classmethod
    def admit(cls) -> "AdmissionDecision":
        """An accepting decision."""
        return cls(admitted=True)

    @classmethod
    def reject(
        cls, reason: str, retry_after_ms: Optional[float] = None
    ) -> "AdmissionDecision":
        """A refusing decision carrying a machine-readable ``reason``."""
        return cls(admitted=False, reason=reason, retry_after_ms=retry_after_ms)


class AdmissionController:
    """Policy-driven accept/refuse decisions for the serving engine.

    Parameters
    ----------
    policy:
        The :class:`~repro.serving.qos.QosPolicy` to enforce.
    replicas:
        Scorer replica count — parallelism the delay estimate divides by.
    clock:
        Injectable monotonic clock (tests freeze it).

    Thread-safe: every admission runs under one lock (the checks are a
    few arithmetic operations, far cheaper than the frame copy that
    precedes them on the submit path).
    """

    def __init__(
        self,
        policy: QosPolicy,
        replicas: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self.replicas = max(1, int(replicas))
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.aimd: Optional[AimdLimiter] = (
            AimdLimiter(policy.aimd, clock=clock) if policy.aimd is not None else None
        )
        self.estimator = ServiceTimeEstimator(policy.estimator_window)
        self._admitted = 0
        self._rejected: Dict[str, int] = {reason: 0 for reason in REJECTION_REASONS}

    # -- classification --------------------------------------------------
    def resolve_class(self, qos_class: Optional[str]) -> str:
        """Map a request's (possibly absent) priority to a configured class."""
        if qos_class is None:
            return self.policy.default_class
        if qos_class not in self.policy.classes:
            raise ConfigurationError(
                f"unknown priority class {qos_class!r}; this engine serves "
                f"{', '.join(sorted(self.policy.classes))}"
            )
        return qos_class

    def class_policy(self, qos_class: str) -> ClassPolicy:
        """The :class:`~repro.serving.qos.ClassPolicy` for ``qos_class``."""
        try:
            return self.policy.classes[qos_class]
        except KeyError:
            raise ConfigurationError(
                f"unknown priority class {qos_class!r}; this engine serves "
                f"{', '.join(sorted(self.policy.classes))}"
            ) from None

    # -- the admission decision ------------------------------------------
    def _bucket_for(self, client_id: Optional[str]) -> Optional[TokenBucket]:
        if client_id is None:
            client_id = ""
        limit = self.policy.client_rate_limits.get(client_id, self.policy.rate_limit)
        if limit is None:
            return None
        bucket = self._buckets.get(client_id)
        if bucket is None or bucket.limit is not limit:
            bucket = TokenBucket(limit, clock=self._clock)
            self._buckets[client_id] = bucket
        return bucket

    def admit(
        self,
        client_id: Optional[str],
        qos_class: str,
        deadline_s: Optional[float],
        queue_depth: int,
        in_flight: int,
    ) -> AdmissionDecision:
        """Decide one request, cheapest check first.

        ``queue_depth`` is the frames already queued, ``in_flight`` the
        admitted-but-unresolved count the AIMD limit compares against,
        ``deadline_s`` the request's *relative* deadline (``None`` = no
        deadline, never shed).
        """
        spec = self.class_policy(qos_class)
        with self._lock:
            bucket = self._bucket_for(client_id)
            if bucket is not None and not bucket.try_take():
                return self._refuse(
                    REJECT_RATE_LIMITED,
                    retry_after_ms=bucket.retry_after_s() * 1e3,
                )
            if spec.sheddable:
                if self.aimd is not None and in_flight >= self.aimd.limit:
                    return self._refuse(REJECT_CONCURRENCY)
                if self.policy.shed_deadlines and deadline_s is not None:
                    predicted = self.estimator.estimated_delay_s(
                        queue_depth, self.replicas
                    )
                    if predicted * self.policy.shed_safety_factor > deadline_s:
                        return self._refuse(REJECT_DEADLINE)
            self._admitted += 1
            return AdmissionDecision.admit()

    def _refuse(
        self, reason: str, retry_after_ms: Optional[float] = None
    ) -> AdmissionDecision:
        self._rejected[reason] = self._rejected.get(reason, 0) + 1
        return AdmissionDecision.reject(reason, retry_after_ms=retry_after_ms)

    # -- feedback from the dispatch path ---------------------------------
    def observe_batch(self, seconds: float, frames: int) -> None:
        """A batch scored cleanly: feed the estimator, grow the limit."""
        with self._lock:
            self.estimator.observe(seconds, frames)
            if self.aimd is not None:
                self.aimd.on_success()

    def on_overload(self, signal: str) -> None:
        """An overload signal (``"deadline_exceeded"``/``"breaker_open"``):
        back the concurrency limit off multiplicatively."""
        with self._lock:
            if self.aimd is not None:
                self.aimd.on_overload()

    # -- durability ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Durable form: per-client bucket tokens plus the AIMD limit."""
        with self._lock:
            state: Dict[str, Any] = {
                "buckets": {
                    client: bucket.state_dict()
                    for client, bucket in self._buckets.items()
                },
            }
            if self.aimd is not None:
                state["aimd"] = self.aimd.state_dict()
            return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore journaled quota/limit state.

        Buckets for clients whose quota the current policy no longer
        meters are dropped (the policy, not the journal, is authoritative
        for *whether* a client is limited; the journal only carries how
        much of its quota it had spent).
        """
        buckets = state.get("buckets", {})
        if not isinstance(buckets, Mapping):
            raise StateRestoreError(
                f"malformed admission state: buckets is {type(buckets).__name__}"
            )
        with self._lock:
            for client, bucket_state in buckets.items():
                bucket = self._bucket_for(str(client))
                if bucket is not None:
                    bucket.load_state_dict(bucket_state)
            if self.aimd is not None and "aimd" in state:
                self.aimd.load_state_dict(state["aimd"])

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Admission counters, limiter state, and the current estimate."""
        with self._lock:
            stats: Dict[str, Any] = {
                "admitted": self._admitted,
                "rejected": dict(self._rejected),
                "clients_metered": len(self._buckets),
                "service_time_ms_per_frame": self.estimator.per_frame_s() * 1e3,
            }
            if self.aimd is not None:
                stats["concurrency_limit"] = self.aimd.limit
                stats["aimd_decreases"] = self.aimd.decreases
            return stats


class WeightedClassBatcher:
    """Per-class bounded FIFOs drained by smooth weighted round-robin.

    Drop-in replacement for :class:`~repro.serving.batcher.MicroBatcher`
    (same ``offer`` / ``next_batch`` / ``close`` / ``len`` surface) that
    routes each :class:`~repro.serving.batcher.QueuedRequest` to its
    class's queue and assembles micro-batches by repeatedly picking the
    smooth-WRR winner among the non-empty classes — under contention each
    class receives batch slots proportional to its configured weight,
    with no reordering inside a class.

    Parameters
    ----------
    policy:
        The QoS policy supplying class names, weights, and per-class
        queue capacities.
    max_batch_size / max_wait_ms:
        Same batching window semantics as ``MicroBatcher``.
    default_capacity:
        Queue bound for classes whose policy leaves ``queue_capacity``
        unset (the engine passes its ``queue_capacity``).
    """

    def __init__(
        self,
        policy: QosPolicy,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        default_capacity: int = 64,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ConfigurationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if default_capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {default_capacity}")
        self.policy = policy
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self._queues: Dict[str, Deque[QueuedRequest]] = {
            name: deque() for name in policy.classes
        }
        self._capacities: Dict[str, int] = {
            name: int(spec.queue_capacity or default_capacity)
            for name, spec in policy.classes.items()
        }
        self._weights: Dict[str, float] = {
            name: float(spec.weight) for name, spec in policy.classes.items()
        }
        # Smooth-WRR credit per class; mutated only under the lock.
        self._credit: Dict[str, float] = {name: 0.0 for name in policy.classes}
        self._cond = threading.Condition()
        self._closed = False

    @property
    def capacity(self) -> int:
        """Total admission bound across every class queue."""
        return sum(self._capacities.values())

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __len__(self) -> int:
        """Total queued requests across every class."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    def class_depth(self, qos_class: str) -> int:
        """Queue depth of one class."""
        with self._cond:
            return len(self._queues[qos_class])

    def depths(self) -> Dict[str, int]:
        """Per-class queue depths (one consistent snapshot)."""
        with self._cond:
            return {name: len(q) for name, q in self._queues.items()}

    def offer(self, request: QueuedRequest) -> bool:
        """Admit into the request's class queue; ``False`` when that
        class's bounded queue is full or the batcher is closed."""
        qos_class = request.qos_class
        if qos_class not in self._queues:
            raise ConfigurationError(
                f"unknown priority class {qos_class!r}; this batcher serves "
                f"{', '.join(sorted(self._queues))}"
            )
        with self._cond:
            queue = self._queues[qos_class]
            if self._closed or len(queue) >= self._capacities[qos_class]:
                return False
            queue.append(request)
            self._cond.notify()
            return True

    def _pick(self) -> Optional[QueuedRequest]:
        """Pop the smooth-WRR winner among non-empty classes (lock held)."""
        backlogged = [name for name, q in self._queues.items() if q]
        if not backlogged:
            return None
        total = sum(self._weights[name] for name in backlogged)
        winner = None
        for name in backlogged:
            self._credit[name] += self._weights[name]
            if winner is None or self._credit[name] > self._credit[winner]:
                winner = name
        self._credit[winner] -= total
        return self._queues[winner].popleft()

    def next_batch(self) -> Optional[List[QueuedRequest]]:
        """Block until a micro-batch is ready; ``None`` once closed and
        drained.  Same window semantics as ``MicroBatcher.next_batch``,
        but each slot is filled by the weighted round-robin winner."""
        with self._cond:
            while not any(self._queues.values()):
                if self._closed:
                    return None
                self._cond.wait()
            first = self._pick()
            assert first is not None
            batch = [first]
            window_ends = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                request = self._pick()
                if request is not None:
                    batch.append(request)
                    continue
                remaining = window_ends - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            return batch

    def close(self) -> List[QueuedRequest]:
        """Refuse further admissions, wake consumers, return leftovers
        (highest-priority class first; the caller resolves their futures)."""
        with self._cond:
            self._closed = True
            leftovers: List[QueuedRequest] = []
            for name in self._queues:
                leftovers.extend(self._queues[name])
                self._queues[name].clear()
            self._cond.notify_all()
            return leftovers
