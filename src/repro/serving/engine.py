"""The inference engine: admission control + micro-batching + dispatch.

:class:`ServingEngine` accepts single-frame requests, admits them into a
bounded :class:`~repro.serving.batcher.MicroBatcher`, and runs one or more
dispatch threads that pull micro-batches and hand them to a *scorer* — an
object with ``score_batch(frames) -> BatchVerdicts``.  Two scorers exist:

* :class:`PipelineScorer` — in-process, wraps a fitted pipeline;
* :class:`repro.serving.pool.WorkerPool` — multiprocess replicas, one
  dispatch thread per worker so replicas score concurrently.

Backpressure is explicit: a full queue resolves the request to a typed
:class:`~repro.serving.results.Overloaded` outcome at submit time; an
admitted request whose deadline lapses while queued resolves to
:class:`~repro.serving.results.DeadlineExceeded` without being scored.
The engine never queues unboundedly and never blocks a producer.

Fault tolerance is opt-in via :class:`EngineConfig`: a
:class:`~repro.reliability.RetryPolicy` retries a raising backend with
exponential backoff, a :class:`~repro.reliability.BreakerConfig` puts a
circuit breaker in front of it (an open breaker resolves batches
immediately instead of hammering a dead backend), and ``fail_safe``
decides whether unscorable requests resolve to
:class:`~repro.serving.results.Failed` or to a conservative
:class:`~repro.serving.results.Degraded` verdict.  With reliability
configured the engine also refuses to deliver non-finite scores as
``Scored`` — NaN verdicts are a backend failure, not an answer.

Telemetry (when a session is active): ``serving.queue_depth``,
``serving.breaker_state`` and ``serving.admission.concurrency_limit``
gauges, ``serving.batch_size`` and ``serving.request_latency`` histograms,
``serving.queue_delay.<class>`` per-priority-class window histograms,
``serving.batch`` spans, and ``serving.requests`` / ``serving.rejected``
/ ``serving.deadline_exceeded`` / ``serving.errors`` / ``serving.retries``
/ ``serving.degraded`` / ``serving.admission.admitted.<class>`` /
``serving.admission.rejected.<reason>`` counters.

Tracing: :meth:`ServingEngine.submit` roots a
:class:`~repro.telemetry.TraceContext` per admitted request (or adopts one
the TCP frontend already rooted) and carries it on the
:class:`QueuedRequest` through the batcher.  The dispatch loop emits the
request's ``serving.queue`` wait and its ``serving.request`` root as
synthetic spans, and runs the scoring pass under a ``serving.batch`` span
parented to the *first* live request's trace (the batch owner); the other
requests of the batch link to it via a ``batch_trace`` attribute.  Spans
the backend opens during scoring (pipeline, worker, kernels) inherit the
batch span's context ambiently, so ``repro trace <id>`` reconstructs the
whole path.  Scores additionally feed the ``monitor.score_window`` sliding
histogram, the live score-distribution series the ``/metrics`` endpoint
exposes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ServingError, ShapeError
from repro.nn.backend.policy import as_tensor
from repro.novelty.framework import SaliencyNoveltyPipeline
from repro.reliability.breaker import BreakerConfig, CircuitBreaker
from repro.reliability.retry import RetryPolicy, call_with_retry
from repro.serving.admission import AdmissionController, WeightedClassBatcher
from repro.serving.batcher import MicroBatcher, QueuedRequest
from repro.serving.qos import QosPolicy
from repro.serving.results import (
    BatchVerdicts,
    DeadlineExceeded,
    Degraded,
    Failed,
    Overloaded,
    PendingResult,
    Rejected,
    RequestOutcome,
    Scored,
)
from repro.telemetry import TraceContext, get_telemetry
from repro.utils.timer import percentile

_UNSET = object()

#: Fail-safe policies for unscorable requests (see :class:`EngineConfig`).
FAIL_SAFE_POLICIES = ("fail", "novel")

#: Stand-in policy when only a breaker (no retry) is configured.
_ONE_ATTEMPT = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class EngineConfig:
    """Micro-batching and admission policy for one engine.

    Attributes
    ----------
    max_batch_size:
        Upper bound on frames per batched VBP + autoencoder pass.
    max_wait_ms:
        How long an under-full batch waits for more frames (the
        latency/throughput trade: 0 favors latency, larger favors batches).
    queue_capacity:
        Bounded request queue; submissions beyond it are rejected with a
        typed ``Overloaded`` outcome rather than queued.
    default_deadline_ms:
        Per-request deadline applied when ``submit`` does not pass one;
        ``None`` disables deadlines by default.
    retry:
        Retry-with-backoff policy for a raising backend; ``None`` keeps
        the historical single-attempt behavior.
    breaker:
        Circuit-breaker policy guarding the backend; ``None`` disables
        breaking.
    fail_safe:
        What an unscorable request resolves to: ``"fail"`` (a
        :class:`~repro.serving.results.Failed` outcome, the historical
        behavior) or ``"novel"`` (a :class:`~repro.serving.results.Degraded`
        outcome carrying the conservative ``is_novel=True`` verdict — the
        right default for a safety monitor, where "I cannot score this"
        must read as "assume novel").
    qos:
        Admission-control & QoS policy
        (:class:`~repro.serving.qos.QosPolicy`).  When set, the single
        FIFO becomes a weighted per-class multi-queue, submissions carry
        a priority class and client id, and requests may resolve to a
        typed :class:`~repro.serving.results.Rejected` outcome (rate
        limit, adaptive concurrency limit, or deadline-aware shedding)
        before any work is queued.  ``None`` keeps the historical
        admit-everything FIFO behavior.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    queue_capacity: int = 64
    default_deadline_ms: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    breaker: Optional[BreakerConfig] = None
    fail_safe: str = "fail"
    qos: Optional[QosPolicy] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1 or self.queue_capacity < 1:
            raise ConfigurationError(
                "max_batch_size and queue_capacity must be >= 1"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ConfigurationError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        if self.fail_safe not in FAIL_SAFE_POLICIES:
            raise ConfigurationError(
                f"fail_safe must be one of {', '.join(FAIL_SAFE_POLICIES)}, "
                f"got {self.fail_safe!r}"
            )


class PipelineScorer:
    """In-process scorer: one fitted pipeline, scored on the caller thread.

    ``model_version`` optionally names the model (a registry version or a
    bundle config hash); every :class:`BatchVerdicts` it produces carries
    it, so outcomes stay attributable across hot-swaps.
    """

    #: Number of engine dispatch threads this scorer can keep busy.
    replicas = 1

    def __init__(
        self,
        pipeline: SaliencyNoveltyPipeline,
        model_version: Optional[str] = None,
    ) -> None:
        if not pipeline.is_fitted:
            raise NotFittedError("PipelineScorer requires a fitted pipeline")
        self.pipeline = pipeline
        self.image_shape = pipeline.image_shape
        self.model_version = model_version
        # Compile the scoring plan eagerly so the first request doesn't pay
        # stage-graph construction; plan-less (duck-typed) pipelines serve
        # through their plain score_batch path.
        self.plan = getattr(pipeline, "plan", None)
        # One batched pass at a time: the numpy substrate is single-threaded
        # anyway, and serializing keeps layer caches coherent.  reload()
        # takes the same lock, so a swap waits for the in-flight batch.
        self._lock = threading.Lock()

    @property
    def dtype(self) -> np.dtype:
        """Precision policy of the wrapped pipeline (frames are coerced
        to this before scoring)."""
        return self.pipeline.dtype

    def score_batch(self, frames: np.ndarray) -> BatchVerdicts:
        """Vectorized verdicts for an ``(N, H, W)`` stack."""
        with self._lock:
            if self.plan is not None and hasattr(self.pipeline, "run_plan"):
                # One compiled-plan invocation yields scores, decisions and
                # margins together — the verdict stage reads the cached
                # scores — and every stage emits its own telemetry span.
                ctx = self.pipeline.run_plan(frames)
                return BatchVerdicts(
                    scores=ctx.scores,
                    is_novel=ctx.is_novel,
                    margins=ctx.margins,
                    model_version=self.model_version,
                )
            scores = self.pipeline.score_batch(frames)
            detector = self.pipeline.one_class.detector
            return BatchVerdicts(
                scores=scores,
                is_novel=detector.predict(scores),
                margins=detector.novelty_margin(scores),
                model_version=self.model_version,
            )

    def reload(self, target: Any, model_version: Optional[str] = None) -> None:
        """Hot-swap the pipeline without dropping the in-flight batch.

        ``target`` is a fitted :class:`SaliencyNoveltyPipeline` or a
        :class:`~repro.serving.artifacts.LoadedBundle` (whose pipeline and
        config hash are used).  Taking the scoring lock *drains* the batch
        currently being scored; the swap is then a plain attribute write,
        so the next batch scores on the new model.  The new pipeline must
        score the same ``(H, W)`` the engine validates submissions against.
        """
        from repro.exceptions import DeploymentError

        pipeline = getattr(target, "pipeline", target)
        if model_version is None:
            manifest = getattr(target, "manifest", None)
            if manifest is not None:
                model_version = manifest.get("config_hash")
        if not getattr(pipeline, "is_fitted", False):
            raise NotFittedError("reload requires a fitted pipeline")
        if tuple(pipeline.image_shape) != tuple(self.image_shape):
            raise DeploymentError(
                f"hot-swap shape mismatch: serving {tuple(self.image_shape)}, "
                f"candidate scores {tuple(pipeline.image_shape)}"
            )
        # Compile the candidate's plan BEFORE taking the lock: stage-graph
        # construction happens off the serving path, and the swap below is
        # an atomic pipeline+plan+version exchange under the drained lock.
        plan = getattr(pipeline, "plan", None)
        with self._lock:
            self.pipeline = pipeline
            self.plan = plan
            self.model_version = model_version

    def close(self) -> None:
        """Nothing to release for the in-process scorer."""


class ServingEngine:
    """Micro-batched inference front door over a scorer backend.

    Parameters
    ----------
    scorer:
        Backend with ``score_batch(frames) -> BatchVerdicts`` plus optional
        ``replicas`` (dispatch-thread count), ``image_shape`` (enables
        shape validation at submit), and ``close()``.
    config:
        Batching/admission policy (defaults: batch 8, wait 2 ms, queue 64)
        plus the optional reliability knobs (``retry``/``breaker``/
        ``fail_safe``).
    breaker:
        A pre-built :class:`~repro.reliability.CircuitBreaker` to use
        instead of constructing one from ``config.breaker`` — chaos tests
        inject one with a controllable clock.

    The engine starts its dispatch threads immediately and is usable as a
    context manager; :meth:`close` drains and fails whatever is in flight.
    """

    def __init__(
        self,
        scorer,
        config: Optional[EngineConfig] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.scorer = scorer
        if breaker is not None:
            self.breaker: Optional[CircuitBreaker] = breaker
        else:
            self.breaker = (
                CircuitBreaker(self.config.breaker)
                if self.config.breaker is not None
                else None
            )
        self._retry = self.config.retry
        # One jitter stream shared by every dispatch thread; exact
        # interleaving does not matter, determinism per-policy-seed does.
        self._retry_rng = (self._retry or _ONE_ATTEMPT).make_rng()
        replicas = max(1, int(getattr(scorer, "replicas", 1)))
        if self.config.qos is not None:
            self._batcher: Any = WeightedClassBatcher(
                self.config.qos,
                max_batch_size=self.config.max_batch_size,
                max_wait_ms=self.config.max_wait_ms,
                default_capacity=self.config.queue_capacity,
            )
            self.admission: Optional[AdmissionController] = AdmissionController(
                self.config.qos, replicas=replicas
            )
        else:
            self._batcher = MicroBatcher(
                max_batch_size=self.config.max_batch_size,
                max_wait_ms=self.config.max_wait_ms,
                capacity=self.config.queue_capacity,
            )
            self.admission = None
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._counts = {
            "submitted": 0,
            "scored": 0,
            "rejected": 0,
            "rejected_admission": 0,
            "deadline_exceeded": 0,
            "failed": 0,
            "degraded": 0,
            "retries": 0,
            "batches": 0,
            "reloads": 0,
        }
        self._latencies: List[float] = []
        self._last_trace_id: Optional[str] = None
        self._shadow: Optional[Any] = None
        self._ledger: Optional[Any] = None
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"serving-dispatch-{i}",
                daemon=True,
            )
            for i in range(max(1, int(getattr(scorer, "replicas", 1))))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------
    def submit(
        self,
        frame: np.ndarray,
        deadline_ms: Any = _UNSET,
        trace: Optional[TraceContext] = None,
        client_id: Optional[str] = None,
        qos_class: Optional[str] = None,
    ) -> PendingResult:
        """Admit one frame; returns a future resolving to a typed outcome.

        Never blocks: when admission control refuses the request (rate
        limit, concurrency limit, deadline shedding) the future is already
        resolved to :class:`Rejected` on return; when the bounded queue is
        full, to :class:`Overloaded`.  ``deadline_ms`` overrides the
        class/config default (``None`` = no deadline).  ``client_id``
        names the caller for per-client quotas and ``qos_class`` picks a
        priority class (both ignored without a configured
        :attr:`EngineConfig.qos`; an unknown class raises
        :class:`~repro.exceptions.ConfigurationError`).  ``trace`` adopts
        a context the caller already rooted (the TCP frontend's
        ``serving.frontend`` span); with telemetry active and no ``trace``
        a fresh root is generated for the request.
        """
        frame = as_tensor(frame, getattr(self.scorer, "dtype", None))
        expected = getattr(self.scorer, "image_shape", None)
        if frame.ndim != 2 or (expected is not None and frame.shape != tuple(expected)):
            raise ShapeError(
                f"submit expects one ({expected or 'H, W'}) frame, got {frame.shape}"
            )
        admission = self.admission
        if admission is not None:
            qos_class = admission.resolve_class(qos_class)
            if deadline_ms is _UNSET:
                spec = admission.class_policy(qos_class)
                deadline_ms = (
                    spec.default_deadline_ms
                    if spec.default_deadline_ms is not None
                    else self.config.default_deadline_ms
                )
        else:
            qos_class = qos_class or "interactive"
            if deadline_ms is _UNSET:
                deadline_ms = self.config.default_deadline_ms
        telem = get_telemetry()
        if trace is None and telem.enabled:
            trace = TraceContext.new_root()
        now = time.monotonic()
        pending = PendingResult()
        ledger = self._ledger
        request = QueuedRequest(
            frame=frame,
            pending=pending,
            enqueued_at=now,
            deadline_at=None if deadline_ms is None else now + deadline_ms / 1000.0,
            trace=trace,
            ledger_id=None if ledger is None else ledger.admit(),
            qos_class=qos_class,
            client_id=client_id,
        )
        telem.counter("serving.requests").inc()
        with self._stats_lock:
            self._counts["submitted"] += 1
            in_flight = self._in_flight
            if trace is not None:
                self._last_trace_id = trace.trace_id
        if admission is not None:
            decision = admission.admit(
                client_id=client_id,
                qos_class=qos_class,
                deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
                queue_depth=len(self._batcher),
                in_flight=in_flight,
            )
            if not decision.admitted:
                outcome: RequestOutcome = Rejected(
                    reason=decision.reason or "rejected",
                    qos_class=qos_class,
                    client_id=client_id,
                    retry_after_ms=decision.retry_after_ms,
                )
                self._resolve_ledger(request, outcome.status)
                pending.resolve(outcome)
                telem.counter(f"serving.admission.rejected.{outcome.reason}").inc()
                if trace is not None:
                    telem.add_span(
                        "serving.request",
                        0.0,
                        context=trace,
                        outcome="rejected",
                        reason=outcome.reason,
                        qos_class=qos_class,
                    )
                with self._stats_lock:
                    self._counts["rejected_admission"] += 1
                return pending
            telem.counter(f"serving.admission.admitted.{qos_class}").inc()
        if self._batcher.offer(request):
            with self._stats_lock:
                self._in_flight += 1
        else:
            depth = len(self._batcher)
            outcome = Overloaded(queue_depth=depth, capacity=self._batcher.capacity)
            self._resolve_ledger(request, outcome.status)
            pending.resolve(outcome)
            telem.counter("serving.rejected").inc()
            if trace is not None:
                telem.add_span(
                    "serving.request", 0.0, context=trace, outcome="overloaded"
                )
            with self._stats_lock:
                self._counts["rejected"] += 1
        telem.gauge("serving.queue_depth").set(len(self._batcher))
        return pending

    def infer(
        self,
        frame: np.ndarray,
        timeout_s: float = 60.0,
        client_id: Optional[str] = None,
        qos_class: Optional[str] = None,
    ) -> RequestOutcome:
        """Synchronous single-frame scoring (submit + wait)."""
        return self.submit(frame, client_id=client_id, qos_class=qos_class).result(
            timeout_s
        )

    def infer_many(self, frames: np.ndarray, timeout_s: float = 120.0) -> List[RequestOutcome]:
        """Submit a stack of frames and wait for every outcome.

        Frames beyond ``queue_capacity`` naturally resolve to
        ``Overloaded`` — size the engine's queue for the burst you send.
        """
        pendings = [
            self.submit(frame)
            for frame in as_tensor(frames, getattr(self.scorer, "dtype", None))
        ]
        return [p.result(timeout_s) for p in pendings]

    # -- reliability -----------------------------------------------------
    def _score_guarded(self, stack: np.ndarray) -> Tuple[BatchVerdicts, int]:
        """One micro-batch through the retry + breaker wrappers.

        Returns ``(verdicts, retries_used)``.  With no reliability
        configured this is exactly the historical single call.  Otherwise
        every attempt outcome feeds the breaker, non-finite scores count
        as a backend failure, and the final failure (after retries) is
        re-raised for the dispatch loop to resolve.
        """
        if self._retry is None and self.breaker is None:
            return self.scorer.score_batch(stack), 0

        def attempt() -> BatchVerdicts:
            verdicts = self.scorer.score_batch(stack)
            scores = np.asarray(verdicts.scores, dtype=float)
            if not np.all(np.isfinite(scores)):
                bad = int(np.sum(~np.isfinite(scores)))
                raise ServingError(f"backend returned {bad} non-finite scores")
            return verdicts

        def on_failure(exc: BaseException, attempt_no: int) -> None:
            if self.breaker is not None:
                self.breaker.record_failure()

        verdicts, retries = call_with_retry(
            attempt,
            self._retry if self._retry is not None else _ONE_ATTEMPT,
            retryable=Exception,
            on_failure=on_failure,
            rng=self._retry_rng,
        )
        if self.breaker is not None:
            self.breaker.record_success()
        return verdicts, retries

    def _resolve_ledger(self, request: QueuedRequest, status: str) -> None:
        """Record a request's typed outcome in the durable ledger.

        Called *before* the caller-visible ``pending.resolve`` so the
        on-disk resolve record exists by the time anyone can observe the
        outcome — a crash can leave an extra unresolved admit (reported
        as failed, conservative) but never a resolved request whose
        journal still calls it in-flight.
        """
        ledger = self._ledger
        if ledger is not None and request.ledger_id is not None:
            ledger.resolve(request.ledger_id, status)

    def attach_ledger(self, ledger: Optional[Any]) -> None:
        """Attach (or with ``None`` detach) a durable request ledger.

        Every subsequently admitted request is journaled via
        ``ledger.admit()`` and resolved with its outcome's ``status``
        string; after a crash the unresolved admits are exactly the
        requests the dead process owed answers for.  See
        :class:`~repro.durability.RequestLedger`.
        """
        self._ledger = ledger

    def _resolve_unscorable(self, live: List[QueuedRequest], reason: str, telem) -> None:
        """Resolve a batch the backend could not score, per the fail-safe
        policy: a conservative ``Degraded`` verdict or a plain ``Failed``."""
        if self.config.fail_safe == "novel":
            outcome: RequestOutcome = Degraded(
                reason=reason, is_novel=True, policy="novel"
            )
            key = "degraded"
            telem.counter("serving.degraded").inc(len(live))
        else:
            outcome = Failed(error=reason)
            key = "failed"
        for request in live:
            self._resolve_ledger(request, outcome.status)
            request.pending.resolve(outcome)
        with self._stats_lock:
            self._counts[key] += len(live)
            self._in_flight -= len(live)

    def _publish_breaker_state(self, telem) -> None:
        if self.breaker is not None:
            telem.gauge("serving.breaker_state").set(self.breaker.state_code())

    def _publish_admission_state(self, telem) -> None:
        admission = self.admission
        if admission is not None and admission.aimd is not None:
            telem.gauge("serving.admission.concurrency_limit").set(
                admission.aimd.limit
            )

    # -- dispatch --------------------------------------------------------
    def _dispatch_loop(self) -> None:
        telem = get_telemetry()
        while True:
            batch = self._batcher.next_batch()
            if batch is None:
                return
            now = time.monotonic()
            live: List[QueuedRequest] = []
            expired_any = False
            for request in batch:
                telem.window_histogram(
                    f"serving.queue_delay.{request.qos_class}"
                ).observe(now - request.enqueued_at)
                if request.deadline_at is not None and now > request.deadline_at:
                    waited = now - request.enqueued_at
                    allowed = request.deadline_at - request.enqueued_at
                    expired = DeadlineExceeded(waited_s=waited, deadline_s=allowed)
                    self._resolve_ledger(request, expired.status)
                    request.pending.resolve(expired)
                    expired_any = True
                    telem.counter("serving.deadline_exceeded").inc()
                    if request.trace is not None:
                        telem.add_span(
                            "serving.request",
                            waited,
                            context=request.trace,
                            outcome="deadline_exceeded",
                        )
                    with self._stats_lock:
                        self._counts["deadline_exceeded"] += 1
                        self._in_flight -= 1
                else:
                    live.append(request)
            if expired_any and self.admission is not None:
                # Late expiries mean the queue outran the deadline budget:
                # back the adaptive concurrency limit off.
                self.admission.on_overload("deadline_exceeded")
                self._publish_admission_state(telem)
            telem.gauge("serving.queue_depth").set(len(self._batcher))
            if not live:
                continue
            # The batch's spans join the first live request's trace (the
            # batch owner); the other requests link to it via a
            # ``batch_trace`` attribute on their own root spans.
            owner = live[0].trace
            for request in live:
                if request.trace is not None:
                    telem.add_span(
                        "serving.queue",
                        now - request.enqueued_at,
                        context=request.trace.child(),
                    )
            stack = np.stack([r.frame for r in live])
            if self.breaker is not None and not self.breaker.allow():
                if self.admission is not None:
                    self.admission.on_overload("breaker_open")
                    self._publish_admission_state(telem)
                self._resolve_unscorable(live, "circuit breaker open", telem)
                self._publish_breaker_state(telem)
                continue
            score_started = time.monotonic()
            try:
                with telem.span("serving.batch", trace=owner, frames=len(live)):
                    verdicts, retries = self._score_guarded(stack)
            except Exception as exc:  # noqa: BLE001 — worker crashes land here
                message = f"{type(exc).__name__}: {exc}"
                telem.counter("serving.errors").inc()
                self._resolve_unscorable(live, message, telem)
                self._publish_breaker_state(telem)
                continue
            self._publish_breaker_state(telem)
            if self.admission is not None:
                self.admission.observe_batch(
                    time.monotonic() - score_started, len(live)
                )
                self._publish_admission_state(telem)
            if retries:
                telem.counter("serving.retries").inc(retries)
                with self._stats_lock:
                    self._counts["retries"] += retries
            done = time.monotonic()
            model_version = getattr(verdicts, "model_version", None)
            if model_version is None:
                model_version = getattr(self.scorer, "model_version", None)
            resolved: List[Tuple[np.ndarray, Scored]] = []
            latency_histogram = telem.histogram("serving.request_latency")
            score_window = telem.window_histogram("monitor.score_window")
            # The stats lock also serializes metric updates across dispatch
            # threads — the telemetry instruments are not thread-safe.
            with self._stats_lock:
                telem.counter("serving.batches").inc()
                telem.histogram("serving.batch_size").observe(len(live))
                self._counts["batches"] += 1
                self._counts["scored"] += len(live)
                self._in_flight -= len(live)
                for i, request in enumerate(live):
                    latency = done - request.enqueued_at
                    self._latencies.append(latency)
                    latency_histogram.observe(latency)
                    score = float(verdicts.scores[i])
                    is_novel = bool(verdicts.is_novel[i])
                    score_window.observe(score)
                    if is_novel:
                        telem.counter("monitor.novel_verdicts").inc()
                    if request.trace is not None:
                        attrs = {"outcome": "scored", "batch_size": len(live)}
                        if owner is not None and request.trace is not owner:
                            attrs["batch_trace"] = owner.trace_id
                        telem.add_span(
                            "serving.request",
                            latency,
                            context=request.trace,
                            **attrs,
                        )
                    outcome = Scored(
                        score=score,
                        is_novel=is_novel,
                        margin=float(verdicts.margins[i]),
                        batch_size=len(live),
                        latency_s=latency,
                        retries=retries,
                        model_version=model_version,
                    )
                    self._resolve_ledger(request, outcome.status)
                    request.pending.resolve(outcome)
                    resolved.append((request.frame, outcome))
            # Shadow mirroring happens outside the stats lock: offer() is a
            # sampled non-blocking enqueue that never raises and never
            # affects the already-resolved responses.
            shadow = self._shadow
            if shadow is not None:
                for frame, outcome in resolved:
                    shadow.offer(frame, outcome)

    # -- lifecycle: hot-swap and rollout hooks ---------------------------
    def reload(self, target: Any, model_version: Optional[str] = None) -> None:
        """Zero-downtime hot-swap: replace the served model under load.

        Delegates to the scorer's own ``reload`` —
        :meth:`PipelineScorer.reload` drains the in-flight batch and swaps
        the pipeline; :meth:`~repro.serving.pool.WorkerPool.reload`
        replaces replicas one at a time (round-robin), so capacity never
        drops to zero.  ``target`` is whatever the scorer accepts (a
        :class:`~repro.serving.artifacts.LoadedBundle`, a fitted pipeline,
        or a bundle path for the pool).  Emits a ``deploy.swap`` span/
        event and bumps the ``deploy.swaps`` counter.
        """
        from repro.exceptions import DeploymentError

        reload_fn = getattr(self.scorer, "reload", None)
        if reload_fn is None:
            raise DeploymentError(
                f"scorer {type(self.scorer).__name__} does not support hot-swap "
                "(no reload method)"
            )
        telem = get_telemetry()
        with telem.span("deploy.swap", trace="new"):
            reload_fn(target, model_version=model_version)
        swapped_to = getattr(self.scorer, "model_version", model_version)
        telem.counter("deploy.swaps").inc()
        telem.event("deploy.swap", model_version=swapped_to)
        with self._stats_lock:
            self._counts["reloads"] += 1

    def set_scorer(self, scorer: Any) -> None:
        """Swap the scorer object itself (the canary split install path).

        The replacement must score the same ``(H, W)`` frames; dispatch
        threads pick it up on their next batch.  Used by
        :class:`~repro.deploy.CanaryController` to install and remove a
        :class:`~repro.deploy.CanarySplitScorer`; for a plain model
        upgrade prefer :meth:`reload`, which drains per replica.
        """
        from repro.exceptions import DeploymentError

        expected = getattr(self.scorer, "image_shape", None)
        offered = getattr(scorer, "image_shape", None)
        if expected is not None and offered is not None and tuple(expected) != tuple(offered):
            raise DeploymentError(
                f"scorer swap shape mismatch: serving {tuple(expected)}, "
                f"candidate scores {tuple(offered)}"
            )
        self.scorer = scorer

    def attach_shadow(self, shadow: Optional[Any]) -> None:
        """Attach (or with ``None`` detach) a shadow-scoring observer.

        The observer's ``offer(frame, scored)`` is called for every
        ``Scored`` outcome after it resolves — mirroring can therefore
        never delay or change a response.  See
        :class:`~repro.deploy.ShadowRunner`.
        """
        self._shadow = shadow

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counts plus end-to-end latency percentiles (milliseconds).

        Includes the loaded model's identity — ``model_version`` (registry
        version or bundle hash, when the scorer advertises one) and
        ``dtype`` — so operators can tell *what* is serving, not just the
        ``last_trace_id`` of whatever it served.
        """
        with self._stats_lock:
            counts = dict(self._counts)
            latencies = list(self._latencies)
            last_trace_id = self._last_trace_id
            in_flight = self._in_flight
        summary: Dict[str, Any] = dict(counts)
        summary["queue_depth"] = len(self._batcher)
        if self.admission is not None:
            admission_stats = self.admission.stats()
            admission_stats["in_flight"] = in_flight
            admission_stats["queue_depths"] = self._batcher.depths()
            summary["admission"] = admission_stats
        model_version = getattr(self.scorer, "model_version", None)
        if model_version is not None:
            summary["model_version"] = model_version
        dtype = getattr(self.scorer, "dtype", None)
        if dtype is not None:
            summary["dtype"] = np.dtype(dtype).name
        if last_trace_id is not None:
            summary["last_trace_id"] = last_trace_id
        if self.breaker is not None:
            summary["breaker"] = self.breaker.stats()
        ledger = self._ledger
        if ledger is not None:
            summary["ledger"] = ledger.stats()
        # percentile() is NaN on empty input; stats() feeds wire JSON, so
        # quote 0.0 for "no data" instead.
        summary["latency_ms"] = {
            "count": len(latencies),
            "mean": float(np.mean(latencies) * 1e3) if latencies else 0.0,
            "p50": percentile(latencies, 50.0) * 1e3 if latencies else 0.0,
            "p95": percentile(latencies, 95.0) * 1e3 if latencies else 0.0,
            "p99": percentile(latencies, 99.0) * 1e3 if latencies else 0.0,
            "max": max(latencies) * 1e3 if latencies else 0.0,
        }
        if counts["batches"]:
            summary["mean_batch_size"] = counts["scored"] / counts["batches"]
        return summary

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop dispatch, fail queued requests, release the scorer."""
        if self._closed:
            return
        self._closed = True
        leftovers = self._batcher.close()
        for thread in self._threads:
            thread.join(timeout=10.0)
        for request in leftovers:
            closed = Failed(error="engine closed")
            self._resolve_ledger(request, closed.status)
            request.pending.resolve(closed)
        with self._stats_lock:
            self._in_flight -= len(leftovers)
        close = getattr(self.scorer, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
