"""Multiprocess worker pool: engine replicas with restart-on-crash.

Each worker is a separate OS process that loads the artifact bundle
itself (:func:`repro.serving.artifacts.load_bundle`) — replicas share no
memory with the parent, so a crashed or wedged worker cannot corrupt the
others.  The parent dispatches micro-batches round-robin over duplex
pipes, health-checks replicas with pings, and transparently respawns a
worker that died — retrying the in-flight batch once on the fresh replica
before giving up with :class:`~repro.exceptions.WorkerCrashError`.

The pool exposes the same ``score_batch``/``image_shape``/``replicas``
surface as :class:`~repro.serving.engine.PipelineScorer`, so a
:class:`~repro.serving.engine.ServingEngine` runs one dispatch thread per
worker and keeps every replica busy.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ServingError, WorkerCrashError
from repro.nn.backend.policy import as_tensor, resolve_dtype
from repro.reliability.retry import RetryPolicy, call_with_retry
from repro.serving.artifacts import read_manifest
from repro.serving.results import BatchVerdicts
from repro.telemetry import current_trace, get_telemetry
from repro.utils.log import get_logger

_log = get_logger(__name__)


def _worker_main(
    bundle_dir: str,
    conn,
    dtype: Optional[str] = None,
    profile_kernels: bool = False,
) -> None:
    """Worker-process loop: load the bundle, answer score/ping requests.

    Runs until a ``("stop",)`` message or EOF on the pipe.  Scoring errors
    are reported per-request (``("err", id, message)``) rather than
    crashing the replica; an actual crash is detected by the parent via a
    broken pipe / timeout and answered with a restart.  ``dtype`` overrides
    the bundle's recorded precision policy for this replica.

    Tracing: a score message may carry a serialized trace context as its
    4th element.  The worker then scores under a ``worker.score_batch``
    span parented to it (with per-kernel spans nested inside when
    ``profile_kernels`` is set) and returns the finished span records in
    the reply, so the parent can replay them into its own sink — one JSONL
    file ends up holding the whole cross-process request tree.
    """
    from repro.serving.artifacts import load_bundle
    from repro.telemetry import MemorySink, TraceContext, enable_telemetry

    if profile_kernels:
        from repro.nn.backend import enable_kernel_profiler

        enable_kernel_profiler()
    bundle = load_bundle(bundle_dir)
    pipeline = bundle.pipeline
    if dtype is not None:
        pipeline.set_inference_dtype(dtype)
    # Compile the scoring plan before signalling ready: stage-graph
    # construction happens once at worker startup, never on a request.
    getattr(pipeline, "plan", None)
    detector = pipeline.one_class.detector
    telem = None
    sink = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        if op == "stop":
            return
        if op == "ping":
            conn.send(("pong", message[1]))
        elif op == "score":
            request_id, frames = message[1], message[2]
            trace_payload = message[3] if len(message) > 3 else None
            try:
                spans: List[Dict[str, Any]] = []
                if trace_payload is not None:
                    if telem is None:
                        # Lazy: workers only pay for telemetry once the
                        # parent actually sends traced requests.
                        telem = enable_telemetry()
                        sink = MemorySink()
                        telem.add_sink(sink)
                    sink.records.clear()
                    context = TraceContext.from_dict(trace_payload)
                    with telem.span(
                        "worker.score_batch", trace=context, frames=len(frames)
                    ):
                        scores = pipeline.score_batch(frames)
                    spans = [
                        dict(r) for r in sink.records if r.get("type") == "span"
                    ]
                else:
                    scores = pipeline.score_batch(frames)
                conn.send(
                    (
                        "ok",
                        request_id,
                        scores,
                        detector.predict(scores),
                        detector.novelty_margin(scores),
                        spans,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — report, don't die
                conn.send(("err", request_id, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("err", message[1] if len(message) > 1 else -1, f"unknown op {op!r}"))


@dataclass
class _Worker:
    """Parent-side handle for one replica."""

    index: int
    process: multiprocessing.Process
    conn: Any
    #: Serializes pipe traffic for this replica across dispatch threads.
    lock: threading.Lock = field(default_factory=threading.Lock)


class WorkerPool:
    """Round-robin pool of bundle-loaded engine replicas.

    Parameters
    ----------
    bundle_dir:
        Artifact bundle every worker loads (validated up front, so a bad
        path fails fast in the parent instead of in N children).
    workers:
        Number of replica processes.
    request_timeout_s:
        How long to wait for a replica's answer before declaring it hung
        (it is then killed and respawned).
    dtype:
        Precision policy replicas score in (``"float32"`` or ``"float64"``).
        ``None`` uses the dtype recorded in the bundle manifest.
    retry:
        Restart-and-retry policy for a crashed/hung replica:
        ``max_attempts`` bounds how many fresh processes one batch may be
        tried on, with exponential backoff (plus seeded jitter) between
        attempts so a crash-looping replica is not respawn-hammered.
        ``None`` keeps the historical try-twice-no-backoff behavior.
    profile_kernels:
        Install the kernel profiler in every replica, so traced requests
        come back with per-kernel spans (``repro profile``).
    model_version:
        Registry version (or any identifier) stamped onto every batch this
        pool scores; :meth:`reload` updates it along with the bundle.
    """

    def __init__(
        self,
        bundle_dir: Union[str, Path],
        workers: int = 2,
        request_timeout_s: float = 60.0,
        dtype: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        profile_kernels: bool = False,
        model_version: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if request_timeout_s <= 0:
            raise ConfigurationError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        self.bundle_dir = Path(bundle_dir)
        manifest = read_manifest(self.bundle_dir)
        self.image_shape: Tuple[int, int] = tuple(manifest["image_shape"])
        self.dtype = resolve_dtype(
            manifest.get("dtype", "float64") if dtype is None else dtype
        )
        self._dtype_override = None if dtype is None else self.dtype.name
        self.replicas = int(workers)
        self.request_timeout_s = float(request_timeout_s)
        self._retry = retry if retry is not None else RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0
        )
        self._retry_rng = self._retry.make_rng()
        self.profile_kernels = bool(profile_kernels)
        self.model_version = model_version
        self._context = multiprocessing.get_context()
        self._rr_lock = threading.Lock()
        self._rr_index = 0
        self._request_id = 0
        self._restarts = 0
        self._swaps = 0
        self._closed = False
        self._workers: List[_Worker] = [self._spawn(i) for i in range(self.replicas)]

    # -- replica lifecycle ----------------------------------------------
    def _spawn(self, index: int, bundle_dir: Optional[Path] = None) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                str(bundle_dir if bundle_dir is not None else self.bundle_dir),
                child_conn,
                self._dtype_override,
                self.profile_kernels,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(index=index, process=process, conn=parent_conn)

    def _restart(self, worker: _Worker, reason: str) -> None:
        """Kill (if needed) and respawn one replica.  Caller holds its lock."""
        _log.warning("restarting worker %d: %s", worker.index, reason)
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        fresh = self._spawn(worker.index)
        worker.process = fresh.process
        worker.conn = fresh.conn
        with self._rr_lock:
            self._restarts += 1
        get_telemetry().counter("serving.worker_restarts").inc()

    @property
    def restarts(self) -> int:
        """Total replica restarts since the pool started."""
        with self._rr_lock:
            return self._restarts

    # -- request plumbing ------------------------------------------------
    def _next_worker(self) -> _Worker:
        with self._rr_lock:
            worker = self._workers[self._rr_index % len(self._workers)]
            self._rr_index += 1
            return worker

    def _next_request_id(self) -> int:
        with self._rr_lock:
            self._request_id += 1
            return self._request_id

    def _request(self, worker: _Worker, message: tuple, request_id: int) -> tuple:
        """One send/recv on a replica; raises ``WorkerCrashError`` on death.

        Caller holds ``worker.lock``.
        """
        if not worker.process.is_alive():
            raise WorkerCrashError(f"worker {worker.index} is not running")
        try:
            worker.conn.send(message)
            deadline = time.monotonic() + self.request_timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.conn.poll(min(remaining, 0.5)):
                    if remaining <= 0:
                        raise WorkerCrashError(
                            f"worker {worker.index} did not answer within "
                            f"{self.request_timeout_s}s"
                        )
                    if not worker.process.is_alive():
                        raise WorkerCrashError(f"worker {worker.index} died mid-request")
                    continue
                reply = worker.conn.recv()
                # Stale replies (from a request that timed out earlier on
                # this replica) are discarded by id.
                if len(reply) > 1 and reply[1] == request_id:
                    return reply
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashError(f"worker {worker.index} pipe failed: {exc}") from exc

    def score_batch(self, frames: np.ndarray) -> BatchVerdicts:
        """Score a stack on the next replica, restarting it on crash.

        A replica found dead (or that dies mid-request) is respawned and
        the batch retried on the fresh process under the pool's
        :class:`~repro.reliability.RetryPolicy` (default: one retry, no
        backoff), with exponential backoff between attempts when a policy
        is configured; only the final failure propagates as
        :class:`~repro.exceptions.WorkerCrashError`.
        """
        if self._closed:
            raise ServingError("WorkerPool.score_batch called after close()")
        frames = as_tensor(frames, self.dtype)
        worker = self._next_worker()
        # Propagate the ambient trace (the engine's serving.batch span)
        # across the pipe as a plain dict; the worker parents its own
        # spans under it and ships them back in the reply.
        context = current_trace()
        trace_payload = None if context is None else context.to_dict()

        def attempt() -> tuple:
            request_id = self._next_request_id()
            return self._request(
                worker, ("score", request_id, frames, trace_payload), request_id
            )

        def on_failure(exc: BaseException, attempt_no: int) -> None:
            self._restart(worker, str(exc))

        with worker.lock:
            reply, _ = call_with_retry(
                attempt,
                self._retry,
                retryable=WorkerCrashError,
                on_failure=on_failure,
                rng=self._retry_rng,
            )
        if reply[0] == "err":
            raise ServingError(f"worker {worker.index} scoring error: {reply[2]}")
        scores, is_novel, margins = reply[2], reply[3], reply[4]
        worker_spans = reply[5] if len(reply) > 5 else []
        if worker_spans:
            telem = get_telemetry()
            if telem.enabled:
                for record in worker_spans:
                    telem.replay_span(record)
        return BatchVerdicts(
            scores=scores,
            is_novel=is_novel,
            margins=margins,
            model_version=self.model_version,
        )

    # -- hot-swap --------------------------------------------------------
    def reload(self, target: Union[str, Path, Any], model_version: Optional[str] = None) -> None:
        """Zero-downtime rolling swap: move every replica to a new bundle.

        ``target`` is a bundle directory (or a
        :class:`~repro.serving.artifacts.LoadedBundle`, whose path and
        config hash are used).  The new manifest is validated up front and
        must score the same ``(H, W)``.  Replicas are then replaced *one at
        a time*: a fresh process loads the new bundle, proves readiness by
        answering a ping, and only then — under the replica's request lock,
        i.e. after its in-flight batch drains — takes over the slot; the
        old process is stopped.  N-1 replicas keep serving throughout, so
        capacity never drops to zero, and a candidate that fails to come up
        aborts the swap with the remaining replicas untouched (already
        swapped replicas stay on the new bundle; re-run ``reload`` either
        way to converge).
        """
        from repro.exceptions import DeploymentError

        if self._closed:
            raise ServingError("WorkerPool.reload called after close()")
        if model_version is None:
            manifest_attr = getattr(target, "manifest", None)
            if manifest_attr is not None:
                model_version = manifest_attr.get("config_hash")
        bundle_dir = Path(getattr(target, "path", target))
        manifest = read_manifest(bundle_dir)
        new_shape = tuple(manifest["image_shape"])
        if new_shape != tuple(self.image_shape):
            raise DeploymentError(
                f"hot-swap shape mismatch: serving {tuple(self.image_shape)}, "
                f"candidate scores {new_shape}"
            )
        telem = get_telemetry()
        for worker in self._workers:
            fresh = self._spawn(worker.index, bundle_dir=bundle_dir)
            try:
                request_id = self._next_request_id()
                self._request(fresh, ("ping", request_id), request_id)
            except WorkerCrashError as exc:
                if fresh.process.is_alive():
                    fresh.process.terminate()
                fresh.process.join(timeout=5.0)
                try:
                    fresh.conn.close()
                except OSError:
                    pass
                raise DeploymentError(
                    f"hot-swap aborted: replacement for worker {worker.index} "
                    f"never became ready ({exc})"
                ) from exc
            # The replica's lock serializes with score_batch: taking it
            # here *is* the drain of that worker's in-flight request.
            with worker.lock:
                old_process, old_conn = worker.process, worker.conn
                worker.process = fresh.process
                worker.conn = fresh.conn
            try:
                old_conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            old_process.join(timeout=5.0)
            if old_process.is_alive():
                old_process.terminate()
                old_process.join(timeout=5.0)
            try:
                old_conn.close()
            except OSError:
                pass
            telem.counter("deploy.worker_swapped").inc()
            _log.info("worker %d swapped to %s", worker.index, bundle_dir)
        with self._rr_lock:
            self._swaps += 1
        self.bundle_dir = bundle_dir
        if self._dtype_override is None:
            self.dtype = resolve_dtype(manifest.get("dtype", "float64"))
        self.model_version = model_version

    # -- health ----------------------------------------------------------
    def ping(self) -> List[bool]:
        """Liveness probe per replica (``True`` = answered a ping)."""
        health: List[bool] = []
        for worker in self._workers:
            with worker.lock:
                try:
                    request_id = self._next_request_id()
                    reply = self._request(worker, ("ping", request_id), request_id)
                    health.append(reply[0] == "pong")
                except WorkerCrashError:
                    health.append(False)
        return health

    def ensure_healthy(self) -> int:
        """Respawn every replica that fails its health check.

        Returns the number of restarts performed.  Deployments run this
        periodically; the scoring path additionally self-heals on demand.
        """
        restarted = 0
        for worker in self._workers:
            with worker.lock:
                alive = worker.process.is_alive()
                if alive:
                    try:
                        request_id = self._next_request_id()
                        self._request(worker, ("ping", request_id), request_id)
                        continue
                    except WorkerCrashError:
                        pass
                self._restart(worker, "failed health check")
                restarted += 1
        return restarted

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop every replica (graceful stop message, then terminate)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Replica liveness, restart and swap counts (no pipe traffic)."""
        with self._rr_lock:
            swaps = self._swaps
        stats: Dict[str, Any] = {
            "workers": self.replicas,
            "alive": sum(w.process.is_alive() for w in self._workers),
            "restarts": self.restarts,
            "swaps": swaps,
        }
        if self.model_version is not None:
            stats["model_version"] = self.model_version
        return stats
