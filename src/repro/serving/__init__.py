"""Serving: deploy a fitted pipeline as a micro-batched inference service.

The paper frames its detector as an *online safety monitor* for deployed
driving systems; this subsystem is the deployment story.  Four pieces:

* **Artifact bundles** (:mod:`repro.serving.artifacts`) — a fitted
  pipeline saved as a versioned, hash-validated directory that loads
  identically in a fresh process (``save_bundle`` / ``load_bundle``).
* **Micro-batching** (:mod:`repro.serving.batcher`) — single-frame
  requests coalesced into batched VBP + autoencoder passes under a
  ``max_batch_size`` / ``max_wait_ms`` policy.
* **Worker pool** (:mod:`repro.serving.pool`) — multiprocess engine
  replicas, each loading the bundle itself, with round-robin dispatch,
  health checks, and restart-on-crash.
* **Admission control** (:mod:`repro.serving.engine`) — bounded queues
  with typed backpressure (:class:`Overloaded`) and per-request
  deadlines, behind :class:`ServingEngine`.

:mod:`repro.serving.service` adds a localhost socket frontend (length-
prefixed JSON), :mod:`repro.serving.loadgen` a load generator; the CLI
exposes them as ``repro serve`` and ``repro bench-serve``.  See
``docs/serving.md``.
"""

from repro.serving.artifacts import (
    BUNDLE_SCHEMA,
    BUNDLE_SCHEMA_VERSION,
    LoadedBundle,
    config_hash,
    load_bundle,
    manifest_sha256,
    read_manifest,
    save_bundle,
)
from repro.serving.batcher import MicroBatcher, QueuedRequest
from repro.serving.engine import EngineConfig, PipelineScorer, ServingEngine
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.pool import WorkerPool
from repro.serving.results import (
    BatchVerdicts,
    DeadlineExceeded,
    Degraded,
    Failed,
    Overloaded,
    PendingResult,
    RequestOutcome,
    Scored,
)
from repro.serving.service import ServingClient, ServingServer, recv_message, send_message

__all__ = [
    "BUNDLE_SCHEMA",
    "BUNDLE_SCHEMA_VERSION",
    "LoadedBundle",
    "config_hash",
    "load_bundle",
    "manifest_sha256",
    "read_manifest",
    "save_bundle",
    "MicroBatcher",
    "QueuedRequest",
    "EngineConfig",
    "PipelineScorer",
    "ServingEngine",
    "LoadReport",
    "run_load",
    "WorkerPool",
    "BatchVerdicts",
    "DeadlineExceeded",
    "Degraded",
    "Failed",
    "Overloaded",
    "PendingResult",
    "RequestOutcome",
    "Scored",
    "ServingClient",
    "ServingServer",
    "recv_message",
    "send_message",
]
