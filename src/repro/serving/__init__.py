"""Serving: deploy a fitted pipeline as a micro-batched inference service.

The paper frames its detector as an *online safety monitor* for deployed
driving systems; this subsystem is the deployment story.  Four pieces:

* **Artifact bundles** (:mod:`repro.serving.artifacts`) — a fitted
  pipeline saved as a versioned, hash-validated directory that loads
  identically in a fresh process (``save_bundle`` / ``load_bundle``).
* **Micro-batching** (:mod:`repro.serving.batcher`) — single-frame
  requests coalesced into batched VBP + autoencoder passes under a
  ``max_batch_size`` / ``max_wait_ms`` policy.
* **Worker pool** (:mod:`repro.serving.pool`) — multiprocess engine
  replicas, each loading the bundle itself, with round-robin dispatch,
  health checks, and restart-on-crash.
* **Admission control & QoS** (:mod:`repro.serving.admission` /
  :mod:`repro.serving.qos`) — per-client token-bucket quotas, a fixed
  set of priority classes drained by a weighted multi-queue, deadline-
  aware shedding, and an AIMD adaptive concurrency limit, all behind a
  JSON-configurable :class:`QosPolicy`; refusals are typed
  :class:`Rejected` outcomes.  The engine keeps its historical bounded-
  FIFO behavior (typed :class:`Overloaded` backpressure, per-request
  deadlines) when no policy is configured.

:mod:`repro.serving.service` adds a localhost socket frontend (length-
prefixed JSON), :mod:`repro.serving.loadgen` a load generator; the CLI
exposes them as ``repro serve`` and ``repro bench-serve``.  See
``docs/serving.md``.
"""

from repro.serving.admission import (
    REJECTION_REASONS,
    AdmissionController,
    AdmissionDecision,
    WeightedClassBatcher,
)
from repro.serving.artifacts import (
    BUNDLE_SCHEMA,
    BUNDLE_SCHEMA_VERSION,
    LoadedBundle,
    config_hash,
    load_bundle,
    manifest_sha256,
    read_manifest,
    save_bundle,
)
from repro.serving.batcher import MicroBatcher, QueuedRequest
from repro.serving.engine import EngineConfig, PipelineScorer, ServingEngine
from repro.serving.loadgen import (
    LoadReport,
    parse_priority_mix,
    run_load,
    run_mixed_load,
)
from repro.serving.pool import WorkerPool
from repro.serving.qos import (
    DEFAULT_CLASS,
    PRIORITY_CLASSES,
    AimdConfig,
    AimdLimiter,
    ClassPolicy,
    QosPolicy,
    RateLimit,
    ServiceTimeEstimator,
    TokenBucket,
    load_qos_policy,
)
from repro.serving.results import (
    BatchVerdicts,
    DeadlineExceeded,
    Degraded,
    Failed,
    Overloaded,
    PendingResult,
    Rejected,
    RequestOutcome,
    Scored,
)
from repro.serving.service import ServingClient, ServingServer, recv_message, send_message

__all__ = [
    "BUNDLE_SCHEMA",
    "BUNDLE_SCHEMA_VERSION",
    "LoadedBundle",
    "config_hash",
    "load_bundle",
    "manifest_sha256",
    "read_manifest",
    "save_bundle",
    "MicroBatcher",
    "QueuedRequest",
    "EngineConfig",
    "PipelineScorer",
    "ServingEngine",
    "LoadReport",
    "parse_priority_mix",
    "run_load",
    "run_mixed_load",
    "WorkerPool",
    "AdmissionController",
    "AdmissionDecision",
    "REJECTION_REASONS",
    "WeightedClassBatcher",
    "DEFAULT_CLASS",
    "PRIORITY_CLASSES",
    "AimdConfig",
    "AimdLimiter",
    "ClassPolicy",
    "QosPolicy",
    "RateLimit",
    "ServiceTimeEstimator",
    "TokenBucket",
    "load_qos_policy",
    "BatchVerdicts",
    "DeadlineExceeded",
    "Degraded",
    "Failed",
    "Overloaded",
    "PendingResult",
    "Rejected",
    "RequestOutcome",
    "Scored",
    "ServingClient",
    "ServingServer",
    "recv_message",
    "send_message",
]
